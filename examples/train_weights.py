"""Grid-train the graphical model's six weights (Section 3.4).

The paper trains w1..w5 and w_e by exhaustive enumeration on a labeled
workload.  This example builds a small training corpus (a different seed
than the evaluation corpus), extracts features once per query, and sweeps a
small grid — printing the error landscape.

Run:  python examples/train_weights.py
"""

from repro.core.params import enumerate_grid
from repro.evaluation.harness import build_environment
from repro.evaluation.tuning import tune_basic_params, tune_model_params


def main() -> None:
    print("Building training environment (seed 7, scale 0.3)...")
    env = build_environment(scale=0.3, seed=7, use_cache=False)
    print(f"  {env.synthetic.num_tables} tables")

    print("\nTuning Basic baseline thresholds...")
    basic_params, basic_err = tune_basic_params(env)
    print(f"  best: relevance>={basic_params.relevance_threshold} "
          f"column>={basic_params.column_threshold} -> {basic_err:.1f}% error")

    grid = list(enumerate_grid(
        w1_grid=(1.0, 1.4),
        w2_grid=(0.3,),
        w4_grid=(0.5, 0.65),
        w5_grid=(-0.45, -0.3),
        we_grid=(0.8, 1.1),
    ))
    print(f"\nSweeping {len(grid)} weight settings for WWT...")
    best, best_err, trace = tune_model_params(env, grid)
    for params, err in sorted(trace, key=lambda t: t[1])[:5]:
        print(f"  {err:6.2f}%  w1={params.w1} w2={params.w2} "
              f"w4={params.w4} w5={params.w5} we={params.we}")
    print(f"\nBest: w1={best.w1} w4={best.w4} w5={best.w5} we={best.we} "
          f"({best_err:.2f}% error)")


if __name__ == "__main__":
    main()
