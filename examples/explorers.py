"""The paper's Figure 1 scenario: "name of explorers | nationality | areas
explored".

Shows the column mapper's decisions table by table: which candidate web
tables are relevant, how their columns map to the three query columns, and
how a distractor page about forest reserves (reproduced from Figure 1) is
rejected despite matching the keywords "areas" and "exploration".

Run:  python examples/explorers.py
"""

from repro import CorpusConfig, Query, WWTService, generate_corpus


def main() -> None:
    synthetic = generate_corpus(CorpusConfig(seed=42, scale=1.0))
    service = WWTService(synthetic.corpus)

    query = Query.parse("name of explorers | nationality | areas explored")
    print(f"Query: {query}\n")
    # answer_full exposes the pipeline artifact (problem + mapping), which
    # this walkthrough inspects table by table.
    result = service.answer_full(query)

    print("Column mapping decisions:")
    for ti, table in enumerate(result.problem.tables):
        provenance = synthetic.provenance[table.table_id]
        relevant = result.mapping.is_relevant(ti)
        marker = "RELEVANT " if relevant else "irrelevant"
        headers = [
            " ".join(table.column_header_tokens(c)) or "(none)"
            for c in range(table.num_cols)
        ]
        print(f"  [{marker}] {table.table_id:<26} domain={provenance.domain_key}")
        if relevant:
            mapping = result.mapping.table_mapping(ti)
            for ci, qc in sorted(mapping.items()):
                print(f"      column {ci} ({headers[ci]!r}) -> Q{qc} "
                      f"({query.columns[qc - 1]!r})")

    print(f"\nConsolidated answer ({result.answer.num_rows} rows, top 8):")
    print(f"  {'Explorer':<22} | {'Nationality':<12} | Areas explored")
    print("  " + "-" * 64)
    for row in result.answer.rows[:8]:
        print(f"  {row.cells[0]:<22} | {row.cells[1]:<12} | {row.cells[2]}")


if __name__ == "__main__":
    main()
