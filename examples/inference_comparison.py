"""Compare the five inference algorithms of Table 2 on one query.

Runs table-independent inference ("none"), the table-centric collective
algorithm, constrained alpha-expansion, loopy BP, and TRW-S on the same
column mapping problem, reporting objective score (Eq. 9), number of
relevant tables, accuracy against ground truth, and wall-clock time.

Run:  python examples/inference_comparison.py
"""

import time

from repro import CorpusConfig, generate_corpus
from repro.core import DEFAULT_PARAMS, build_problem
from repro.core.labels import LabelSpace
from repro.corpus import GroundTruth
from repro.evaluation.metrics import f1_error, gold_assignment
from repro.inference import REGISTRY
from repro.pipeline import two_stage_probe
from repro.query import query_by_id


def main() -> None:
    synthetic = generate_corpus(CorpusConfig(seed=42, scale=1.0))
    wq = query_by_id("black metal bands | country")
    bindings = {wq.query_id: (wq.domain_key, wq.attr_keys)}
    truth = GroundTruth.from_provenance(synthetic.provenance, bindings)

    probe = two_stage_probe(wq.query, synthetic.corpus)
    problem = build_problem(
        wq.query, probe.tables, synthetic.corpus.stats, DEFAULT_PARAMS
    )
    space = LabelSpace(wq.query.q)
    gold = gold_assignment(truth, wq.query_id, probe.tables, space)

    print(f"Query: {wq.query}")
    print(f"Candidates: {len(probe.tables)} tables, "
          f"{problem.num_columns} column variables, "
          f"{len(problem.edges)} content-overlap edges\n")
    print(f"{'algorithm':<18} {'kind':<13} {'score':>9} {'relevant':>9} "
          f"{'F1 error':>9} {'time':>9}")
    print("-" * 74)
    for info in REGISTRY.infos():
        start = time.perf_counter()
        result = info.fn(problem)
        elapsed = time.perf_counter() - start
        error = f1_error(result.labels, gold, space)
        kind = info.capability + ("" if info.collective else "*")
        print(f"{info.name:<18} {kind:<13} {result.score():>9.2f} "
              f"{len(result.relevant_tables()):>9} "
              f"{error:>8.1f}% {elapsed * 1000:>7.0f}ms")
    print("\n(* = no cross-table signals)")


if __name__ == "__main__":
    main()
