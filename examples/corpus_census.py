"""Corpus census: reproduce the offline statistics of Section 2.1.

Generates the corpus and reports the numbers the paper quotes about its
25M-table crawl: the fraction of table tags that are data tables (~10%),
the header-row histogram (18% none / 60% one / 17% two / 5% more), and the
rejection reasons of the layout-table heuristics.

Run:  python examples/corpus_census.py
"""

from repro import CorpusConfig, generate_corpus


def main() -> None:
    synthetic = generate_corpus(CorpusConfig(seed=42, scale=1.0))
    census = synthetic.census

    print(f"Pages generated:        {len(synthetic.pages)}")
    print(f"Table tags seen:        {census.table_tags}")
    print(f"Data tables extracted:  {census.data_tables} "
          f"({census.yield_fraction:.0%} yield; paper: ~10%)")

    print("\nRejection reasons:")
    for reason, count in sorted(census.rejected.items(), key=lambda kv: -kv[1]):
        print(f"  {reason:<22} {count}")

    total = sum(census.header_row_histogram.values())
    names = {0: "no header", 1: "one header row", 2: "two header rows",
             3: "more than two"}
    paper = {0: "18%", 1: "60%", 2: "17%", 3: "5%"}
    print("\nHeader-row histogram (paper's Section 2.1.1 in parentheses):")
    for key in sorted(census.header_row_histogram):
        count = census.header_row_histogram[key]
        print(f"  {names[key]:<18} {count:>5}  {count / total:>5.0%}  "
              f"(paper {paper[key]})")


if __name__ == "__main__":
    main()
