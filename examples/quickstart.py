"""Quickstart: ask a column-keyword query against a synthetic web corpus.

Generates a small corpus of noisy web pages, indexes the extracted tables,
and runs the full WWT pipeline (two-stage probe, collective column mapping,
consolidation, ranking) for one query.

Run:  python examples/quickstart.py
"""

from repro import CorpusConfig, Query, WWTEngine, generate_corpus


def main() -> None:
    print("Generating synthetic web corpus (scale 0.4)...")
    synthetic = generate_corpus(CorpusConfig(seed=42, scale=0.4))
    print(f"  {len(synthetic.pages)} pages -> {synthetic.num_tables} data tables")

    engine = WWTEngine(synthetic.corpus)

    query = Query.parse("country | currency")
    print(f"\nQuery: {query}")
    result = engine.answer(query)

    print(f"Candidates: {result.probe.num_candidates} "
          f"(2nd probe used: {result.probe.used_second_stage})")
    print(f"Relevant tables: {len(result.mapping.relevant_tables())}")
    print(f"Total time: {result.timing.total:.2f}s "
          f"(column map {result.timing.column_map:.2f}s)")

    print(f"\nAnswer table ({result.answer.num_rows} rows, top 10):")
    header = result.answer.header()
    print(f"  {header[0]:<18} | {header[1]:<22} | support")
    print("  " + "-" * 55)
    for row in result.answer.rows[:10]:
        print(f"  {row.cells[0]:<18} | {row.cells[1]:<22} | {row.support}")


if __name__ == "__main__":
    main()
