"""Quickstart: ask a column-keyword query against a synthetic web corpus.

Generates a small corpus of noisy web pages, indexes the extracted tables,
and serves one query through :class:`repro.service.WWTService` — the full
WWT pipeline (two-stage probe, collective column mapping, consolidation,
ranking) behind the request/response API, with a cached repeat to show the
serving layer at work.

Run:  python examples/quickstart.py
"""

from repro import CorpusConfig, QueryRequest, WWTService, generate_corpus


def main() -> None:
    print("Generating synthetic web corpus (scale 0.4)...")
    synthetic = generate_corpus(CorpusConfig(seed=42, scale=0.4))
    print(f"  {len(synthetic.pages)} pages -> {synthetic.num_tables} data tables")

    service = WWTService(synthetic.corpus)

    request = QueryRequest.parse("country | currency", page_size=10, explain=True)
    print(f"\nQuery: {request.query}")
    response = service.answer(request)

    explain = response.explain
    print(f"Candidates: {explain['num_candidates']} "
          f"(2nd probe used: {explain['used_second_stage']})")
    print(f"Relevant tables: {len(explain['relevant_tables'])}")
    print(f"Total time: {response.timing.total:.2f}s "
          f"(column map {response.timing.column_map:.2f}s)")

    print(f"\nAnswer table ({response.total_rows} rows, "
          f"page 1/{response.num_pages}):")
    header = response.header
    print(f"  {header[0]:<18} | {header[1]:<22} | support")
    print("  " + "-" * 55)
    for row in response.rows:
        print(f"  {row.cells[0]:<18} | {row.cells[1]:<22} | {row.support}")

    # The same query again — served from the LRU result cache.
    repeat = service.answer("Country | Currency")
    stats = service.stats()
    print(f"\nRepeat query: cache_hit={repeat.cache_hit} "
          f"(served in {repeat.served_in * 1000:.2f}ms; "
          f"cache {stats.result_cache.hits} hits / "
          f"{stats.result_cache.misses} misses)")


if __name__ == "__main__":
    main()
