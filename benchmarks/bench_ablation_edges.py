"""Ablations of the edge-potential design choices (Section 3.3).

The paper motivates three departures from a plain potts potential:
similarity normalization, confidence gating, and max-matching edges.  This
benchmark removes each protection from the table-centric algorithm and
measures the F1-error impact on the workload:

* ``no edges``       — w_e = 0 (no collective inference at all);
* ``no gating``      — confidence threshold 0 (every column may send);
* ``unnormalized``   — raw similarity instead of nsim;
* ``all-pairs``      — every similar column pair, not the max-matching.
"""

from repro.core.edges import MappingEdge, all_similar_pairs
from repro.core.labels import LabelSpace
from repro.core.model import build_problem
from repro.core.params import DEFAULT_PARAMS
from repro.evaluation.metrics import f1_error
from repro.inference import table_centric_inference

from .conftest import write_result


def _swap_edges(problem, edges):
    from repro.core.model import ColumnMappingProblem

    return ColumnMappingProblem(
        query=problem.query,
        tables=problem.tables,
        params=problem.params,
        node_potentials=problem.node_potentials,
        features=problem.features,
        table_relevance=problem.table_relevance,
        edges=edges,
    )


def _variant_problem(problem, variant, stats):
    if variant == "full":
        return problem
    if variant == "no edges":
        return problem.with_params(problem.params.with_values(we=0.0))
    if variant == "no gating":
        return problem.with_params(
            problem.params.with_values(confidence_threshold=0.0)
        )
    if variant == "unnormalized":
        edges = [
            MappingEdge(a=e.a, b=e.b, sim=e.sim, nsim_ab=e.sim, nsim_ba=e.sim)
            for e in problem.edges
        ]
        return _swap_edges(problem, edges)
    if variant == "all-pairs":
        pairs = all_similar_pairs(problem.tables, stats)
        edges = [
            MappingEdge(a=a, b=b, sim=sim, nsim_ab=sim, nsim_ba=sim)
            for a, b, sim in pairs
        ]
        return _swap_edges(problem, edges)
    raise ValueError(variant)


VARIANTS = ["full", "no edges", "no gating", "unnormalized", "all-pairs"]


def test_ablation_edge_design(env, benchmark):
    stats = env.synthetic.corpus.stats
    errors = {v: [] for v in VARIANTS}
    for wq in env.queries:
        probe = env.candidates[wq.query_id]
        base = build_problem(wq.query, probe.tables, stats, DEFAULT_PARAMS)
        gold = env.gold(wq)
        space = LabelSpace(wq.query.q)
        for variant in VARIANTS:
            problem = _variant_problem(base, variant, stats)
            result = table_centric_inference(problem)
            errors[variant].append(f1_error(result.labels, gold, space))

    lines = [f"{'variant':<16}{'mean F1 error':>14}", "-" * 30]
    means = {}
    for variant in VARIANTS:
        means[variant] = sum(errors[variant]) / len(errors[variant])
        lines.append(f"{variant:<16}{means[variant]:>13.2f}%")
    lines.append("")
    lines.append(
        "Confidence gating is the critical protection (removing it is worse\n"
        "than removing edges entirely).  Normalization and max-matching\n"
        "guard against web-scale content noise; on this synthetic corpus,\n"
        "whose cross-domain content overlap is cleaner than the web's, the\n"
        "unprotected variants can even over-perform — see EXPERIMENTS.md."
    )
    write_result("ablation_edges.txt", "\n".join(lines))

    # The full design must beat dropping edges entirely.
    assert means["full"] < means["no edges"]

    wq = env.queries[14]
    probe = env.candidates[wq.query_id]
    base = build_problem(wq.query, probe.tables, stats, DEFAULT_PARAMS)
    benchmark(table_centric_inference, base)
