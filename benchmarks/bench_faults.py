# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock availability/latency by design; results are reports, not ranked answers
"""Fault-tolerance benchmark: availability and latency under injected chaos.

Measures what the failure-domain machinery (``repro.faults`` +
``ShardedCorpus`` health tracking) buys the serving path:

- **fault-rate sweep**: for shard-probe fault rates of 0%, 1%, and 10%
  (seeded, deterministic), the availability (fraction of queries
  answered at full coverage), the degraded ratio, served-latency
  p50/p95, and the crash count — which must be **zero** at every rate:
  injected shard failures degrade answers, they never break them;
- **recovery**: quarantine one shard with a one-shot fault, then measure
  the wall-clock time until a query again answers at full coverage —
  the reopen-probation lifecycle observed end-to-end.

The 0% row doubles as the inertness gate: with the health machinery
armed but no faults injected, every answer must be complete and
undegraded (fatal under ``--strict``, as is any crash or a shard that
never recovers).  Latency numbers are recorded, never gated
(shared-runner jitter).

Emits machine-readable ``BENCH_faults.json``; CI runs ``--smoke
--strict`` and uploads the artifact.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_faults.py --smoke
    PYTHONPATH=src python benchmarks/bench_faults.py \
        --scale 0.4 --rates 0 0.01 0.1 --out results/BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.exec.stats import percentile  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultRule,
    HealthPolicy,
    Once,
    WithProbability,
    injected,
)
from repro.faults.injection import POINT_SHARD_SEARCH  # noqa: E402
from repro.index import ShardedCorpus, build_sharded_corpus  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402
from repro.service import EngineConfig, WWTService  # noqa: E402

NUM_SHARDS = 3

#: Caches off: every answer exercises the scatter path, so availability
#: reflects the corpus, not the result cache.
UNCACHED = dict(cache_size=0, probe_cache_size=0)  # reprolint: disable=R004 -- config constant (never mutated), not a cache


def health_corpus(tables, policy):
    """A health-enabled serial sharded corpus over ``tables``."""
    built = build_sharded_corpus(tables, NUM_SHARDS)
    return ShardedCorpus(
        built.shards, built.stats, validate=False, health=policy,
    )


def bench_fault_rate(tables, queries, rate, seed, policy):
    """One fault rate: availability, degraded ratio, latency, crashes."""
    service = WWTService(health_corpus(tables, policy),
                         EngineConfig(**UNCACHED))
    served_ms = []
    degraded = 0
    crashes = 0
    fires = 0
    rules = (
        [FaultRule(POINT_SHARD_SEARCH, WithProbability(rate, seed))]
        if rate > 0.0 else []
    )
    with injected(*rules) as injector:
        for query in queries:
            t0 = time.perf_counter()
            try:
                full = service.answer_full(query, use_cache=False)
            except Exception:  # noqa: BLE001 - the metric being measured
                crashes += 1
                continue
            served_ms.append((time.perf_counter() - t0) * 1000.0)
            if full.degraded:
                degraded += 1
        fires = injector.fires()
    return {
        "fault_rate": rate,
        "injected_faults": fires,
        "availability": round((len(queries) - degraded - crashes)
                              / len(queries), 3),
        "degraded_ratio": round(degraded / len(queries), 3),
        "crashes": crashes,
        "served_p50_ms": round(percentile(served_ms, 0.50), 3)
        if served_ms else None,
        "served_p95_ms": round(percentile(served_ms, 0.95), 3)
        if served_ms else None,
    }


def bench_recovery(tables, query, policy, timeout_s=30.0):
    """Quarantine one shard, then time the heal back to full coverage."""
    corpus = health_corpus(tables, policy)
    service = WWTService(corpus, EngineConfig(**UNCACHED))
    with injected(FaultRule(POINT_SHARD_SEARCH, Once(), key="1")):
        first = service.answer_full(query, use_cache=False)
    outage_start = time.perf_counter()
    queries_to_recover = 0
    recovered = False
    while time.perf_counter() - outage_start < timeout_s:
        queries_to_recover += 1
        service.answer_full(query, use_cache=False)
        if corpus.coverage().complete:
            recovered = True
            break
        time.sleep(policy.reopen_after_s / 10.0)
    recovery_s = time.perf_counter() - outage_start
    return {
        "outage_was_partial": first.degraded,
        "reopen_after_s": policy.reopen_after_s,
        "recovered": recovered,
        "recovery_s": round(recovery_s, 3),
        "queries_to_recover": queries_to_recover,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (default 0.4)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to run (default: all 59)")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="shard-probe fault rates to sweep "
                             "(default: 0 0.01 0.1)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI; fills any unset "
                             "option with scale 0.1 and 16 queries")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on any crash, on a degraded "
                             "answer at rate 0, or on a shard that never "
                             "recovers (latency is recorded, never gated)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_faults.json"))
    args = parser.parse_args(argv)

    smoke_defaults = (0.1, 16, [0.0, 0.01, 0.10])
    full_defaults = (0.4, None, [0.0, 0.01, 0.10])
    for name, value in zip(
        ("scale", "queries", "rates"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    # Heal windows sized to the query cadence (a few ms each): a failed
    # shard gets retried within a query or two, so the sweep shows the
    # full outage -> backoff -> heal cycle instead of one sticky outage.
    policy = HealthPolicy(
        max_retries=1, backoff_s=0.005, backoff_factor=2.0,
        max_backoff_s=0.1, reopen_after_s=0.05,
    )
    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    t0 = time.perf_counter()
    synthetic = generate_corpus(CorpusConfig(seed=args.seed, scale=args.scale))
    tables = list(synthetic.corpus.store)
    print(f"faults benchmark: scale={args.scale} "
          f"({len(tables)} tables, {NUM_SHARDS} shards, "
          f"{time.perf_counter() - t0:.1f}s to build), "
          f"{len(queries)} queries, rates={args.rates}", flush=True)

    sweep = []
    for i, rate in enumerate(args.rates):
        row = bench_fault_rate(tables, queries, rate, args.seed + i, policy)
        sweep.append(row)
        print(f"  rate {rate:>5.1%}: availability {row['availability']:.0%}, "
              f"degraded {row['degraded_ratio']:.0%}, "
              f"crashes {row['crashes']}, "
              f"faults {row['injected_faults']}, "
              f"served p95 {row['served_p95_ms']}ms", flush=True)

    recovery = bench_recovery(tables, queries[0], policy)
    print(f"  recovery: partial outage={recovery['outage_was_partial']}, "
          f"healed in {recovery['recovery_s']}s "
          f"({recovery['queries_to_recover']} probes, "
          f"reopen window {recovery['reopen_after_s']}s)", flush=True)

    report = {
        "benchmark": "faults",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "seed": args.seed,
            "scale": args.scale,
            "num_queries": len(queries),
            "num_shards": NUM_SHARDS,
            "rates": args.rates,
            "smoke": args.smoke,
            "health_policy": {
                "max_retries": policy.max_retries,
                "backoff_s": policy.backoff_s,
                "reopen_after_s": policy.reopen_after_s,
            },
        },
        "fault_sweep": sweep,
        "recovery": recovery,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    total_crashes = sum(row["crashes"] for row in sweep)
    if total_crashes:
        failures.append(f"{total_crashes} crash(es) under injected faults")
    zero_rows = [row for row in sweep if row["fault_rate"] == 0.0]
    if any(row["degraded_ratio"] > 0.0 for row in zero_rows):
        failures.append("degraded answers with no faults injected "
                        "(inertness regression)")
    if not recovery["recovered"]:
        failures.append("quarantined shard never recovered")
    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    if failures and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
