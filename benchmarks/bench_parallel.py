# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock scatter/serve/cold-open latency by design; results are reports, not ranked answers
"""Parallel-execution benchmark: scatter modes, serve modes, lazy opens.

Measures the three surfaces ISSUE 10 added and what each one promises:

- **scatter**: the same persisted corpus loaded with
  ``parallel_mode`` in (serial, thread, process) at several worker
  counts; reports per-query scatter latency and speedup over serial.
  Speedups are *recorded, never gated* — on a single-core container
  process scatter pays IPC for no parallelism and honestly loses.
- **identity**: the full 59-query workload answered end-to-end under
  every mode must be byte-identical (the two-phase idf design's whole
  claim; fatal under ``--strict``).
- **serve modes**: ``execution_mode="thread"`` vs ``"async"`` under
  closed-loop load — throughput recorded, answer payloads compared
  byte-for-byte (diffs fatal under ``--strict``).
- **lazy store**: cold time-to-first-table of an eager
  ``TableStore.load`` (parses every row) vs ``LazyTableStore.open``
  (offset sidecar + one row parse) at 10^5 tables.

Emits machine-readable ``BENCH_parallel.json``; CI runs
``--smoke --strict`` and uploads the artifact.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --scale 0.3 --workers 1 2 4 --shards 8 \
        --out results/BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.index import ShardedCorpus, build_sharded_corpus  # noqa: E402
from repro.index.store import (  # noqa: E402
    LazyTableStore,
    TableStore,
    write_offsets_sidecar,
)
from repro.query.workload import WORKLOAD  # noqa: E402
from repro.serve import ReproServer, ServeClient, ServeConfig  # noqa: E402
from repro.serve.protocol import answer_payload  # noqa: E402
from repro.service import QueryRequest, WWTService  # noqa: E402
from repro.tables.table import WebTable  # noqa: E402
from repro.text.tokenize import tokenize  # noqa: E402

MODES = ("serial", "thread", "process")


def term_sets_for(queries):
    """Analyzed search-term lists, one per workload query."""
    sets = []
    for query in queries:
        terms = []
        for column in query.columns:
            terms.extend(tokenize(column))
        if terms:
            sets.append(sorted(set(terms)))
    return sets


def load_mode(corpus_dir, mode, workers):
    """Open the persisted corpus under one scatter configuration."""
    return ShardedCorpus.load(
        corpus_dir, probe_workers=workers, parallel_mode=mode
    )


def bench_scatter(corpus_dir, term_sets, workers_list, repeats):
    """Per-query scatter latency for every mode × worker count."""
    rows = []
    serial_ms = None
    for mode in MODES:
        for workers in ([1] if mode == "serial" else workers_list):
            corpus = load_mode(corpus_dir, mode, workers)
            try:
                corpus.search(term_sets[0], limit=20)  # warm: mmap + spawn
                samples = []
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    for terms in term_sets:
                        corpus.search(terms, limit=20)
                    samples.append(
                        (time.perf_counter() - t0) * 1000.0 / len(term_sets)
                    )
            finally:
                corpus.close()
            per_query_ms = min(samples)
            if mode == "serial":
                serial_ms = per_query_ms
            row = {
                "mode": mode,
                "workers": workers,
                "per_query_ms": round(per_query_ms, 4),
                "speedup_vs_serial": (
                    round(serial_ms / per_query_ms, 3) if serial_ms else None
                ),
            }
            rows.append(row)
            print(f"  {mode:>7} x{workers}: {row['per_query_ms']:>8.3f} "
                  f"ms/query  ({row['speedup_vs_serial']}x vs serial)",
                  flush=True)
    return rows


def bench_mode_identity(corpus_dir, queries, workers):
    """End-to-end answers under every mode, compared byte-for-byte."""
    digests = {}
    for mode in MODES:
        corpus = load_mode(corpus_dir, mode, workers)
        try:
            service = WWTService(corpus)
            digests[mode] = [
                json.dumps(
                    answer_payload(
                        service.answer(QueryRequest(query=q, use_cache=False))
                    ),
                    sort_keys=True,
                )
                for q in queries
            ]
        finally:
            corpus.close()
    diffs = sum(
        1
        for i in range(len(queries))
        if not (
            digests["serial"][i] == digests["thread"][i]
            == digests["process"][i]
        )
    )
    return {"queries": len(queries), "workers": workers, "mode_diffs": diffs}


def run_closed_loop(server, queries, concurrency, requests_per_client):
    """Closed-loop load against a live server; returns (qps, errors)."""
    results = []
    lock = threading.Lock()

    def client_loop(worker_id):
        rows = []
        with ServeClient(
            server.host, server.port, timeout_s=60.0,
            client_id=f"load-{worker_id}",
        ) as client:
            for i in range(requests_per_client):
                query = queries[(worker_id + i) % len(queries)]
                try:
                    status, _, _ = client.query(
                        {"query": str(query), "use_cache": False}
                    )
                except OSError:
                    status = -1
                rows.append(status)
        with lock:
            results.extend(rows)

    threads = [
        threading.Thread(target=client_loop, args=(worker_id,))
        for worker_id in range(concurrency)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - t0
    answered = sum(1 for s in results if s == 200)
    errors = sum(1 for s in results if s != 200)
    return {
        "requests": len(results),
        "answered_2xx": answered,
        "errors": errors,
        "elapsed_s": round(elapsed_s, 3),
        "qps": round(answered / elapsed_s, 2) if elapsed_s else None,
    }


def bench_serve_modes(corpus, queries, concurrency, requests_per_client):
    """thread vs async serving: throughput + answer byte-identity."""
    rows = {}
    answers = {}
    for mode in ("thread", "async"):
        service = WWTService(corpus)
        config = ServeConfig(
            port=0, workers=4, queue_depth=64, execution_mode=mode
        )
        with ReproServer(service, config) as server:
            # One sequential pass first, capturing payloads for identity.
            with ServeClient(server.host, server.port) as client:
                answers[mode] = []
                for query in queries:
                    status, _, body = client.query(
                        {"query": str(query), "use_cache": False}
                    )
                    answers[mode].append(
                        json.dumps(body["answer"], sort_keys=True)
                        if status == 200 else f"status={status}"
                    )
            row = run_closed_loop(
                server, queries, concurrency, requests_per_client
            )
        rows[mode] = row
        print(f"  {mode:>6}: {row['qps']:>7.1f} qps "
              f"({row['answered_2xx']}/{row['requests']} answered, "
              f"{row['errors']} errors)", flush=True)
    diffs = sum(
        1 for a, b in zip(answers["thread"], answers["async"]) if a != b
    )
    ratio = (
        round(rows["async"]["qps"] / rows["thread"]["qps"], 3)
        if rows["thread"]["qps"] else None
    )
    return {
        "thread": rows["thread"],
        "async": rows["async"],
        "async_vs_thread_qps": ratio,
        "answer_diffs": diffs,
    }


def bench_lazy_cold(num_tables, repeats):
    """Cold time-to-first-table: eager full parse vs lazy offset open."""
    with tempfile.TemporaryDirectory(prefix="bench-lazy-") as tmp:
        path = Path(tmp) / "tables.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            for i in range(num_tables):
                table = WebTable.from_rows(
                    [[f"value {i}", str(i), f"note {i % 97}"]],
                    header=["name", "rank", "note"],
                    table_id=f"t{i}",
                )
                fh.write(json.dumps(table.to_dict(), ensure_ascii=False))
                fh.write("\n")
        write_offsets_sidecar(path)
        ids = [f"t{i}" for i in range(num_tables)]
        first = ids[num_tables // 2]

        eager_ms, lazy_ms = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            store = TableStore.load(path)
            store.get(first)
            eager_ms.append((time.perf_counter() - t0) * 1000.0)

            t0 = time.perf_counter()
            lazy = LazyTableStore.open(path, ids)
            lazy.get(first)
            lazy_ms.append((time.perf_counter() - t0) * 1000.0)
            lazy.close()

    row = {
        "num_tables": num_tables,
        "eager_first_probe_ms": round(min(eager_ms), 3),
        "lazy_first_probe_ms": round(min(lazy_ms), 3),
        "speedup": round(min(eager_ms) / min(lazy_ms), 2),
    }
    print(f"  {num_tables} tables: eager {row['eager_first_probe_ms']:.1f}ms"
          f" vs lazy {row['lazy_first_probe_ms']:.2f}ms "
          f"({row['speedup']}x)", flush=True)
    return row


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (default 0.3)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries (default: all 59)")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count for the persisted corpus "
                             "(default 8)")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="worker counts for thread/process scatter "
                             "(default: 1 2 4)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of taken (default 3)")
    parser.add_argument("--lazy-tables", type=int, default=None,
                        help="table count for the lazy-open comparison "
                             "(default 100000)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="closed-loop clients for the serve sweep "
                             "(default 4)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per closed-loop client (default 6)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI; fills any unset "
                             "option with scale 0.05, 8 queries, 4 shards, "
                             "workers 1 2, 2000 lazy tables")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on any cross-mode identity "
                             "diff (speedups are recorded, never gated)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_parallel.json"))
    args = parser.parse_args(argv)

    # --smoke only fills options the user left unset.
    smoke_defaults = (0.05, 8, 4, [1, 2], 2, 2000, 2, 3)
    full_defaults = (0.3, len(WORKLOAD), 8, [1, 2, 4], 3, 100_000, 4, 6)
    for name, value in zip(
        ("scale", "queries", "shards", "workers", "repeats",
         "lazy_tables", "concurrency", "requests"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    t0 = time.perf_counter()
    corpus = generate_corpus(
        CorpusConfig(seed=args.seed, scale=args.scale)
    ).corpus
    tables = list(corpus.store)
    print(f"parallel benchmark: scale={args.scale} "
          f"({len(tables)} tables, "
          f"{time.perf_counter() - t0:.1f}s to build), "
          f"{len(queries)} queries, shards={args.shards}, "
          f"workers={args.workers}, cpu_count={os.cpu_count()}",
          flush=True)

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as tmp:
        corpus_dir = Path(tmp) / "corpus"
        build_sharded_corpus(tables, args.shards).save(corpus_dir)

        print("scatter latency (best-of, caches cold per mode):",
              flush=True)
        scatter = bench_scatter(
            corpus_dir, term_sets_for(queries), args.workers, args.repeats
        )

        print("cross-mode identity (end-to-end answers):", flush=True)
        identity = bench_mode_identity(
            corpus_dir, queries, max(args.workers)
        )
        print(f"  {identity['mode_diffs']} diffs over "
              f"{identity['queries']} queries x {len(MODES)} modes",
              flush=True)

    print("serve modes (closed-loop, caches off):", flush=True)
    serve = bench_serve_modes(
        corpus, queries, args.concurrency, args.requests
    )
    print(f"  answer identity: {serve['answer_diffs']} diffs over "
          f"{len(queries)} queries", flush=True)

    print("lazy table store (cold time-to-first-table):", flush=True)
    lazy = bench_lazy_cold(args.lazy_tables, max(2, args.repeats))

    failures = []
    if identity["mode_diffs"]:
        failures.append(
            f"{identity['mode_diffs']} cross-mode answer diffs"
        )
    if serve["answer_diffs"]:
        failures.append(
            f"{serve['answer_diffs']} thread-vs-async answer diffs"
        )
    for mode in ("thread", "async"):
        if serve[mode]["errors"]:
            failures.append(
                f"{serve[mode]['errors']} serve errors in {mode} mode"
            )

    report = {
        "benchmark": "parallel",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "seed": args.seed,
            "scale": args.scale,
            "num_queries": len(queries),
            "shards": args.shards,
            "workers": args.workers,
            "repeats": args.repeats,
            "lazy_tables": args.lazy_tables,
            "concurrency": args.concurrency,
            "requests_per_client": args.requests,
            "smoke": args.smoke,
        },
        "scatter": scatter,
        "identity": identity,
        "serve_modes": serve,
        "lazy_store": lazy,
        "failures": failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"WARNING: {failure}", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
