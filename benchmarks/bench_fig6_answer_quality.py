"""Figure 6: impact of column mapping on final answer rows.

Regenerates the paper's Figure 6: for each hard-query group, the error in
the *rows of the consolidated answer table* produced by each method's
mapping versus the answer produced by the ground-truth mapping.  The
paper's shape: WWT yields significantly lower answer-row error than Basic
in every group.
"""

from repro.evaluation.answer_quality import answer_row_error
from repro.evaluation.harness import bin_queries, split_easy_hard

from .conftest import write_result


def test_fig6_answer_quality(env, method_runs, benchmark):
    basic = method_runs("basic")
    wwt = method_runs("wwt")

    qids = [wq.query_id for wq in env.queries]
    _easy, hard = split_easy_hard({"basic": basic, "wwt": wwt}, qids)
    groups = bin_queries(basic.errors, hard)

    def row_error(run, wq):
        probe = env.candidates[wq.query_id]
        gold = env.gold(wq)
        return answer_row_error(
            wq.query, probe.tables, run.labels[wq.query_id], gold
        )

    by_query = {
        wq.query_id: (row_error(basic, wq), row_error(wwt, wq))
        for wq in env.queries
        if wq.query_id in hard
    }

    lines = [
        f"{'Group':<8}{'Basic rows err':>16}{'WWT rows err':>15}",
        "-" * 39,
    ]
    overall_basic, overall_wwt = [], []
    for gi, group in enumerate(groups, start=1):
        b_errors = [by_query[q][0] for q in group]
        w_errors = [by_query[q][1] for q in group]
        overall_basic.extend(b_errors)
        overall_wwt.extend(w_errors)
        b = sum(b_errors) / len(b_errors) if b_errors else 0.0
        w = sum(w_errors) / len(w_errors) if w_errors else 0.0
        lines.append(f"{gi:<8}{b:>15.1f}%{w:>14.1f}%")
    b_all = sum(overall_basic) / len(overall_basic)
    w_all = sum(overall_wwt) / len(overall_wwt)
    lines.append("-" * 39)
    lines.append(f"{'Overall':<8}{b_all:>15.1f}%{w_all:>14.1f}%")
    write_result("fig6_answer_quality.txt", "\n".join(lines))

    # Shape: WWT's answers are closer to the gold consolidation overall.
    assert w_all < b_all

    wq = env.queries[14]
    benchmark(row_error, wwt, wq)
