"""Micro-benchmarks of the substrate kernels.

Times the building blocks everything else composes: HTML extraction, the
inverted-index probe, segmented similarity, bipartite matching with
max-marginals, the constrained cut, and row consolidation.
"""

import random

from repro.consolidate.merge import consolidate
from repro.corpus.domains import REGISTRY
from repro.corpus.pages import render_page
from repro.flow.bipartite import BipartiteMatcher
from repro.flow.constrained_cut import constrained_min_cut
from repro.flow.network import FlowNetwork
from repro.html.parser import parse_html
from repro.query.model import Query
from repro.tables.extractor import extract_tables


def test_html_extraction(benchmark):
    rng = random.Random(1)
    page = render_page(REGISTRY["countries"], 0, rng)

    def extract():
        return extract_tables(parse_html(page.html))

    tables = benchmark(extract)
    assert len(tables) >= 1


def test_index_probe(env, benchmark):
    tokens = Query.parse("country | currency | population").all_tokens()
    hits = benchmark(env.synthetic.corpus.index.search, tokens, 60)
    assert hits


def test_bipartite_matching_with_marginals(benchmark):
    rng = random.Random(3)
    weights = [[rng.uniform(-1, 2) for _ in range(5)] for _ in range(8)]

    def solve():
        matcher = BipartiteMatcher(weights, [1] * 8, [1] * 4 + [8])
        matcher.solve()
        return matcher.max_marginals()

    mm = benchmark(solve)
    assert len(mm) == 8


def test_constrained_cut(benchmark):
    def solve():
        net = FlowNetwork(8)
        for u, v, c in [(0, 2, 3), (0, 3, 2), (0, 4, 2), (2, 1, 4),
                        (3, 1, 3), (4, 5, 2), (5, 1, 2), (2, 3, 1)]:
            net.add_edge(u, v, float(c))
        return constrained_min_cut(net, 0, 1, groups=[[2, 3], [4, 5]])

    t_side, _flow = benchmark(solve)
    assert 1 in t_side


def test_consolidation(env, benchmark):
    wq = env.queries[14]  # country | currency
    probe = env.candidates[wq.query_id]
    mappings = {}
    for ti, table in enumerate(probe.tables):
        label = env.truth.label(wq.query_id, table.table_id)
        if label.relevant:
            mappings[ti] = label.mapping
    answer = benchmark(consolidate, wq.query, probe.tables, mappings)
    assert answer.num_rows > 0
