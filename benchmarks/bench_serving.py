# reprolint: disable-file=R001 -- load harness: measures real wall-clock latency over real sockets by design; results are reports, not ranked answers
"""Serving benchmark: closed-loop load over real sockets.

Drives a live :class:`repro.serve.ReproServer` with concurrent
closed-loop clients (each sends a request, waits for the reply, sends
the next) and reports what the serving layer promises:

- **identity**: a served answer must be byte-identical to the in-process
  ``WWTService.answer()`` payload (fatal under ``--strict``);
- **throughput/latency**: sustained QPS and served p50/p99 per
  concurrency level, caches off so every request runs the engine;
- **overload**: a deliberately small server (few workers, shallow
  queue, tight default deadline) under heavy concurrency — answers keep
  flowing as 2xx (many degraded), the excess is told to back off with
  429s, the queue never grows past its bound, and no client sees a
  socket timeout (timeouts/5xx are fatal under ``--strict``);
- **rate limiting**: a single hot client is throttled to its token
  bucket while the server stays healthy.

Emits machine-readable ``BENCH_serving.json``; CI runs
``--smoke --strict`` and uploads the artifact.  Latency and throughput
are recorded, never gated (shared-runner jitter); only correctness
(identity, timeouts, 5xx) is fatal.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --scale 0.3 --concurrency 1 2 4 8 16 \
        --out results/BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.exec.stats import percentile  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402
from repro.serve import ReproServer, ServeClient, ServeConfig  # noqa: E402
from repro.serve.protocol import answer_payload  # noqa: E402
from repro.service import QueryRequest, WWTService  # noqa: E402

#: Socket timeout handed to every load client; a request that hits it is
#: a serving failure (the server must shed, not stall).
CLIENT_TIMEOUT_S = 60.0


def run_closed_loop(
    server, queries, concurrency, requests_per_client, deadline_ms=None
):
    """Drive the server with ``concurrency`` closed-loop clients.

    Each client owns one keep-alive connection and a distinct client id,
    sends ``requests_per_client`` uncached requests back-to-back, and
    records per-request (status, latency, degraded).  Returns the merged
    observation dict for one load level.
    """
    results = []
    results_lock = threading.Lock()
    max_queue_depth = [0]

    def client_loop(worker_id):
        rows = []
        with ServeClient(
            server.host, server.port, timeout_s=CLIENT_TIMEOUT_S,
            client_id=f"load-{worker_id}",
        ) as client:
            for i in range(requests_per_client):
                query = queries[(worker_id + i) % len(queries)]
                payload = {"query": str(query), "use_cache": False}
                if deadline_ms is not None:
                    payload["deadline_ms"] = deadline_ms
                t0 = time.perf_counter()
                try:
                    status, _, body = client.query(payload)
                except OSError:
                    rows.append({"status": -1, "latency_ms": None,
                                 "degraded": False})
                    continue
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                degraded = (
                    bool(body["serving"]["degraded"]) if status == 200
                    else False
                )
                rows.append({"status": status, "latency_ms": elapsed_ms,
                             "degraded": degraded})
        with results_lock:
            results.extend(rows)

    def watch_queue(stop):
        while not stop.is_set():
            max_queue_depth[0] = max(max_queue_depth[0], server.queue_depth)
            stop.wait(0.002)

    stop = threading.Event()
    watcher = threading.Thread(target=watch_queue, args=(stop,), daemon=True)
    watcher.start()
    threads = [
        threading.Thread(target=client_loop, args=(worker_id,))
        for worker_id in range(concurrency)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - t0
    stop.set()
    watcher.join()

    answered = [r for r in results if r["status"] == 200]
    latencies = [r["latency_ms"] for r in answered]
    statuses = sorted({r["status"] for r in results})
    return {
        "concurrency": concurrency,
        "requests": len(results),
        "elapsed_s": round(elapsed_s, 3),
        "qps": round(len(answered) / elapsed_s, 2) if elapsed_s else None,
        "answered_2xx": len(answered),
        "degraded": sum(1 for r in answered if r["degraded"]),
        "degraded_ratio": (
            round(sum(1 for r in answered if r["degraded"]) / len(answered), 3)
            if answered else None
        ),
        "rejected_429": sum(1 for r in results if r["status"] == 429),
        "errors_5xx": sum(1 for r in results if 500 <= r["status"] < 600),
        "socket_timeouts": sum(1 for r in results if r["status"] == -1),
        "latency_p50_ms": (
            round(percentile(latencies, 0.50), 3) if latencies else None
        ),
        "latency_p99_ms": (
            round(percentile(latencies, 0.99), 3) if latencies else None
        ),
        "max_queue_depth_observed": max_queue_depth[0],
        "statuses_seen": statuses,
    }


def bench_identity(corpus, queries):
    """Served answers vs direct in-process answers (byte comparison)."""
    service = WWTService(corpus)
    diffs = 0
    with ReproServer(service, ServeConfig(port=0, workers=2)) as server:
        with ServeClient(server.host, server.port) as client:
            for query in queries:
                status, _, body = client.query({"query": str(query)})
                direct = answer_payload(
                    service.answer(QueryRequest.of(query))
                )
                if status != 200 or (
                    json.dumps(body["answer"], sort_keys=True)
                    != json.dumps(direct, sort_keys=True)
                ):
                    diffs += 1
    return {"queries": len(queries), "identity_diffs": diffs}


def bench_sweep(corpus, queries, levels, requests_per_client):
    """Sustained QPS and latency per closed-loop concurrency level."""
    rows = []
    for concurrency in levels:
        service = WWTService(corpus)
        with ReproServer(
            service, ServeConfig(port=0, workers=4, queue_depth=64)
        ) as server:
            row = run_closed_loop(
                server, queries, concurrency, requests_per_client
            )
        rows.append(row)
        print(f"  c={concurrency:>3}: {row['qps']:>7.1f} qps, "
              f"p50 {row['latency_p50_ms']:.1f}ms, "
              f"p99 {row['latency_p99_ms']:.1f}ms, "
              f"429s {row['rejected_429']}", flush=True)
    return rows


def bench_overload(corpus, queries, concurrency, requests_per_client,
                   deadline_ms):
    """A small server under heavy load: shed and reject, never stall."""
    service = WWTService(corpus)
    config = ServeConfig(
        port=0, workers=2, queue_depth=4, default_deadline_ms=deadline_ms,
        retry_after_s=1,
    )
    with ReproServer(service, config) as server:
        row = run_closed_loop(
            server, queries, concurrency, requests_per_client
        )
        stats = server.stats().to_dict()
    row["server_config"] = {
        "workers": config.workers,
        "queue_depth": config.queue_depth,
        "default_deadline_ms": config.default_deadline_ms,
    }
    row["server_stats"] = stats
    print(f"  overload c={concurrency}: "
          f"{row['answered_2xx']}/{row['requests']} answered "
          f"({row['degraded']} degraded), "
          f"{row['rejected_429']} told to back off, "
          f"max queue {row['max_queue_depth_observed']}"
          f"/{config.queue_depth}, "
          f"{row['socket_timeouts']} socket timeouts", flush=True)
    return row


def bench_rate_limit(corpus, query, requests):
    """One hot client against a tight token bucket."""
    service = WWTService(corpus)
    config = ServeConfig(port=0, workers=2, rate_limit=1.0, rate_burst=2)
    with ReproServer(service, config) as server:
        with ServeClient(server.host, server.port, client_id="hot") as client:
            statuses = [
                client.query({"query": str(query)})[0]
                for _ in range(requests)
            ]
        limited = server.stats().rejected_rate_limited
    row = {
        "requests": requests,
        "rate_limit": config.rate_limit,
        "rate_burst": config.rate_burst,
        "answered_2xx": sum(1 for s in statuses if s == 200),
        "rejected_429": sum(1 for s in statuses if s == 429),
        "server_rejected_rate_limited": limited,
    }
    print(f"  rate limit: {row['answered_2xx']}/{requests} answered, "
          f"{row['rejected_429']} throttled "
          f"(bucket: {config.rate_limit:g}/s burst {config.rate_burst})",
          flush=True)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (default 0.3)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to serve (default 16)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per closed-loop client (default 10)")
    parser.add_argument("--concurrency", type=int, nargs="+", default=None,
                        help="closed-loop client counts for the sweep "
                             "(default: 1 2 4 8 16)")
    parser.add_argument("--overload-concurrency", type=int, default=None,
                        help="clients thrown at the small overload server "
                             "(default 16)")
    parser.add_argument("--overload-deadline-ms", type=float, default=None,
                        help="default deadline of the overload server "
                             "(default: half the measured p50 engine "
                             "latency, so shedding provably engages)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI; fills any unset "
                             "option with scale 0.05, 6 queries, "
                             "4 requests, concurrency 1 4, overload 8")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on identity diffs, socket "
                             "timeouts, or 5xx errors (latency and "
                             "throughput are recorded, never gated)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_serving.json"))
    args = parser.parse_args(argv)

    # --smoke only fills options the user left unset.
    smoke_defaults = (0.05, 6, 4, [1, 4], 8)
    full_defaults = (0.3, 16, 10, [1, 2, 4, 8, 16], 16)
    for name, value in zip(
        ("scale", "queries", "requests", "concurrency",
         "overload_concurrency"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    t0 = time.perf_counter()
    corpus = generate_corpus(
        CorpusConfig(seed=args.seed, scale=args.scale)
    ).corpus
    print(f"serving benchmark: scale={args.scale} "
          f"({corpus.num_tables} tables, "
          f"{time.perf_counter() - t0:.1f}s to build), "
          f"{len(queries)} queries, "
          f"{args.requests} requests/client, "
          f"concurrency={args.concurrency}", flush=True)

    print("identity (served vs direct):", flush=True)
    identity = bench_identity(corpus, queries)
    print(f"  {identity['identity_diffs']} diffs over "
          f"{identity['queries']} queries", flush=True)

    print("closed-loop sweep (caches off):", flush=True)
    sweep = bench_sweep(corpus, queries, args.concurrency, args.requests)

    if args.overload_deadline_ms is None:
        # Pin the overload deadline to the engine's own speed: half the
        # p50 uncached latency guarantees budgets run out mid-pipeline
        # at any corpus scale, so the shed path is actually exercised.
        probe_service = WWTService(corpus)
        samples = []
        for query in queries:
            t0 = time.perf_counter()
            probe_service.answer(QueryRequest(query=query, use_cache=False))
            samples.append((time.perf_counter() - t0) * 1000.0)
        args.overload_deadline_ms = max(0.5, percentile(samples, 0.50) / 2.0)

    print(f"overload (2 workers, queue depth 4, "
          f"deadline {args.overload_deadline_ms:.2f}ms):", flush=True)
    overload = bench_overload(
        corpus, queries, args.overload_concurrency, args.requests,
        args.overload_deadline_ms,
    )

    print("rate limiting (one hot client):", flush=True)
    rate_limit = bench_rate_limit(corpus, queries[0], requests=12)

    failures = []
    if identity["identity_diffs"]:
        failures.append(
            f"{identity['identity_diffs']} served-vs-direct identity diffs"
        )
    for row in sweep + [overload]:
        if row["socket_timeouts"]:
            failures.append(
                f"{row['socket_timeouts']} socket timeouts at "
                f"c={row['concurrency']}"
            )
        if row["errors_5xx"]:
            failures.append(
                f"{row['errors_5xx']} 5xx errors at c={row['concurrency']}"
            )

    report = {
        "benchmark": "serving",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "seed": args.seed,
            "scale": args.scale,
            "num_queries": len(queries),
            "requests_per_client": args.requests,
            "concurrency": args.concurrency,
            "overload_concurrency": args.overload_concurrency,
            "overload_deadline_ms": args.overload_deadline_ms,
            "smoke": args.smoke,
        },
        "identity": identity,
        "closed_loop_sweep": sweep,
        "overload": overload,
        "rate_limit": rate_limit,
        "failures": failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"WARNING: {failure}", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
