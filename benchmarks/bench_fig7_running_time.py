# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock latency by design; results are reports, not ranked answers
"""Figure 7: per-query running time broken into pipeline stages.

Regenerates the paper's Figure 7: for every query, total latency split into
1st index probe, 1st table read, 2nd index probe, 2nd table read, column
mapping and consolidation, with queries ordered by increasing total time.
The paper's corpus is six orders of magnitude larger (disk-resident Lucene
index), so absolute numbers differ; the *structure* — two index probes, the
column mapper a modest fraction of the total — is what the reproduction
shows.  Since the execution-engine refactor every slice is read off the
``repro.exec`` span tree (``QueryTiming`` is a view over it), the same
source ``benchmarks/bench_exec.py`` aggregates into per-stage p50/p95.  Also reproduces Section 5.1's method-cost comparison (Basic vs WWT
vs PMI²-augmented, where PMI² is several times slower) and measures the
serving layer's batch + cache throughput over the workload.
"""

import time

from repro.service import EngineConfig, WWTService

from .conftest import write_result

STAGES = ["1st Index", "1st Table Read", "2nd Index", "2nd Table Read",
          "Column Map", "Consolidate"]

#: Caches off: every answer reruns the full pipeline, so the per-stage
#: timings are those of Figure 7, not of a cache lookup.
UNCACHED = EngineConfig(cache_size=0, probe_cache_size=0)


def test_fig7_running_time(env, benchmark):
    service = WWTService(env.synthetic.corpus, UNCACHED)
    timings = []
    for wq in env.queries:
        response = service.answer(wq.query)
        timings.append(
            (response.timing.total, wq.query_id, response.timing.as_dict())
        )
    timings.sort()

    lines = [
        f"{'query (by increasing total time)':<44}"
        + "".join(f"{s:>16}" for s in STAGES)
        + f"{'total':>10}",
        "-" * (44 + 16 * len(STAGES) + 10),
    ]
    for total, qid, stages in timings:
        row = f"{qid[:42]:<44}"
        for stage in STAGES:
            row += f"{stages[stage] * 1000:>14.1f}ms"
        row += f"{total * 1000:>8.1f}ms"
        lines.append(row)
    average = sum(t for t, _q, _s in timings) / len(timings)
    lines.append("-" * 40)
    lines.append(
        f"average per-query time: {average * 1000:.1f}ms "
        "(paper: 6.7s on a 25M-table disk index; 1.5-14s range)"
    )
    write_result("fig7_running_time.txt", "\n".join(lines))

    assert timings[0][0] <= timings[-1][0]

    # Kernel: one full end-to-end query.
    wq = env.queries[0]
    benchmark(service.answer_full, wq.query, use_cache=False)


def test_fig7_batch_cache_throughput(env, benchmark):
    """Serving-layer counterpart of Figure 7: batch fan-out + LRU cache.

    Answers the whole workload cold through ``answer_batch``, then again
    warm, and reports the cache-driven speedup — the serving behaviour the
    paper's latency numbers motivate.
    """
    service = WWTService(
        env.synthetic.corpus,
        EngineConfig(cache_size=256, probe_cache_size=256, max_workers=4),
    )
    queries = [wq.query for wq in env.queries]

    start = time.perf_counter()
    cold = service.answer_batch(queries)
    cold_time = time.perf_counter() - start

    start = time.perf_counter()
    warm = service.answer_batch(queries)
    warm_time = time.perf_counter() - start

    stats = service.stats()
    text = (
        f"batch of {len(queries)} workload queries (4 workers):\n"
        f"  cold: {cold_time * 1000:8.1f}ms "
        f"({cold_time / len(queries) * 1000:.1f}ms/query)\n"
        f"  warm: {warm_time * 1000:8.1f}ms "
        f"({warm_time / len(queries) * 1000:.1f}ms/query)\n"
        f"  speedup: {cold_time / max(warm_time, 1e-9):.1f}x\n"
        f"  result cache: {stats.result_cache.hits} hits / "
        f"{stats.result_cache.misses} misses "
        f"({stats.result_cache.hit_rate:.0%} hit rate)"
    )
    write_result("fig7_batch_cache_throughput.txt", text)

    assert all(not r.cache_hit for r in cold)
    assert all(r.cache_hit for r in warm)
    assert stats.result_cache.hits >= len(queries)
    assert warm_time < cold_time

    # Kernel: one fully-cached answer (the serving hot path).
    benchmark(service.answer, queries[0])


def test_fig7_method_cost_comparison(env, benchmark):
    """Section 5.1: average per-query cost of Basic vs WWT vs PMI²."""
    from repro.baselines.basic import basic_method
    from repro.baselines.pmi_baseline import pmi_method
    from repro.core.model import build_problem
    from repro.core.params import DEFAULT_PARAMS
    from repro.inference import table_centric_inference

    stats = env.synthetic.corpus.stats
    index = env.synthetic.corpus.index
    sample = env.queries[::6]  # every 6th query keeps this test quick

    def time_method(fn):
        start = time.perf_counter()
        for wq in sample:
            fn(wq)
        return (time.perf_counter() - start) / len(sample)

    t_basic = time_method(
        lambda wq: basic_method(wq.query, env.candidates[wq.query_id].tables, stats)
    )
    t_wwt = time_method(
        lambda wq: table_centric_inference(
            build_problem(
                wq.query, env.candidates[wq.query_id].tables, stats, DEFAULT_PARAMS
            )
        )
    )
    t_pmi = time_method(
        lambda wq: pmi_method(
            wq.query, env.candidates[wq.query_id].tables, index, stats
        )
    )
    text = (
        f"average per-query cost (sample of {len(sample)} queries):\n"
        f"  Basic: {t_basic * 1000:8.1f}ms   (paper: 6.3s)\n"
        f"  WWT:   {t_wwt * 1000:8.1f}ms   (paper: 6.7s)\n"
        f"  PMI2:  {t_pmi * 1000:8.1f}ms   (paper: 40s)\n"
        f"PMI2/Basic cost ratio: {t_pmi / max(t_basic, 1e-9):.1f}x "
        f"(paper: ~6.3x)"
    )
    write_result("fig7_method_cost.txt", text)
    assert t_pmi > t_basic  # PMI² must be the expensive method

    # Kernel: the cheap method, for the comparison table's baseline row.
    wq = sample[0]
    benchmark(
        basic_method, wq.query, env.candidates[wq.query_id].tables, stats
    )
