# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock latency by design; results are reports, not ranked answers
"""Shard-count scaling sweep for the ``repro.index.sharded`` subsystem.

Builds one synthetic corpus, then for each shard count measures:

- **build**: partition + index + global-stats time,
- **save / load**: persistence round-trip (load is the O(read) path a
  production process start pays instead of O(re-index)),
- **search p50/p95**: the raw scatter-gather disjunctive probe,
- **probe p50/p95**: the full ``two_stage_probe`` (retrieval + confidence
  + stage 2) — the latency the serving layer actually sees,

and emits a machine-readable ``BENCH_shard_scaling.json`` so every PR
records a perf datapoint (CI runs ``--smoke`` and uploads the artifact).

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        --scale 1.0 --shards 1 2 4 8 --out results/BENCH_shard_scaling.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.index import build_corpus_index, load_corpus  # noqa: E402
from repro.pipeline.probe import ProbeConfig, two_stage_probe  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402


def percentile(values, fraction):
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def build_one(tables, num_shards, probe_workers):
    """Build, persist, and reload one shard count.

    Returns ``(loaded_corpus, partial_metrics_row)``.
    """
    t0 = time.perf_counter()
    corpus = build_corpus_index(tables, num_shards=num_shards)
    build_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="bench_shards_") as tmp:
        path = Path(tmp) / f"corpus-{num_shards}"
        t0 = time.perf_counter()
        corpus.save(path)
        save_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        loaded = load_corpus(path, probe_workers=probe_workers)
        load_s = time.perf_counter() - t0
        size_bytes = sum(
            f.stat().st_size for f in path.rglob("*") if f.is_file()
        )

    return loaded, {
        "num_shards": num_shards,
        "build_s": round(build_s, 4),
        "save_s": round(save_s, 4),
        "load_s": round(load_s, 4),
        "size_kib": round(size_bytes / 1024.0, 1),
    }


def probe_all(corpora, queries, reps):
    """Measure probe latency for every corpus, interleaved.

    Each (rep, query) visits all shard counts back-to-back, so transient
    machine load lands on every backend equally instead of skewing the one
    sweep point that happened to run during it.  Per-query aggregation is
    the minimum across reps — probes here are ~ms-scale, where scheduler
    jitter would otherwise dominate the shard-count comparison — followed
    by percentiles across queries.
    """
    search_by = {k: [[] for _ in queries] for k in corpora}
    probe_by = {k: [[] for _ in queries] for k in corpora}
    config = ProbeConfig(seed=0)
    for _ in range(reps):
        for qi, query in enumerate(queries):
            tokens = query.all_tokens()
            for k, loaded in corpora.items():
                t0 = time.perf_counter()
                loaded.search(tokens, limit=60)
                search_by[k][qi].append((time.perf_counter() - t0) * 1000.0)
                t0 = time.perf_counter()
                two_stage_probe(query, loaded, config)
                probe_by[k][qi].append((time.perf_counter() - t0) * 1000.0)

    out = {}
    for k in corpora:
        search_ms = [min(samples) for samples in search_by[k]]
        probe_ms = [min(samples) for samples in probe_by[k]]
        out[k] = {
            "search_p50_ms": round(percentile(search_ms, 0.50), 4),
            "search_p95_ms": round(percentile(search_ms, 0.95), 4),
            "search_mean_ms": round(statistics.mean(search_ms), 4),
            "probe_p50_ms": round(percentile(probe_ms, 0.50), 4),
            "probe_p95_ms": round(percentile(probe_ms, 0.95), 4),
            "probe_mean_ms": round(statistics.mean(probe_ms), 4),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to probe (default: all 59)")
    parser.add_argument("--reps", type=int, default=None,
                        help="probe repetitions per query (default 3)")
    parser.add_argument("--probe-workers", type=int, default=1,
                        help="scatter-gather thread width (default 1=serial)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI; fills any unset "
                             "option with scale 0.15, shards 1 2 4, "
                             "16 queries, 5 reps")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when multi-shard probe p50 "
                             "exceeds 1.2x single-shard (off by default: "
                             "wall-clock ratios are jittery on shared CI "
                             "runners, so the ratio is recorded, not gated)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_shard_scaling.json"))
    args = parser.parse_args(argv)

    # --smoke only fills options the user left unset.
    smoke_defaults = (0.15, [1, 2, 4], 16, 5)
    full_defaults = (1.0, [1, 2, 4, 8], None, 3)
    for name, value in zip(
        ("scale", "shards", "queries", "reps"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    print(f"generating corpus (scale={args.scale}, seed={args.seed})...",
          flush=True)
    t0 = time.perf_counter()
    synthetic = generate_corpus(CorpusConfig(seed=args.seed, scale=args.scale))
    tables = list(synthetic.corpus.store)
    generate_s = time.perf_counter() - t0
    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    print(f"  {len(tables)} tables in {generate_s:.1f}s; "
          f"probing {len(queries)} queries x {args.reps} reps", flush=True)

    corpora, results = {}, []
    try:
        for k in args.shards:
            corpora[k], row = build_one(tables, k, args.probe_workers)
            results.append(row)
        latencies = probe_all(corpora, queries, args.reps)
    finally:
        for loaded in corpora.values():
            if hasattr(loaded, "close"):
                loaded.close()
    for row in results:
        row.update(latencies[row["num_shards"]])
        print(f"  shards={row['num_shards']}: build {row['build_s']:.2f}s "
              f"load {row['load_s']:.2f}s "
              f"search p50 {row['search_p50_ms']:.2f}ms "
              f"probe p50 {row['probe_p50_ms']:.1f}ms "
              f"p95 {row['probe_p95_ms']:.1f}ms", flush=True)

    # Baseline is the 1-shard row when swept, else the smallest shard count
    # — named explicitly in the output so the ratio is never mislabeled.
    baseline = min(results, key=lambda r: r["num_shards"])
    for row in results:
        row["probe_p50_vs_baseline"] = round(
            row["probe_p50_ms"] / max(baseline["probe_p50_ms"], 1e-9), 3
        )

    report = {
        "benchmark": "shard_scaling",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "num_tables": len(tables),
            "num_queries": len(queries),
            "reps": args.reps,
            "probe_workers": args.probe_workers,
            "smoke": args.smoke,
            "baseline_num_shards": baseline["num_shards"],
        },
        "results": results,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    worst = max(r["probe_p50_vs_baseline"] for r in results)
    label = f"{baseline['num_shards']}-shard baseline"
    print(f"worst probe p50 vs {label}: {worst:.2f}x")
    if worst > 1.2:
        print(f"WARNING: probe latency exceeds 1.2x the {label}",
              file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
