# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock latency by design; results are reports, not ranked answers
"""Shard-count scaling sweep for the ``repro.index.sharded`` subsystem.

Builds one synthetic corpus, then for each shard count measures:

- **build**: partition + index + global-stats time,
- **save / load**: persistence round-trip (load is the O(read) path a
  production process start pays instead of O(re-index)),
- **search p50/p95**: the raw scatter-gather disjunctive probe,
- **probe p50/p95**: the full ``two_stage_probe`` (retrieval + confidence
  + stage 2) — the latency the serving layer actually sees,

and emits a machine-readable ``BENCH_shard_scaling.json`` so every PR
records a perf datapoint (CI runs ``--smoke`` and uploads the artifact).

``--tables N`` switches the corpus source from the HTML extraction
pipeline to :func:`~repro.corpus.generator.iter_synthetic_tables` and
adds a **format sweep** per shard count: the corpus is streamed to disk
(``build_corpus_stream``, O(shard) memory), persisted in both the v2
JSON and v3 binary layouts, and the sweep records save/load wall-clock
for each, the v3 lazy-open + first-probe cost, and — the correctness
gate — whether the 59-query workload ranks **bit-identically** across
the two formats.  This is the 10^5-table datapoint ROADMAP item 2 asks
for; the v3 ``load_ratio_json_over_bin`` is the headline win.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        --scale 1.0 --shards 1 2 4 8 --out results/BENCH_shard_scaling.json
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        --tables 100000 --shards 1 4 16
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import (  # noqa: E402
    CorpusConfig,
    generate_corpus,
    iter_synthetic_tables,
)
from repro.index import (  # noqa: E402
    build_corpus_index,
    build_corpus_stream,
    load_corpus,
)
from repro.pipeline.probe import ProbeConfig, two_stage_probe  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402


def percentile(values, fraction):
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def build_one(tables, num_shards, probe_workers):
    """Build, persist, and reload one shard count.

    Returns ``(loaded_corpus, partial_metrics_row)``.
    """
    t0 = time.perf_counter()
    corpus = build_corpus_index(tables, num_shards=num_shards)
    build_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="bench_shards_") as tmp:
        path = Path(tmp) / f"corpus-{num_shards}"
        t0 = time.perf_counter()
        corpus.save(path)
        save_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        loaded = load_corpus(path, probe_workers=probe_workers)
        load_s = time.perf_counter() - t0
        size_bytes = sum(
            f.stat().st_size for f in path.rglob("*") if f.is_file()
        )

    return loaded, {
        "num_shards": num_shards,
        "build_s": round(build_s, 4),
        "save_s": round(save_s, 4),
        "load_s": round(load_s, 4),
        "size_kib": round(size_bytes / 1024.0, 1),
    }


def build_format_pair(args, num_shards, workdir, rank_queries):
    """Stream one corpus to disk and compare the v2/v3 persistence paths.

    Builds once (streamed, v3), then re-persists the loaded corpus as v2
    JSON so both formats hold the *same* index, and measures each side's
    save/load/first-probe wall-clock plus the 59-query ranking identity.
    Returns ``(v3_loaded_corpus, metrics_row)``.
    """
    bin_dir = workdir / f"bin-{num_shards}"
    json_dir = workdir / f"json-{num_shards}"

    t0 = time.perf_counter()
    build_corpus_stream(
        iter_synthetic_tables(args.tables, seed=args.seed),
        bin_dir, num_shards=num_shards, index_format="bin",
    )
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    corpus_bin = load_corpus(
        bin_dir, probe_workers=args.probe_workers, mutable=False
    )
    load_bin_s = time.perf_counter() - t0
    first_tokens = rank_queries[0].all_tokens()
    t0 = time.perf_counter()
    corpus_bin.search(first_tokens, limit=60)
    first_probe_bin_ms = (time.perf_counter() - t0) * 1000.0

    t0 = time.perf_counter()
    corpus_bin.save(json_dir, index_format="json")
    save_json_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    corpus_json = load_corpus(
        json_dir, probe_workers=args.probe_workers, mutable=False
    )
    load_json_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    corpus_json.search(first_tokens, limit=60)
    first_probe_json_ms = (time.perf_counter() - t0) * 1000.0

    rankings_match = True
    for query in rank_queries:
        tokens = query.all_tokens()
        got_bin = [
            (h.doc_id, h.score) for h in corpus_bin.search(tokens, limit=60)
        ]
        got_json = [
            (h.doc_id, h.score) for h in corpus_json.search(tokens, limit=60)
        ]
        if got_bin != got_json:
            rankings_match = False
            print(f"  RANKING MISMATCH shards={num_shards} "
                  f"query={query.keywords}", file=sys.stderr)
    if hasattr(corpus_json, "close"):
        corpus_json.close()

    def dir_kib(path):
        total = sum(f.stat().st_size for f in path.rglob("*") if f.is_file())
        return round(total / 1024.0, 1)

    return corpus_bin, {
        "num_shards": num_shards,
        "build_s": round(build_s, 4),
        "save_json_s": round(save_json_s, 4),
        "load_bin_s": round(load_bin_s, 6),
        "load_json_s": round(load_json_s, 4),
        "load_ratio_json_over_bin": round(
            load_json_s / max(load_bin_s, 1e-9), 1
        ),
        "first_probe_bin_ms": round(first_probe_bin_ms, 3),
        "first_probe_json_ms": round(first_probe_json_ms, 3),
        "size_bin_kib": dir_kib(bin_dir),
        "size_json_kib": dir_kib(json_dir),
        "rankings_match_json": rankings_match,
    }


def probe_all(corpora, queries, reps):
    """Measure probe latency for every corpus, interleaved.

    Each (rep, query) visits all shard counts back-to-back, so transient
    machine load lands on every backend equally instead of skewing the one
    sweep point that happened to run during it.  Per-query aggregation is
    the minimum across reps — probes here are ~ms-scale, where scheduler
    jitter would otherwise dominate the shard-count comparison — followed
    by percentiles across queries.
    """
    search_by = {k: [[] for _ in queries] for k in corpora}
    probe_by = {k: [[] for _ in queries] for k in corpora}
    config = ProbeConfig(seed=0)
    for _ in range(reps):
        for qi, query in enumerate(queries):
            tokens = query.all_tokens()
            for k, loaded in corpora.items():
                t0 = time.perf_counter()
                loaded.search(tokens, limit=60)
                search_by[k][qi].append((time.perf_counter() - t0) * 1000.0)
                t0 = time.perf_counter()
                two_stage_probe(query, loaded, config)
                probe_by[k][qi].append((time.perf_counter() - t0) * 1000.0)

    out = {}
    for k in corpora:
        search_ms = [min(samples) for samples in search_by[k]]
        probe_ms = [min(samples) for samples in probe_by[k]]
        out[k] = {
            "search_p50_ms": round(percentile(search_ms, 0.50), 4),
            "search_p95_ms": round(percentile(search_ms, 0.95), 4),
            "search_mean_ms": round(statistics.mean(search_ms), 4),
            "probe_p50_ms": round(percentile(probe_ms, 0.50), 4),
            "probe_p95_ms": round(percentile(probe_ms, 0.95), 4),
            "probe_mean_ms": round(statistics.mean(probe_ms), 4),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale factor (default 1.0)")
    parser.add_argument("--tables", type=int, default=None,
                        help="use iter_synthetic_tables at this table count "
                             "(streamed v3 build) and add the v2-vs-v3 "
                             "format sweep; overrides --scale")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to probe (default: all 59)")
    parser.add_argument("--reps", type=int, default=None,
                        help="probe repetitions per query (default 3)")
    parser.add_argument("--probe-workers", type=int, default=1,
                        help="scatter-gather thread width (default 1=serial)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI; fills any unset "
                             "option with scale 0.15, shards 1 2 4, "
                             "16 queries, 5 reps")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when multi-shard probe p50 "
                             "exceeds 1.2x single-shard (off by default: "
                             "wall-clock ratios are jittery on shared CI "
                             "runners, so the ratio is recorded, not gated)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_shard_scaling.json"))
    args = parser.parse_args(argv)

    # --smoke only fills options the user left unset.  The --tables mode
    # caps latency-probe queries at 12 by default (two_stage_probe at 10^5
    # tables is seconds-scale); the ranking-identity check always runs the
    # full workload regardless.
    smoke_defaults = (0.15, [1, 2, 4], 16, 5)
    full_defaults = (1.0, [1, 2, 4, 8], None, 3)
    tables_defaults = (None, [1, 4, 16], 12, 2)
    if args.tables is not None:
        defaults = tables_defaults
    elif args.smoke:
        defaults = smoke_defaults
    else:
        defaults = full_defaults
    for name, value in zip(("scale", "shards", "queries", "reps"), defaults):
        if getattr(args, name) is None:
            setattr(args, name, value)

    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    corpora, results = {}, []
    if args.tables is not None:
        rank_queries = [wq.query for wq in WORKLOAD]
        print(f"format sweep: {args.tables} synthetic tables "
              f"(seed={args.seed}), shards {args.shards}; ranking identity "
              f"over {len(rank_queries)} queries", flush=True)
        with tempfile.TemporaryDirectory(prefix="bench_binfmt_") as tmp:
            try:
                for k in args.shards:
                    corpora[k], row = build_format_pair(
                        args, k, Path(tmp), rank_queries
                    )
                    results.append(row)
                    print(f"  shards={k}: build {row['build_s']:.1f}s "
                          f"save-json {row['save_json_s']:.1f}s "
                          f"load bin {row['load_bin_s'] * 1000:.1f}ms "
                          f"vs json {row['load_json_s']:.1f}s "
                          f"({row['load_ratio_json_over_bin']:.0f}x) "
                          f"first probe {row['first_probe_bin_ms']:.0f}ms "
                          f"match={row['rankings_match_json']}", flush=True)
                latencies = probe_all(corpora, queries, args.reps)
            finally:
                for loaded in corpora.values():
                    if hasattr(loaded, "close"):
                        loaded.close()
        if not all(r["rankings_match_json"] for r in results):
            print("ERROR: v3 rankings diverge from v2", file=sys.stderr)
            return 1
    else:
        print(f"generating corpus (scale={args.scale}, seed={args.seed})...",
              flush=True)
        t0 = time.perf_counter()
        synthetic = generate_corpus(
            CorpusConfig(seed=args.seed, scale=args.scale)
        )
        tables = list(synthetic.corpus.store)
        generate_s = time.perf_counter() - t0
        print(f"  {len(tables)} tables in {generate_s:.1f}s; "
              f"probing {len(queries)} queries x {args.reps} reps",
              flush=True)
        try:
            for k in args.shards:
                corpora[k], row = build_one(tables, k, args.probe_workers)
                results.append(row)
            latencies = probe_all(corpora, queries, args.reps)
        finally:
            for loaded in corpora.values():
                if hasattr(loaded, "close"):
                    loaded.close()
    for row in results:
        row.update(latencies[row["num_shards"]])
        if args.tables is None:
            print(f"  shards={row['num_shards']}: "
                  f"build {row['build_s']:.2f}s "
                  f"load {row['load_s']:.2f}s "
                  f"search p50 {row['search_p50_ms']:.2f}ms "
                  f"probe p50 {row['probe_p50_ms']:.1f}ms "
                  f"p95 {row['probe_p95_ms']:.1f}ms", flush=True)

    # Baseline is the 1-shard row when swept, else the smallest shard count
    # — named explicitly in the output so the ratio is never mislabeled.
    baseline = min(results, key=lambda r: r["num_shards"])
    for row in results:
        row["probe_p50_vs_baseline"] = round(
            row["probe_p50_ms"] / max(baseline["probe_p50_ms"], 1e-9), 3
        )

    report = {
        "benchmark": "shard_scaling",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "num_tables": (
                args.tables if args.tables is not None else len(tables)
            ),
            "corpus_source": (
                "iter_synthetic_tables" if args.tables is not None
                else "generate_corpus"
            ),
            "index_format": (
                "bin-vs-json" if args.tables is not None else "bin"
            ),
            "num_queries": len(queries),
            "reps": args.reps,
            "probe_workers": args.probe_workers,
            "smoke": args.smoke,
            "baseline_num_shards": baseline["num_shards"],
        },
        "results": results,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    worst = max(r["probe_p50_vs_baseline"] for r in results)
    label = f"{baseline['num_shards']}-shard baseline"
    print(f"worst probe p50 vs {label}: {worst:.2f}x")
    if worst > 1.2:
        print(f"WARNING: probe latency exceeds 1.2x the {label}",
              file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
