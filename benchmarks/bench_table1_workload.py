"""Table 1: the query set with per-query candidate/relevant table counts.

Regenerates the paper's Table 1 on the synthetic corpus: for each of the 59
queries, the number of source tables returned by the two-stage index probe
and how many of them are relevant.  The paper reports 0-68 candidates per
query (average 32.29) with on average 60% relevant; our corpus is scaled
down but the per-query profile follows the same distribution.
"""

from repro.pipeline.probe import two_stage_probe

from .conftest import write_result


def test_table1_query_set(env, benchmark):
    lines = [
        f"{'query':<58} {'total':>6} {'relevant':>9} {'paper':>12}",
        "-" * 88,
    ]
    totals = []
    relevant_fractions = []
    for wq in env.queries:
        probe = env.candidates[wq.query_id]
        relevant_ids = set(env.truth.relevant_tables(wq.query_id))
        n_rel = sum(1 for t in probe.tables if t.table_id in relevant_ids)
        totals.append(probe.num_candidates)
        if probe.num_candidates:
            relevant_fractions.append(n_rel / probe.num_candidates)
        lines.append(
            f"{wq.query_id:<58} {probe.num_candidates:>6} {n_rel:>9} "
            f"{wq.paper_relevant:>5}/{wq.paper_total}"
        )
    avg_total = sum(totals) / len(totals)
    avg_rel = (
        sum(relevant_fractions) / len(relevant_fractions)
        if relevant_fractions else 0.0
    )
    lines.append("-" * 88)
    lines.append(
        f"average candidates per query: {avg_total:.2f} (paper: 32.29); "
        f"average relevant fraction: {avg_rel:.0%} (paper: ~60%)"
    )
    write_result("table1_query_set.txt", "\n".join(lines))

    # Kernel: one representative two-stage probe.
    wq = env.queries[14]  # country | currency
    benchmark(two_stage_probe, wq.query, env.synthetic.corpus)

    assert avg_total > 10
    assert 0.2 <= avg_rel <= 0.95
