# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock latency by design; results are reports, not ranked answers
"""Hot-path regression harness: compiled postings + feature memoization.

Measures the two hot-path optimizations against their retained baselines
and verifies — in the same run — that neither changes a single ranking or
answer:

- **search top-k** (per corpus size): the compiled
  ``InvertedIndex.search`` vs the :class:`~repro.index.NaiveScorer`
  reference (the pre-compilation algorithm, snapshotted outside the timed
  region), per-query-min latency over the workload, hit-for-hit equality
  asserted on every probe.
- **pipeline** (per query): the full serve path (probe → column map →
  consolidate) through ``WWTService`` with feature memoization on vs off,
  per-stage latency split from ``QueryTiming``, answer rows compared for
  equality.
- **cache hit rates**: the feature cache's counters over the workload.

Emits machine-readable ``BENCH_hotpath.json``; CI runs ``--smoke`` and
uploads the artifact.  The speedup gate mirrors
``bench_shard_scaling``'s soft 1.2x pattern: a compiled-vs-naive search
speedup below ``--min-speedup`` (default 2.0) or any ranking/answer diff
prints a warning, and ``--strict`` turns the warning into a non-zero
exit (diffs are always fatal under ``--strict``, speedup only gates the
largest swept corpus where timing noise is smallest).

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --scales 0.25 0.5 1.0 --out results/BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.index import NaiveScorer  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402
from repro.service import EngineConfig, WWTService  # noqa: E402


def percentile(values, fraction):
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def hits_key(hits):
    """Comparable identity of a ranked result list (ids + exact scores)."""
    return [(h.doc_id, h.score) for h in hits]


def bench_search(scale, seed, queries, reps, limit):
    """One corpus size: compiled vs naive top-k latency + equivalence.

    Per-query aggregation is the minimum across reps (searches are
    sub-millisecond, where scheduler jitter would otherwise dominate),
    compiled and naive interleaved per query so transient machine load
    lands on both sides equally.
    """
    t0 = time.perf_counter()
    synthetic = generate_corpus(CorpusConfig(seed=seed, scale=scale))
    corpus = synthetic.corpus
    generate_s = time.perf_counter() - t0
    naive = NaiveScorer(corpus.index)

    compiled_by = [[] for _ in queries]
    naive_by = [[] for _ in queries]
    ranking_diffs = 0
    for rep in range(reps):
        for qi, query in enumerate(queries):
            tokens = query.all_tokens()
            t0 = time.perf_counter()
            compiled_hits = corpus.search(tokens, limit=limit)
            compiled_by[qi].append((time.perf_counter() - t0) * 1000.0)
            t0 = time.perf_counter()
            naive_hits = naive.search(tokens, limit=limit)
            naive_by[qi].append((time.perf_counter() - t0) * 1000.0)
            if rep == 0 and hits_key(compiled_hits) != hits_key(naive_hits):
                ranking_diffs += 1

    compiled_ms = [min(samples) for samples in compiled_by]
    naive_ms = [min(samples) for samples in naive_by]
    speedup = percentile(naive_ms, 0.50) / max(
        percentile(compiled_ms, 0.50), 1e-9
    )
    return {
        "scale": scale,
        "num_tables": corpus.num_tables,
        "generate_s": round(generate_s, 2),
        "limit": limit,
        "compiled_p50_ms": round(percentile(compiled_ms, 0.50), 4),
        "compiled_p95_ms": round(percentile(compiled_ms, 0.95), 4),
        "compiled_mean_ms": round(statistics.mean(compiled_ms), 4),
        "naive_p50_ms": round(percentile(naive_ms, 0.50), 4),
        "naive_p95_ms": round(percentile(naive_ms, 0.95), 4),
        "naive_mean_ms": round(statistics.mean(naive_ms), 4),
        "speedup_p50": round(speedup, 3),
        "ranking_diffs": ranking_diffs,
    }, corpus


def probe_slice(timing):
    """The Figure 7 retrieval slices of one ``QueryTiming``, in ms."""
    return 1000.0 * (
        timing.index1 + timing.read1 + timing.confidence
        + timing.index2 + timing.read2
    )


def bench_pipeline(corpus, queries, reps):
    """Full serve path with feature memoization on vs off, per query.

    Both services run with the result/probe LRUs disabled so every rep
    exercises the whole pipeline; "memoized" differs only in the
    per-(query, table) feature cache, which is what turns the facade's
    problem assembly into an incremental extension of the probe's
    confidence pass.  Answer rows are compared on the first rep.
    """
    plain = WWTService(corpus, EngineConfig(
        cache_size=0, probe_cache_size=0, feature_cache_size=0,
    ))
    memoized = WWTService(corpus, EngineConfig(
        cache_size=0, probe_cache_size=0,
    ))

    before_total, after_total = [], []
    before_map, after_map = [], []
    before_probe, after_probe = [], []
    answer_diffs = 0
    for rep in range(reps):
        if rep:
            # Drop the feature cache between reps so every rep measures
            # the same *intra-query* memoization (probe pass -> facade
            # assembly), never a warm replay of the previous rep — warm
            # identical repeats are the result cache's job in production.
            memoized.clear_caches()
        for qi, query in enumerate(queries):
            t0 = time.perf_counter()
            plain_answer = plain.answer_full(query, use_cache=False)
            before_ms = (time.perf_counter() - t0) * 1000.0
            t0 = time.perf_counter()
            memo_answer = memoized.answer_full(query, use_cache=False)
            after_ms = (time.perf_counter() - t0) * 1000.0
            if rep == 0:
                before_total.append(before_ms)
                after_total.append(after_ms)
                before_map.append(1000.0 * plain_answer.timing.column_map)
                after_map.append(1000.0 * memo_answer.timing.column_map)
                before_probe.append(probe_slice(plain_answer.timing))
                after_probe.append(probe_slice(memo_answer.timing))
                if [r.cells for r in plain_answer.answer.rows] != [
                    r.cells for r in memo_answer.answer.rows
                ]:
                    answer_diffs += 1
            else:
                # Later reps keep the minimum (jitter suppression).
                before_total[qi] = min(before_total[qi], before_ms)
                after_total[qi] = min(after_total[qi], after_ms)

    stats = memoized.stats()
    return {
        "num_queries": len(queries),
        "before_total_p50_ms": round(percentile(before_total, 0.50), 3),
        "after_total_p50_ms": round(percentile(after_total, 0.50), 3),
        "before_total_mean_ms": round(statistics.mean(before_total), 3),
        "after_total_mean_ms": round(statistics.mean(after_total), 3),
        "before_column_map_p50_ms": round(percentile(before_map, 0.50), 3),
        "after_column_map_p50_ms": round(percentile(after_map, 0.50), 3),
        "before_probe_p50_ms": round(percentile(before_probe, 0.50), 3),
        "after_probe_p50_ms": round(percentile(after_probe, 0.50), 3),
        "total_speedup_p50": round(
            percentile(before_total, 0.50)
            / max(percentile(after_total, 0.50), 1e-9), 3
        ),
        "answer_diffs": answer_diffs,
        "feature_cache": stats.feature_cache.to_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", type=float, nargs="+", default=None,
                        help="corpus scales for the search sweep "
                             "(default: 0.15 0.3 0.6)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to run (default: all 59)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per query (default 3)")
    parser.add_argument("--limit", type=int, default=60,
                        help="search top-k (default 60, the stage-1 limit)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="compiled-vs-naive search speedup the largest "
                             "corpus must reach (default 2.0)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI; fills any unset "
                             "option with scales 0.1 0.2, 16 queries, "
                             "3 reps")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on any ranking/answer diff or "
                             "a search speedup below --min-speedup (off by "
                             "default: wall-clock ratios are jittery on "
                             "shared CI runners, so the ratio is recorded, "
                             "not gated)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    # --smoke only fills options the user left unset.
    smoke_defaults = ([0.1, 0.2], 16, 3)
    full_defaults = ([0.15, 0.3, 0.6], None, 3)
    for name, value in zip(
        ("scales", "queries", "reps"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    print(f"hot-path sweep: scales={args.scales} "
          f"{len(queries)} queries x {args.reps} reps, "
          f"top-{args.limit}", flush=True)

    search_rows = []
    largest_corpus = None
    for scale in args.scales:
        row, corpus = bench_search(
            scale, args.seed, queries, args.reps, args.limit
        )
        search_rows.append(row)
        largest_corpus = corpus  # scales sweep smallest -> largest
        print(f"  scale={scale} ({row['num_tables']} tables): "
              f"compiled p50 {row['compiled_p50_ms']:.3f}ms vs "
              f"naive {row['naive_p50_ms']:.3f}ms -> "
              f"{row['speedup_p50']:.2f}x, "
              f"diffs={row['ranking_diffs']}", flush=True)

    pipeline = bench_pipeline(largest_corpus, queries, args.reps)
    print(f"  pipeline p50: {pipeline['before_total_p50_ms']:.1f}ms -> "
          f"{pipeline['after_total_p50_ms']:.1f}ms "
          f"({pipeline['total_speedup_p50']:.2f}x), column-map p50 "
          f"{pipeline['before_column_map_p50_ms']:.1f}ms -> "
          f"{pipeline['after_column_map_p50_ms']:.1f}ms, "
          f"feature-cache hit rate "
          f"{pipeline['feature_cache']['hit_rate']:.2f}, "
          f"answer diffs={pipeline['answer_diffs']}", flush=True)

    report = {
        "benchmark": "hotpath",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "seed": args.seed,
            "scales": args.scales,
            "num_queries": len(queries),
            "reps": args.reps,
            "limit": args.limit,
            "min_speedup": args.min_speedup,
            "smoke": args.smoke,
        },
        "search_topk": search_rows,
        "pipeline": pipeline,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    total_diffs = (
        sum(r["ranking_diffs"] for r in search_rows)
        + pipeline["answer_diffs"]
    )
    if total_diffs:
        failures.append(f"{total_diffs} ranking/answer diff(s) vs the "
                        "naive reference — correctness regression")
    gate_row = search_rows[-1]
    if gate_row["speedup_p50"] < args.min_speedup:
        failures.append(
            f"search speedup {gate_row['speedup_p50']:.2f}x at scale "
            f"{gate_row['scale']} is below the {args.min_speedup:.1f}x gate"
        )
    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    if failures and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
