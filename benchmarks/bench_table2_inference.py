"""Table 2: collective inference algorithms on F1 error over query groups.

Regenerates the paper's Table 2: the F1 error of no collective inference
("None"), constrained α-expansion, loopy BP, TRW-S, and the table-centric
algorithm, over the seven hard-query groups and overall.  The paper's
ordering — table-centric best (30.3%), then α-expansion (31.3%), BP (31.5%),
TRW-S (32.3%), None worst (33.1%) — is the shape under test; the kernel
benchmark also reproduces the ~1x/5x/6x/30x relative running times.
"""

import pytest

from repro.core.model import build_problem
from repro.core.params import DEFAULT_PARAMS
from repro.evaluation.harness import bin_queries, split_easy_hard
from repro.inference import REGISTRY

from .conftest import write_result

COLUMNS = [
    ("None", "wwt-none"),
    ("a-exp", "wwt-alpha"),
    ("BP", "wwt-bp"),
    ("TRWS", "wwt-trws"),
    ("Table-centric", "wwt"),
]
PAPER_OVERALL = {
    "None": 33.1, "a-exp": 31.3, "BP": 31.5, "TRWS": 32.3, "Table-centric": 30.3,
}


def test_table2_collective_inference(env, method_runs, benchmark):
    runs = {label: method_runs(method) for label, method in COLUMNS}
    basic = method_runs("basic")

    qids = [wq.query_id for wq in env.queries]
    all_runs = dict(runs)
    all_runs["basic"] = basic
    _easy, hard = split_easy_hard(all_runs, qids)
    groups = bin_queries(basic.errors, hard)

    lines = [
        f"{'Group':<8}" + "".join(f"{label:>15}" for label, _m in COLUMNS),
        "-" * (8 + 15 * len(COLUMNS)),
    ]
    for gi, group in enumerate(groups, start=1):
        row = f"{gi:<8}"
        for label, _method in COLUMNS:
            row += f"{runs[label].mean_error(group):>15.1f}"
        lines.append(row)
    overall = f"{'Overall':<8}"
    for label, _method in COLUMNS:
        overall += f"{runs[label].mean_error(hard):>15.1f}"
    lines.append(overall)
    lines.append("")
    lines.append(
        "paper overall: "
        + "  ".join(f"{k}={v}" for k, v in PAPER_OVERALL.items())
    )
    write_result("table2_collective_inference.txt", "\n".join(lines))

    # Shape assertions: table-centric best, None worst (as in the paper).
    overall_errors = {label: runs[label].mean_error(hard) for label, _m in COLUMNS}
    assert overall_errors["Table-centric"] == min(overall_errors.values())
    assert overall_errors["None"] == max(overall_errors.values())

    # Kernel: one query's problem solved by the table-centric algorithm.
    wq = next(q for q in env.queries if q.query_id.startswith("black metal"))
    probe = env.candidates[wq.query_id]
    problem = build_problem(
        wq.query, probe.tables, env.synthetic.corpus.stats, DEFAULT_PARAMS
    )
    benchmark(REGISTRY.get_algorithm("table-centric"), problem)


@pytest.mark.parametrize("name", ["none", "alpha-expansion", "bp", "trws"])
def test_table2_algorithm_runtime(env, benchmark, name):
    """Relative runtimes of the collective algorithms (Section 5.3)."""
    wq = next(q for q in env.queries if q.query_id.startswith("black metal"))
    probe = env.candidates[wq.query_id]
    problem = build_problem(
        wq.query, probe.tables, env.synthetic.corpus.stats, DEFAULT_PARAMS
    )
    benchmark(REGISTRY.get_algorithm(name), problem)
