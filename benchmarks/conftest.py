"""Shared state for the experiment benchmarks.

The evaluation environment (corpus generation + two-stage probes for all 59
queries) and the per-method runs are expensive; they are built once per
pytest session and shared by every benchmark.  Each benchmark regenerates
one of the paper's tables/figures, writes it under ``results/``, and times a
representative kernel via pytest-benchmark.
"""

import functools
from pathlib import Path

import pytest

from repro.evaluation.harness import build_environment, run_method

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Evaluation corpus settings (training used seed 7; see DESIGN.md).
EVAL_SCALE = 1.0
EVAL_SEED = 42


@pytest.fixture(scope="session")
def env():
    """The shared evaluation environment."""
    return build_environment(scale=EVAL_SCALE, seed=EVAL_SEED)


@functools.lru_cache(maxsize=None)
def _cached_run(method: str):
    environment = build_environment(scale=EVAL_SCALE, seed=EVAL_SEED)
    return run_method(environment, method)


@pytest.fixture(scope="session")
def method_runs():
    """Lazy accessor for per-method workload runs (cached per session)."""
    return _cached_run


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table/figure under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text, encoding="utf-8")
    print(f"\n=== results/{name} ===\n{text}")
    return path
