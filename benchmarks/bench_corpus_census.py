"""Section 2.1's offline corpus statistics.

Regenerates the in-text numbers: the fraction of table tags holding
relational data and the header-row histogram (paper: 18% none / 60% one /
17% two / 5% more than two).  The kernel benchmark times corpus generation
itself (parse + extract + header detect + context + index).
"""

from repro.corpus.generator import CorpusConfig, generate_corpus

from .conftest import write_result


def test_corpus_census(env, benchmark):
    census = env.synthetic.census
    hist = census.header_row_histogram
    total = sum(hist.values())
    names = {0: "no header", 1: "one header row", 2: "two header rows",
             3: "more than two"}
    paper = {0: 18, 1: 60, 2: 17, 3: 5}

    lines = [
        f"table tags seen:       {census.table_tags}",
        f"data tables extracted: {census.data_tables} "
        f"({census.yield_fraction:.0%} yield; paper ~10%)",
        "",
        "rejection reasons:",
    ]
    for reason, count in sorted(census.rejected.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {reason:<22} {count}")
    lines.append("")
    lines.append(f"{'header rows':<18}{'count':>7}{'ours':>7}{'paper':>7}")
    for key in sorted(hist):
        lines.append(
            f"{names[key]:<18}{hist[key]:>7}{hist[key] / total:>7.0%}"
            f"{paper[key]:>6}%"
        )
    write_result("corpus_census.txt", "\n".join(lines))

    # Shape: distribution within loose bands of the paper's.
    assert 0.08 <= hist.get(0, 0) / total <= 0.30
    assert 0.45 <= hist.get(1, 0) / total <= 0.80
    assert hist.get(2, 0) / total <= 0.30

    # Kernel: small-scale corpus generation end to end.
    benchmark(generate_corpus, CorpusConfig(seed=5, scale=0.05))
