"""Figure 5: error reduction relative to Basic for PMI², NbrText, and WWT.

Regenerates the paper's Figure 5: hard queries (where methods differ by
more than 0.5%) are binned into seven groups by Basic's error; for each
group we report each method's error reduction relative to Basic, plus the
side table of Basic's per-group error.  The paper's shape: WWT reduces
error in every group (overall 34.7% -> 30.3%); NbrText helps some groups
and hurts others; PMI² is mixed and yields no overall gain.
"""

from repro.evaluation.harness import bin_queries, split_easy_hard

from .conftest import write_result

METHODS = [("PMI2", "pmi2"), ("NbrText", "nbrtext"), ("WWT", "wwt")]


def test_fig5_error_reduction(env, method_runs, benchmark):
    basic = method_runs("basic")
    runs = {label: method_runs(method) for label, method in METHODS}

    qids = [wq.query_id for wq in env.queries]
    all_runs = dict(runs)
    all_runs["Basic"] = basic
    easy, hard = split_easy_hard(all_runs, qids)
    groups = bin_queries(basic.errors, hard)

    lines = [
        f"easy queries: {len(easy)}   hard queries: {len(hard)}",
        "",
        f"{'Group':<7}{'Basic err':>10}"
        + "".join(f"{label + ' red.':>14}" for label, _m in METHODS),
        "-" * (17 + 14 * len(METHODS)),
    ]
    for gi, group in enumerate(groups, start=1):
        base_err = basic.mean_error(group)
        row = f"{gi:<7}{base_err:>9.1f}%"
        for label, _method in METHODS:
            reduction = base_err - runs[label].mean_error(group)
            row += f"{reduction:>+13.1f}%"
        lines.append(row)

    base_overall = basic.mean_error(hard)
    lines.append("-" * (17 + 14 * len(METHODS)))
    row = f"{'Overall':<7}{base_overall:>9.1f}%"
    for label, _method in METHODS:
        row += f"{base_overall - runs[label].mean_error(hard):>+13.1f}%"
    lines.append(row)
    lines.append("")
    lines.append("paper: Basic 34.7%, PMI2 34.7%, NbrText 34.2%, WWT 30.3% overall")
    write_result("fig5_error_reduction.txt", "\n".join(lines))

    # Shape: WWT reduces overall error; PMI² does not beat WWT anywhere.
    assert runs["WWT"].mean_error(hard) < base_overall
    assert runs["WWT"].mean_error(hard) < runs["PMI2"].mean_error(hard)

    benchmark(basic.mean_error, hard)
