"""Figure 8: segmented vs unsegmented similarity, per query.

Regenerates the paper's Figure 8 scatter: each hard query's F1 error under
the full model with SegSim/Cover versus the same model with plain cosine
header similarity (both independently trained).  The paper's shape: all but
three of 32 points lie below the diagonal (segmented at least as good), and
the overall error drops from 33.3% to 30.3%.
"""

from repro.evaluation.harness import split_easy_hard

from .conftest import write_result


def test_fig8_segmented_vs_unsegmented(env, method_runs, benchmark):
    seg = method_runs("wwt")
    unseg = method_runs("wwt-unsegmented")

    qids = [wq.query_id for wq in env.queries]
    _easy, hard = split_easy_hard({"seg": seg, "unseg": unseg}, qids)

    below = on = above = 0
    lines = [
        f"{'query':<58}{'unsegmented':>12}{'segmented':>11}",
        "-" * 81,
    ]
    for qid in hard:
        e_unseg = unseg.errors[qid]
        e_seg = seg.errors[qid]
        if e_seg < e_unseg - 1e-9:
            below += 1
        elif e_seg > e_unseg + 1e-9:
            above += 1
        else:
            on += 1
        lines.append(f"{qid:<58}{e_unseg:>11.1f}%{e_seg:>10.1f}%")
    lines.append("-" * 81)
    lines.append(
        f"overall: unsegmented {unseg.mean_error(hard):.1f}% -> "
        f"segmented {seg.mean_error(hard):.1f}% "
        "(paper: 33.3% -> 30.3%)"
    )
    lines.append(
        f"scatter: {below} queries below the diagonal (segmented better), "
        f"{on} on it, {above} above "
        "(paper: all but 3 of 32 below)"
    )
    write_result("fig8_segmentation.txt", "\n".join(lines))

    # Shape: segmentation wins overall and per-query wins dominate losses.
    assert seg.mean_error(hard) < unseg.mean_error(hard)
    assert below > above

    # Kernel: segmented similarity computation for one query column.
    from repro.core.segsim import TablePartIndex, segmented_similarity
    from repro.text.tokenize import tokenize

    wq = env.queries[14]
    table = env.candidates[wq.query_id].tables[0]
    part_index = TablePartIndex(table, env.synthetic.corpus.stats)
    benchmark(
        segmented_similarity,
        tokenize(wq.query.columns[0]),
        part_index,
        0,
        env.synthetic.corpus.stats,
    )
