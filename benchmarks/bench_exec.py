# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock latency by design; results are reports, not ranked answers
"""Execution-engine benchmark: per-stage latency, deadline sweep, quality.

Measures what the staged executor (``repro.exec``) makes observable and
enforceable:

- **per-stage latency**: p50/p95 per pipeline stage (``parse`` through
  ``rank``) over the workload, read off the service's span-fed
  aggregates — the numbers behind Figure 7, now from the span tree;
- **identity**: with no deadline, executor answers must match an
  independent unbounded run row-for-row (``identity_diffs``, fatal under
  ``--strict``);
- **deadline sweep**: for each budget, the deadline-hit ratio, degraded
  ratio, served-latency p50/p95, the p95 overshoot beyond the budget
  (the "one stage granularity" slack), and the degraded answers'
  quality vs the full answers (recall of the full answer's top-10 rows).

Emits machine-readable ``BENCH_exec.json``; CI runs ``--smoke --strict``
and uploads the artifact.  Latency ratios are recorded, never gated
(shared-runner jitter); only correctness (identity diffs) is fatal.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_exec.py --smoke
    PYTHONPATH=src python benchmarks/bench_exec.py \
        --scale 0.4 --budgets 2 5 10 20 50 --out results/BENCH_exec.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.exec.stats import percentile  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402
from repro.service import EngineConfig, WWTService  # noqa: E402

#: Caches off: every answer runs the full plan, so stage aggregates and
#: deadline behaviour are those of cold queries, not cache lookups.
UNCACHED = dict(cache_size=0, probe_cache_size=0)  # reprolint: disable=R004 -- config constant (never mutated), not a cache


def row_recall(full_rows, degraded_rows, top=10):
    """Fraction of the full answer's top rows present in the degraded one."""
    reference = [tuple(r.cells) for r in full_rows[:top]]
    if not reference:
        return 1.0
    got = {tuple(r.cells) for r in degraded_rows}
    return sum(1 for cells in reference if cells in got) / len(reference)


def bench_stages(corpus, queries, reps):
    """Per-stage p50/p95 (ms) over the workload, from the span-fed
    aggregates, plus an executor-vs-executor identity check."""
    service = WWTService(corpus, EngineConfig(**UNCACHED))
    witness = WWTService(corpus, EngineConfig(**UNCACHED))
    identity_diffs = 0
    full_answers = {}
    for rep in range(reps):
        for query in queries:
            full = service.answer_full(query, use_cache=False)
            if rep == 0:
                again = witness.answer_full(query, use_cache=False)
                if [r.cells for r in full.answer.rows] != [
                    r.cells for r in again.answer.rows
                ]:
                    identity_diffs += 1
                full_answers[str(query)] = full.answer.rows
    stages = {
        name: {
            "count": agg.count,
            "p50_ms": round(agg.p50 * 1000.0, 3),
            "p95_ms": round(agg.p95 * 1000.0, 3),
            "mean_ms": round(agg.mean * 1000.0, 3),
        }
        for name, agg in sorted(service.stats().stages.items())
    }
    return stages, full_answers, identity_diffs


def bench_budget(corpus, queries, budget_ms, full_answers):
    """One deadline budget: hit/degraded ratios, latency, quality."""
    service = WWTService(
        corpus, EngineConfig(deadline_ms=budget_ms, **UNCACHED)
    )
    served_ms, overshoot_ms, recalls = [], [], []
    degraded = 0
    for query in queries:
        t0 = time.perf_counter()
        response = service.answer(query)
        elapsed = (time.perf_counter() - t0) * 1000.0
        served_ms.append(elapsed)
        overshoot_ms.append(max(0.0, elapsed - budget_ms))
        if response.degraded:
            degraded += 1
        recalls.append(
            row_recall(full_answers[str(query)], response.rows)
        )
    stats = service.stats()
    return {
        "budget_ms": budget_ms,
        "deadline_hit_ratio": round(stats.deadline_hits / len(queries), 3),
        "degraded_ratio": round(degraded / len(queries), 3),
        "served_p50_ms": round(percentile(served_ms, 0.50), 3),
        "served_p95_ms": round(percentile(served_ms, 0.95), 3),
        "overshoot_p95_ms": round(percentile(overshoot_ms, 0.95), 3),
        "mean_row_recall_top10": round(statistics.mean(recalls), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (default 0.4)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to run (default: all 59)")
    parser.add_argument("--reps", type=int, default=None,
                        help="stage-latency repetitions (default 3)")
    parser.add_argument("--budgets", type=float, nargs="+", default=None,
                        help="deadline budgets in ms for the sweep "
                             "(default: 1 2 5 10 20 50)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI; fills any unset "
                             "option with scale 0.1, 16 queries, 2 reps, "
                             "budgets 1 5 20")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on any identity diff (latency "
                             "and quality numbers are recorded, never "
                             "gated — shared CI runners are jittery)")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_exec.json"))
    args = parser.parse_args(argv)

    # --smoke only fills options the user left unset.
    smoke_defaults = (0.1, 16, 2, [1.0, 5.0, 20.0])
    full_defaults = (0.4, None, 3, [1.0, 2.0, 5.0, 10.0, 20.0, 50.0])
    for name, value in zip(
        ("scale", "queries", "reps", "budgets"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    t0 = time.perf_counter()
    synthetic = generate_corpus(CorpusConfig(seed=args.seed, scale=args.scale))
    corpus = synthetic.corpus
    print(f"exec benchmark: scale={args.scale} "
          f"({corpus.num_tables} tables, "
          f"{time.perf_counter() - t0:.1f}s to build), "
          f"{len(queries)} queries x {args.reps} reps, "
          f"budgets={args.budgets}ms", flush=True)

    stages, full_answers, identity_diffs = bench_stages(
        corpus, queries, args.reps
    )
    for name, row in stages.items():
        print(f"  {name:<18} p50 {row['p50_ms']:>7.2f}ms  "
              f"p95 {row['p95_ms']:>7.2f}ms  (n={row['count']})",
              flush=True)
    print(f"  identity diffs (unbounded executor, independent runs): "
          f"{identity_diffs}", flush=True)

    sweep = []
    for budget in args.budgets:
        row = bench_budget(corpus, queries, budget, full_answers)
        sweep.append(row)
        print(f"  budget {budget:>6.1f}ms: "
              f"hit {row['deadline_hit_ratio']:.0%}, "
              f"degraded {row['degraded_ratio']:.0%}, "
              f"served p95 {row['served_p95_ms']:.1f}ms "
              f"(overshoot p95 {row['overshoot_p95_ms']:.1f}ms), "
              f"recall@10 {row['mean_row_recall_top10']:.2f}", flush=True)

    report = {
        "benchmark": "exec",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "seed": args.seed,
            "scale": args.scale,
            "num_queries": len(queries),
            "reps": args.reps,
            "budgets_ms": args.budgets,
            "smoke": args.smoke,
        },
        "stages": stages,
        "identity_diffs": identity_diffs,
        "deadline_sweep": sweep,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    if identity_diffs:
        print(f"WARNING: {identity_diffs} identity diff(s) between "
              "independent unbounded executor runs — determinism "
              "regression", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
