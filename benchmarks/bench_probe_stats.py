"""Section 2.2.1's two-stage probe statistics, plus the one-stage ablation.

The paper reports: the second index probe fired for 65% of queries; for
those queries about 50% of the relevant tables came from the second stage;
the relevant fraction was 52% in stage 1 vs 70% in stage 2.  This benchmark
reports the same quantities on the synthetic corpus and measures the
retrieval-recall gain of the second stage over a one-stage ablation.
"""

from repro.pipeline.probe import two_stage_probe

from .conftest import write_result


def test_probe_two_stage_stats(env, benchmark):
    fired = 0
    rel1 = tot1 = rel2 = tot2 = 0
    missed_without_stage2 = 0
    for wq in env.queries:
        probe = env.candidates[wq.query_id]
        relevant = set(env.truth.relevant_tables(wq.query_id))
        s1 = set(probe.stage1_ids)
        s2 = set(probe.stage2_ids)
        if probe.used_second_stage:
            fired += 1
        rel1 += len(relevant & s1)
        tot1 += len(s1)
        rel2 += len(relevant & s2)
        tot2 += len(s2)
        missed_without_stage2 += len(relevant & s2)

    lines = [
        f"2nd probe fired:            {fired}/{len(env.queries)} queries "
        f"({fired / len(env.queries):.0%}; paper: 65%)",
        f"stage-1 candidates:         {tot1} ({rel1} relevant, "
        f"{rel1 / max(tot1, 1):.0%}; paper: 52%)",
        f"stage-2 candidates:         {tot2} ({rel2} relevant, "
        f"{rel2 / max(tot2, 1):.0%}; paper: 70%)",
        f"relevant tables reachable only via stage 2: {missed_without_stage2}",
    ]
    write_result("probe_stats.txt", "\n".join(lines))

    assert fired >= len(env.queries) * 0.4
    # Stage 2's precision must beat stage 1's (it probes by content).
    if tot2:
        assert rel2 / tot2 >= rel1 / max(tot1, 1)

    wq = env.queries[14]
    benchmark(two_stage_probe, wq.query, env.synthetic.corpus)


def test_probe_one_stage_ablation(env, benchmark):
    """Recall lost by disabling the second probe."""
    two_stage_recall = []
    one_stage_recall = []
    for wq in env.queries:
        relevant = set(env.truth.relevant_tables(wq.query_id))
        if not relevant:
            continue
        probe = env.candidates[wq.query_id]
        found_two = len(relevant & {t.table_id for t in probe.tables})
        found_one = len(relevant & set(probe.stage1_ids))
        two_stage_recall.append(found_two / len(relevant))
        one_stage_recall.append(found_one / len(relevant))
    avg_two = sum(two_stage_recall) / len(two_stage_recall)
    avg_one = sum(one_stage_recall) / len(one_stage_recall)
    text = (
        f"candidate recall over relevant tables:\n"
        f"  one-stage probe:  {avg_one:.1%}\n"
        f"  two-stage probe:  {avg_two:.1%}\n"
        f"second stage recovers {avg_two - avg_one:+.1%} recall"
    )
    write_result("probe_ablation.txt", text)
    assert avg_two >= avg_one

    # Kernel: the one-stage probe (keyword-only retrieval).
    wq = env.queries[14]
    benchmark(
        env.synthetic.corpus.index.search, wq.query.all_tokens(), 60
    )
