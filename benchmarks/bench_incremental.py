# reprolint: disable-file=R001 -- benchmark harness: measures real wall-clock latency by design; results are reports, not ranked answers
"""Incremental-index benchmark for the ``repro.index.journal`` subsystem.

Measures the two costs a live corpus pays that an immutable one does not:

- **ingest throughput**: tables/second through ``add_tables`` (WAL append
  + delta indexing, fsync included), per batch size, plus the one-off
  ``compact`` time and the indexing-call count (which shows adds never
  re-index existing shards);
- **probe latency under a journal**: ``search`` and ``two_stage_probe``
  p50/p95 at increasing journal depths (0%, ~5%, ~20% of the corpus
  journaled) and again after compaction — the price of the delta-merge
  path, and the proof it is bought back by compacting.

Emits machine-readable ``BENCH_incremental.json``; CI runs ``--smoke``
and uploads the artifact so every PR records an ingest/latency datapoint.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke
    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --scale 1.0 --queries 59 --out results/BENCH_incremental.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import (  # noqa: E402
    CorpusConfig, generate_corpus, iter_tables,
)
from repro.index import load_corpus  # noqa: E402
from repro.index.inverted import InvertedIndex  # noqa: E402
from repro.pipeline.probe import ProbeConfig, two_stage_probe  # noqa: E402
from repro.query.workload import WORKLOAD  # noqa: E402


def percentile(values, fraction):
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class IndexCallCounter:
    """Counts ``InvertedIndex.add_document`` calls while installed.

    The observable for the no-reindex guarantee: journaling N tables must
    cost exactly N indexing calls (the delta index), never O(shard).
    """

    def __init__(self):
        self.calls = 0
        self._original = None

    def __enter__(self):
        counter = self
        self._original = InvertedIndex.add_document

        def counted(index_self, doc_id, fields):
            counter.calls += 1
            return counter._original(index_self, doc_id, fields)

        InvertedIndex.add_document = counted
        return self

    def __exit__(self, *exc):
        InvertedIndex.add_document = self._original


def probe_latencies(corpus, queries, reps):
    """search/probe p50/p95 (ms) over ``queries``, min across ``reps``."""
    config = ProbeConfig(seed=0)
    search_by = [[] for _ in queries]
    probe_by = [[] for _ in queries]
    for _ in range(reps):
        for qi, query in enumerate(queries):
            tokens = query.all_tokens()
            t0 = time.perf_counter()
            corpus.search(tokens, limit=60)
            search_by[qi].append((time.perf_counter() - t0) * 1000.0)
            t0 = time.perf_counter()
            two_stage_probe(query, corpus, config)
            probe_by[qi].append((time.perf_counter() - t0) * 1000.0)
    search_ms = [min(s) for s in search_by]
    probe_ms = [min(s) for s in probe_by]
    return {
        "search_p50_ms": round(percentile(search_ms, 0.50), 4),
        "search_p95_ms": round(percentile(search_ms, 0.95), 4),
        "probe_p50_ms": round(percentile(probe_ms, 0.50), 4),
        "probe_p95_ms": round(percentile(probe_ms, 0.95), 4),
        "probe_mean_ms": round(statistics.mean(probe_ms), 4),
    }


def ingest_in_batches(corpus, tables, batch_size):
    """Journal ``tables`` in batches; returns per-batch timing rows."""
    rows = []
    for lo in range(0, len(tables), batch_size):
        batch = tables[lo: lo + batch_size]
        with IndexCallCounter() as counter:
            t0 = time.perf_counter()
            corpus.add_tables(batch)
            elapsed = time.perf_counter() - t0
        rows.append({
            "batch_size": len(batch),
            "elapsed_s": round(elapsed, 4),
            "tables_per_s": round(len(batch) / max(elapsed, 1e-9), 1),
            "index_calls": counter.calls,
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="base corpus scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--num-shards", type=int, default=4)
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries to probe (default: all 59)")
    parser.add_argument("--reps", type=int, default=None,
                        help="probe repetitions per query (default 3)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="ingest batch size (default 50)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI; fills any unset "
                             "option with scale 0.15, 12 queries, 3 reps, "
                             "batch 25")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "results"
                                    / "BENCH_incremental.json"))
    args = parser.parse_args(argv)

    smoke_defaults = (0.15, 12, 3, 25)
    full_defaults = (1.0, None, 3, 50)
    for name, value in zip(
        ("scale", "queries", "reps", "batch_size"),
        smoke_defaults if args.smoke else full_defaults,
    ):
        if getattr(args, name) is None:
            setattr(args, name, value)

    print(f"generating base corpus (scale={args.scale}, "
          f"seed={args.seed})...", flush=True)
    synthetic = generate_corpus(
        CorpusConfig(seed=args.seed, scale=args.scale),
        num_shards=args.num_shards,
    )
    queries = [wq.query for wq in WORKLOAD[: args.queries]]
    base_n = synthetic.num_tables
    # Two live streams: ~5% of the corpus, then up to ~20% cumulative.
    stream = list(iter_tables(
        CorpusConfig(seed=args.seed + 1, scale=args.scale * 0.2),
        id_prefix="live-",
    ))
    cut = max(1, round(base_n * 0.05))
    stages = [("5pct", stream[:cut]), ("20pct", stream[cut:])]
    print(f"  {base_n} base tables; live stream of {len(stream)}; "
          f"probing {len(queries)} queries x {args.reps} reps", flush=True)

    report_rows = []
    ingest_rows = []
    with tempfile.TemporaryDirectory(prefix="bench_incr_") as tmp:
        path = Path(tmp) / "corpus"
        synthetic.corpus.save(path)
        corpus = load_corpus(path)
        try:
            row = {"stage": "journal_depth_0", "journal_depth": 0,
                   "num_tables": corpus.num_tables}
            row.update(probe_latencies(corpus, queries, args.reps))
            report_rows.append(row)

            for stage_name, tables in stages:
                if not tables:
                    continue
                ingest = ingest_in_batches(corpus, tables, args.batch_size)
                for r in ingest:
                    r["stage"] = stage_name
                ingest_rows.extend(ingest)
                row = {
                    "stage": f"journal_{stage_name}",
                    "journal_depth": corpus.journal_depth,
                    "num_tables": corpus.num_tables,
                }
                row.update(probe_latencies(corpus, queries, args.reps))
                report_rows.append(row)

            with IndexCallCounter() as counter:
                t0 = time.perf_counter()
                folded = corpus.compact()
                compact_s = time.perf_counter() - t0
            row = {
                "stage": "post_compact",
                "journal_depth": corpus.journal_depth,
                "num_tables": corpus.num_tables,
            }
            row.update(probe_latencies(corpus, queries, args.reps))
            report_rows.append(row)
        finally:
            corpus.close()

    for row in report_rows:
        print(f"  {row['stage']:<18} depth={row['journal_depth']:>4} "
              f"search p50 {row['search_p50_ms']:.2f}ms "
              f"probe p50 {row['probe_p50_ms']:.1f}ms "
              f"p95 {row['probe_p95_ms']:.1f}ms", flush=True)
    total_added = sum(r["batch_size"] for r in ingest_rows)
    total_ingest_s = sum(r["elapsed_s"] for r in ingest_rows)
    total_calls = sum(r["index_calls"] for r in ingest_rows)
    print(f"  ingest: {total_added} tables in {total_ingest_s:.2f}s "
          f"({total_added / max(total_ingest_s, 1e-9):.0f} tables/s, "
          f"{total_calls} indexing calls); "
          f"compact folded {folded} records in {compact_s:.2f}s "
          f"(+{counter.calls} indexing calls)", flush=True)

    report = {
        "benchmark": "incremental",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "num_shards": args.num_shards,
            "base_tables": base_n,
            "stream_tables": len(stream),
            "num_queries": len(queries),
            "reps": args.reps,
            "batch_size": args.batch_size,
            "smoke": args.smoke,
        },
        "ingest": ingest_rows,
        "ingest_tables_per_s": round(
            total_added / max(total_ingest_s, 1e-9), 1
        ),
        "ingest_index_calls": total_calls,
        "ingest_tables_added": total_added,
        "compact_s": round(compact_s, 4),
        "compact_records_folded": folded,
        "compact_index_calls": counter.calls,
        "probes": report_rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2), encoding="utf-8")
    print(f"wrote {out}")

    # The structural guarantee, asserted on every run: journaling N tables
    # costs exactly N indexing calls — existing shards are never touched.
    if total_calls != total_added:
        print(f"ERROR: ingest made {total_calls} indexing calls for "
              f"{total_added} added tables (shards were re-indexed)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
