"""Admission control: per-client token buckets behind one rate limiter.

The server admits a request only after (1) the client's token bucket
grants a token and (2) the bounded request queue accepts the job; this
module owns step (1).  Buckets refill continuously at the configured
sustained rate up to a burst capacity, so a quiet client can absorb a
spike while a hot one is throttled to the sustained rate — and every
refusal comes with the exact delay after which a token *will* be
available, which the server advertises as ``Retry-After``.

All time flows through an injectable monotonic clock (the
``repro.exec.context`` seam), so refill behaviour is tested on a fake
clock to the millisecond.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..exec.context import wall_clock

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """One client's continuously refilling token budget.

    ::

        bucket = TokenBucket(rate=2.0, burst=4, now=clock())
        ok, retry_after_s = bucket.try_take(clock())

    Not thread-safe on its own — :class:`RateLimiter` serializes access
    under its lock.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        #: Current balance; starts full so a new client can burst at once.
        self.tokens = float(burst)
        #: Clock reading of the last refill.
        self.updated = now

    def try_take(self, now: float) -> Tuple[bool, float]:
        """``(granted, retry_after_s)`` for one token at time ``now``.

        Refills lazily from the elapsed time, then either takes a token
        (``(True, 0.0)``) or reports how long until the balance reaches
        one (``(False, seconds)``).
        """
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Thread-safe token-bucket map keyed on client identity.

    Tracks at most ``max_clients`` buckets; the least-recently-seen
    client is evicted when the table is full (its next request starts a
    fresh, full bucket — under-throttling an evicted client briefly is
    the cheap failure mode, versus unbounded per-client state).

    ::

        limiter = RateLimiter(rate=50.0, burst=10)
        granted, retry_after_s = limiter.try_acquire("client-7")
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        max_clients: int = 4096,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        #: client id -> bucket, in least-recently-seen-first order.
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def try_acquire(self, client: str) -> Tuple[bool, float]:
        """``(granted, retry_after_s)`` for one request from ``client``."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket.try_take(now)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)

    def bucket_tokens(self, client: str) -> Optional[float]:
        """Current balance of one client's bucket (tests/debugging)."""
        with self._lock:
            bucket = self._buckets.get(client)
            return bucket.tokens if bucket is not None else None
