"""Serving-layer counters: admission outcomes, queue health, latency.

:class:`ServerStats` is the frozen snapshot the ``/stats`` endpoint
serves (next to the engine's ``ServiceStats``); :class:`ServerCounters`
is the mutable accumulator behind it.  Latency percentiles reuse the
execution engine's bounded-reservoir
:class:`~repro.exec.stats.StageAccumulator`, so queue-wait and handle
times report the same count/total/p50/p95 shape as the pipeline stages.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict

from ..exec.stats import StageAccumulator, StageStats

__all__ = ["ServerStats", "ServerCounters"]


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time serving-layer counters of one server."""

    #: Requests admitted past rate limiting into the queue.
    accepted: int
    #: Requests answered (2xx, degraded included).
    completed: int
    #: 429s from a full request queue.
    rejected_queue_full: int
    #: 429s from an empty client token bucket.
    rejected_rate_limited: int
    #: 400s from malformed/invalid request bodies.
    rejected_invalid: int
    #: 503s refused while draining for shutdown.
    rejected_shutdown: int
    #: Completed answers that came back degraded (deadline shed).
    shed_degraded: int
    #: 500s — the engine raised unexpectedly.
    errors_internal: int
    #: Jobs waiting in the bounded queue right now.
    queue_depth: int
    #: Jobs currently executing on worker threads.
    in_flight: int
    #: Seconds since the server started (monotonic clock seam).
    uptime_s: float
    #: Time jobs spent queued before a worker picked them up.
    queue_wait: StageStats
    #: Worker execution time (engine call, excluding queue wait).
    handle: StageStats

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the ``/stats`` endpoint."""
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected": {
                "queue_full": self.rejected_queue_full,
                "rate_limited": self.rejected_rate_limited,
                "invalid": self.rejected_invalid,
                "shutdown": self.rejected_shutdown,
            },
            "shed_degraded": self.shed_degraded,
            "errors_internal": self.errors_internal,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "uptime_s": round(self.uptime_s, 3),
            "queue_wait": self.queue_wait.to_dict(),
            "handle": self.handle.to_dict(),
        }


class ServerCounters:
    """Thread-safe accumulator behind :class:`ServerStats`.

    Every mutation happens under one lock; :meth:`snapshot` reads a
    consistent point-in-time view under the same lock, so ``/stats``
    served mid-flight never shows e.g. ``completed > accepted``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._accepted = 0
        self._completed = 0
        self._rejected_queue_full = 0
        self._rejected_rate_limited = 0
        self._rejected_invalid = 0
        self._rejected_shutdown = 0
        self._shed_degraded = 0
        self._errors_internal = 0
        self._in_flight = 0
        self._queue_wait = StageAccumulator()
        self._handle = StageAccumulator()

    def accept(self) -> None:
        """One request admitted into the queue."""
        with self._lock:
            self._accepted += 1

    def reject(self, reason: str) -> None:
        """One refusal: ``queue_full`` / ``rate_limited`` / ``invalid`` /
        ``shutdown``."""
        with self._lock:
            if reason == "queue_full":
                self._rejected_queue_full += 1
            elif reason == "rate_limited":
                self._rejected_rate_limited += 1
            elif reason == "invalid":
                self._rejected_invalid += 1
            elif reason == "shutdown":
                self._rejected_shutdown += 1
            else:
                raise ValueError(f"unknown rejection reason {reason!r}")

    def start_execution(self, queue_wait_s: float) -> None:
        """A worker picked a job up after ``queue_wait_s`` in the queue."""
        with self._lock:
            self._in_flight += 1
            self._queue_wait.add(queue_wait_s)

    def finish_execution(
        self, handle_s: float, degraded: bool, failed: bool
    ) -> None:
        """A worker finished a job (successfully or not)."""
        with self._lock:
            self._in_flight -= 1
            self._handle.add(handle_s)
            if failed:
                self._errors_internal += 1
            else:
                self._completed += 1
                if degraded:
                    self._shed_degraded += 1

    def snapshot(self, queue_depth: int, uptime_s: float) -> ServerStats:
        """One consistent point-in-time view of every counter."""
        with self._lock:
            return ServerStats(
                accepted=self._accepted,
                completed=self._completed,
                rejected_queue_full=self._rejected_queue_full,
                rejected_rate_limited=self._rejected_rate_limited,
                rejected_invalid=self._rejected_invalid,
                rejected_shutdown=self._rejected_shutdown,
                shed_degraded=self._shed_degraded,
                errors_internal=self._errors_internal,
                queue_depth=queue_depth,
                in_flight=self._in_flight,
                uptime_s=uptime_s,
                queue_wait=self._queue_wait.snapshot(),
                handle=self._handle.snapshot(),
            )
