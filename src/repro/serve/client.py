"""A minimal blocking HTTP client for the serving front door.

:class:`ServeClient` wraps :class:`http.client.HTTPConnection` with
keep-alive and JSON framing so tests and the load harness can talk to a
:class:`~repro.serve.server.ReproServer` over a real socket without
pulling in any third-party HTTP stack.  It deliberately returns raw
``(status, headers, body)`` triples rather than raising on non-2xx —
rejections (429, 503) are first-class outcomes the callers assert on.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["HTTPReply", "ServeClient"]

#: One HTTP exchange: ``(status, headers, parsed JSON body)``.
HTTPReply = Tuple[int, Dict[str, str], Any]


class ServeClient:
    """Blocking JSON client over one keep-alive connection.

    ::

        with ServeClient(server.host, server.port) as client:
            status, headers, body = client.query({"query": "cities # population"})

    Not thread-safe: one connection, one in-flight request.  Concurrent
    load generators hold one client per worker thread.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        #: Value sent as the rate-limit identity header (``X-Client-Id``
        #: by default on the server); ``None`` falls back to the peer IP.
        self.client_id = client_id
        self._conn: Optional[http.client.HTTPConnection] = None

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drop the underlying connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    #: Methods safe to retry even after the request may have reached the
    #: server (idempotent by HTTP semantics — and by this server's
    #: routes: both GET endpoints are pure reads).
    _IDEMPOTENT = frozenset({"GET", "HEAD"})

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> HTTPReply:
        """One HTTP exchange; reconnects once if keep-alive lapsed.

        The retry is deliberately narrow: it fires only when the failure
        provably preceded the request leaving this client (the send
        itself raised), or when the method is idempotent.  A POST whose
        bytes may have reached the server is *not* resent — the server
        could have executed it (a journaled mutation, a counted query)
        and a blind resend would double-apply it; the error propagates to
        the caller, who owns the retry decision.

        The body is parsed as JSON when non-empty (every endpoint speaks
        JSON); an empty body parses to ``None``.
        """
        send_headers: Dict[str, str] = dict(headers or {})
        if self.client_id is not None:
            send_headers.setdefault("X-Client-Id", self.client_id)
        sent = [False]
        try:
            return self._exchange(method, path, body, send_headers, sent)
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            # The server (or an idle timeout) closed the kept-alive
            # connection.  Retry once on a fresh connection — but only
            # when the request never left (``sent`` still False) or the
            # method is idempotent; otherwise re-raise.
            self.close()
            if sent[0] and method.upper() not in self._IDEMPOTENT:
                raise
            return self._exchange(method, path, body, send_headers, [False])

    def _exchange(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
        sent: list,
    ) -> HTTPReply:
        conn = self._connection()
        conn.request(method, path, body=body, headers=headers)
        # From here the bytes are (at least partially) on the wire: a
        # failure past this point no longer proves the server never saw
        # the request.
        sent[0] = True
        response = conn.getresponse()
        raw = response.read()
        reply_headers = {k.lower(): v for k, v in response.getheaders()}
        parsed = json.loads(raw.decode("utf-8")) if raw else None
        return response.status, reply_headers, parsed

    def post_json(self, path: str, payload: Any) -> HTTPReply:
        """POST ``payload`` as a JSON body."""
        raw = json.dumps(payload).encode("utf-8")
        return self.request(
            "POST", path, body=raw,
            headers={"Content-Type": "application/json"},
        )

    def query(self, payload: Any) -> HTTPReply:
        """POST one query payload to ``/query``."""
        return self.post_json("/query", payload)

    def healthz(self) -> HTTPReply:
        """GET the liveness endpoint."""
        return self.request("GET", "/healthz")

    def stats(self) -> HTTPReply:
        """GET the server + service counters."""
        return self.request("GET", "/stats")
