"""repro.serve — the HTTP/JSON front door for the query engine.

A stdlib-only serving layer that puts :class:`~repro.service.WWTService`
behind a real socket with explicit overload behaviour:

- **admission control** — a worker pool drains one bounded request
  queue (:class:`ServeConfig.queue_depth <ServeConfig>`), and per-client
  token buckets (:class:`RateLimiter`) throttle hot clients; both
  refusals answer 429 with a ``Retry-After`` header instead of letting
  latency grow without bound;
- **SLO-driven degradation** — a per-request ``deadline_ms`` budget
  covers queue wait plus execution and maps onto the ``repro.exec``
  staged engine, so overloaded requests come back *degraded* (flagged in
  the envelope's ``serving`` section) rather than timing out;
- **observability** — ``/healthz`` for liveness and ``/stats`` merging
  serving-layer counters (:class:`ServerStats`) with the engine's own
  ``ServiceStats``.

::

    from repro.serve import ReproServer, ServeClient, ServeConfig

    server = ReproServer(service, ServeConfig(port=0, workers=4)).start()
    try:
        with ServeClient(server.host, server.port) as client:
            status, headers, body = client.query(
                {"query": "cities # population", "deadline_ms": 200}
            )
    finally:
        server.shutdown()

The wire protocol lives in :mod:`repro.serve.protocol`: untrusted JSON
is validated into :class:`~repro.service.QueryRequest` (structured 400
envelopes on anything malformed), and the 200 envelope separates the
deterministic ``answer`` payload from run-varying ``serving`` metadata.
"""

from .admission import RateLimiter, TokenBucket
from .client import HTTPReply, ServeClient
from .config import ServeConfig
from .protocol import (
    ERROR_BAD_JSON,
    ERROR_BODY_TOO_LARGE,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_INVALID_VALUE,
    ERROR_METHOD_NOT_ALLOWED,
    ERROR_MISSING_FIELD,
    ERROR_NOT_FOUND,
    ERROR_QUEUE_FULL,
    ERROR_RATE_LIMITED,
    ERROR_SHUTTING_DOWN,
    ERROR_UNKNOWN_FIELD,
    ServeError,
    answer_payload,
    error_envelope,
    parse_query_payload,
    response_envelope,
)
from .server import MIN_BUDGET_MS, AnswerService, ReproServer
from .stats import ServerCounters, ServerStats

__all__ = [
    "ServeConfig",
    "ReproServer",
    "AnswerService",
    "MIN_BUDGET_MS",
    "ServeClient",
    "HTTPReply",
    "TokenBucket",
    "RateLimiter",
    "ServerStats",
    "ServerCounters",
    "ServeError",
    "error_envelope",
    "parse_query_payload",
    "answer_payload",
    "response_envelope",
    "ERROR_BAD_JSON",
    "ERROR_MISSING_FIELD",
    "ERROR_UNKNOWN_FIELD",
    "ERROR_INVALID_VALUE",
    "ERROR_BODY_TOO_LARGE",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_RATE_LIMITED",
    "ERROR_QUEUE_FULL",
    "ERROR_SHUTTING_DOWN",
    "ERROR_NOT_FOUND",
    "ERROR_METHOD_NOT_ALLOWED",
    "ERROR_INTERNAL",
]
