"""The wire protocol: untrusted JSON in, canonical envelopes out.

Request bodies are parsed and validated field-by-field into the service
layer's :class:`~repro.service.QueryRequest`; anything malformed raises a
:class:`ServeError` carrying a machine-readable ``error.code`` that the
server maps to a structured 400 envelope — clients never see a traceback.
Response envelopes split into two sections:

- ``answer`` — the deterministic answer payload (rows, pagination,
  algorithm).  :func:`answer_payload` is the **single source** of this
  shape for both the HTTP server and in-process comparisons, which is
  what makes the served-vs-direct byte-identity test meaningful;
- ``serving`` — per-request serving metadata (cache provenance, queue
  wait, degradation flags, stage list) that legitimately varies run to
  run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..inference.registry import DEFAULT_REGISTRY
from ..query.model import Query
from ..service.types import QueryRequest, QueryResponse

__all__ = [
    "ServeError",
    "error_envelope",
    "parse_query_payload",
    "answer_payload",
    "response_envelope",
    "ERROR_BAD_JSON",
    "ERROR_MISSING_FIELD",
    "ERROR_UNKNOWN_FIELD",
    "ERROR_INVALID_VALUE",
    "ERROR_BODY_TOO_LARGE",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_RATE_LIMITED",
    "ERROR_QUEUE_FULL",
    "ERROR_SHUTTING_DOWN",
    "ERROR_NOT_FOUND",
    "ERROR_METHOD_NOT_ALLOWED",
    "ERROR_INTERNAL",
]

#: Body is not decodable JSON at all.
ERROR_BAD_JSON = "bad_json"
#: A required field (``query``) is absent.
ERROR_MISSING_FIELD = "missing_field"
#: The payload carries a field the protocol does not define.
ERROR_UNKNOWN_FIELD = "unknown_field"
#: A known field holds a value of the wrong type or out of range.
ERROR_INVALID_VALUE = "invalid_value"
#: Request body exceeds ``ServeConfig.max_body_bytes``.
ERROR_BODY_TOO_LARGE = "body_too_large"
#: The client's token bucket is empty (retry after the advertised delay).
ERROR_RATE_LIMITED = "rate_limited"
#: The bounded request queue is full (retry after the advertised delay).
ERROR_QUEUE_FULL = "queue_full"
#: The server is draining for shutdown; no new work is admitted.
ERROR_SHUTTING_DOWN = "shutting_down"
#: No resource at this path.
ERROR_NOT_FOUND = "not_found"
#: The path exists but not for this HTTP method.
ERROR_METHOD_NOT_ALLOWED = "method_not_allowed"
#: The engine was configured ``degraded_ok=False`` and the budget ran out
#: (a 504 — the strict-SLO twin of a shed degraded answer).
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
#: The engine raised unexpectedly; the request was not answered.
ERROR_INTERNAL = "internal"

#: Wire fields :func:`parse_query_payload` accepts (``limit`` is an
#: ergonomic alias for ``page_size``).
_REQUEST_FIELDS = frozenset({
    "query", "page", "page_size", "limit", "explain", "use_cache",
    "inference", "deadline_ms",
})


class ServeError(Exception):
    """A request the server refuses, with its wire representation.

    ``code`` is the machine-readable ``error.code`` of the JSON envelope;
    ``status`` the HTTP status; ``retry_after_s``, when set, becomes a
    ``Retry-After`` header (429/503 responses).
    """

    def __init__(
        self,
        code: str,
        message: str,
        status: int = 400,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status
        self.retry_after_s = retry_after_s

    def envelope(self) -> Dict[str, Any]:
        """The JSON error body for this refusal."""
        return error_envelope(self.code, self.message)


def error_envelope(code: str, message: str) -> Dict[str, Any]:
    """The structured error body: ``{"error": {"code", "message"}}``."""
    return {"error": {"code": code, "message": message}}


def _require(condition: bool, message: str) -> None:
    """Raise the standard 400 ``invalid_value`` refusal unless true."""
    if not condition:
        raise ServeError(ERROR_INVALID_VALUE, message)


def _typed(payload: Dict[str, Any], field: str, kind: str, label: str) -> Any:
    """Fetch an optional field, refusing wrong-typed values.

    ``kind`` is ``"int"`` / ``"number"`` / ``"bool"`` / ``"str"``.
    ``bool`` is a subclass of ``int`` in Python, so the numeric kinds
    explicitly refuse booleans — ``"page": true`` is a client bug, not a
    page number.
    """
    value = payload.get(field)
    if value is None:
        return None
    checks = {
        "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "number": lambda v: (
            isinstance(v, (int, float)) and not isinstance(v, bool)
        ),
        "bool": lambda v: isinstance(v, bool),
        "str": lambda v: isinstance(v, str),
    }
    _require(checks[kind](value), f"{field} must be {label}")
    return value


def parse_query_payload(raw: bytes) -> QueryRequest:
    """Validate one untrusted ``POST /query`` body into a request.

    Raises :class:`ServeError` (always a 400) with ``error.code`` one of
    ``bad_json`` / ``missing_field`` / ``unknown_field`` /
    ``invalid_value``; the message names the offending field so clients
    can fix the call without reading server logs.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(
            ERROR_BAD_JSON, f"request body is not JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ServeError(
            ERROR_INVALID_VALUE,
            f"request body must be a JSON object, got {type(payload).__name__}",
        )
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise ServeError(
            ERROR_UNKNOWN_FIELD,
            f"unknown field(s) {unknown}; known: {sorted(_REQUEST_FIELDS)}",
        )
    if "query" not in payload:
        raise ServeError(ERROR_MISSING_FIELD, "missing required field 'query'")
    text = payload["query"]
    _require(isinstance(text, str), "query must be a string")

    if "limit" in payload and "page_size" in payload:
        raise ServeError(
            ERROR_INVALID_VALUE,
            "pass either 'limit' or 'page_size', not both (they are aliases)",
        )
    page_size = _typed(payload, "page_size", "int", "a positive integer")
    if page_size is None:
        page_size = _typed(payload, "limit", "int", "a positive integer")
    page = _typed(payload, "page", "int", "a positive integer")
    explain = _typed(payload, "explain", "bool", "a boolean")
    use_cache = _typed(payload, "use_cache", "bool", "a boolean")
    deadline_ms = _typed(payload, "deadline_ms", "number", "a positive number")
    inference = _typed(
        payload, "inference", "str", "a registered algorithm name"
    )
    if inference is not None and inference not in DEFAULT_REGISTRY:
        raise ServeError(
            ERROR_INVALID_VALUE,
            f"unknown inference {inference!r}; "
            f"options: {DEFAULT_REGISTRY.names()}",
        )

    try:
        query = Query.parse(text)
        return QueryRequest(
            query=query,
            page=page if page is not None else 1,
            page_size=page_size,
            explain=bool(explain) if explain is not None else False,
            use_cache=bool(use_cache) if use_cache is not None else True,
            inference=inference,
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        )
    except ValueError as exc:
        # Query.parse and QueryRequest.__post_init__ validate ranges
        # (empty columns, page < 1, page_size < 1, deadline_ms <= 0).
        raise ServeError(ERROR_INVALID_VALUE, str(exc)) from exc


def answer_payload(response: QueryResponse) -> Dict[str, Any]:
    """The deterministic answer section of a response envelope.

    Contains exactly the fields that depend only on (corpus, config,
    request): for an unbounded request, two servings of the same request
    serialize to identical bytes.  Serving-run metadata (cache provenance,
    latency, degradation) lives in the envelope's ``serving`` section —
    degradation depends on load, so it is *not* part of the answer payload.
    """
    payload: Dict[str, Any] = {
        "query": str(response.query),
        "header": list(response.header),
        "rows": [
            {"cells": list(row.cells), "support": row.support,
             "relevance": row.relevance}
            for row in response.rows
        ],
        "page": response.page,
        "page_size": response.page_size,
        "total_rows": response.total_rows,
        "num_pages": response.num_pages,
        "algorithm": response.algorithm,
    }
    if response.explain is not None:
        payload["explain"] = response.explain
    return payload


def response_envelope(
    response: QueryResponse, queue_ms: float = 0.0
) -> Dict[str, Any]:
    """The full ``POST /query`` 200 body: answer + serving metadata."""
    return {
        "answer": answer_payload(response),
        "serving": {
            "cache_hit": response.cache_hit,
            "degraded": response.degraded,
            "degraded_reasons": list(response.degraded_reasons),
            "coverage": (
                response.coverage.to_dict()
                if response.coverage is not None else None
            ),
            "stages_ran": list(response.stages_ran),
            "served_in_ms": round(response.served_in * 1000.0, 3),
            "queue_ms": round(queue_ms, 3),
        },
    }
