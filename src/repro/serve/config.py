"""Server configuration: admission control, SLOs, and socket knobs.

:class:`ServeConfig` is to :class:`~repro.serve.server.ReproServer` what
:class:`~repro.service.EngineConfig` is to the engine — one frozen,
validated, dict-round-trippable value holding every serving-layer knob:
worker-pool width, bounded-queue depth, per-client token-bucket rates,
the default per-request deadline, and the HTTP socket parameters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.serve.server.ReproServer` needs.

    ::

        config = ServeConfig(port=0, workers=4, queue_depth=64,
                             rate_limit=50.0, default_deadline_ms=200.0)
        assert ServeConfig.from_dict(config.to_dict()) == config
    """

    #: Interface to bind; loopback by default (an explicit opt-in is
    #: required to expose the engine beyond the local host).
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests, benchmarks).
    port: int = 8080
    #: Worker threads draining the request queue — the execution
    #: concurrency bound (handler threads only do socket I/O).
    workers: int = 4
    #: Bounded request-queue depth; a full queue rejects with 429 +
    #: ``Retry-After`` instead of queueing unboundedly.
    queue_depth: int = 64
    #: Per-client token-bucket sustained rate in requests/second
    #: (``None`` disables rate limiting).
    rate_limit: Optional[float] = None
    #: Token-bucket burst capacity (tokens a quiet client can bank).
    rate_burst: int = 10
    #: Most distinct clients tracked by the rate limiter at once
    #: (least-recently-seen clients are evicted — their next request
    #: starts a fresh full bucket).
    rate_clients: int = 4096
    #: Default per-request deadline in milliseconds applied when the
    #: request body carries none (``None`` = unbounded).  The budget
    #: covers queue wait *plus* execution: time spent queued is deducted
    #: before the engine runs, so overloaded requests shed to degraded
    #: answers instead of blowing the SLO.
    default_deadline_ms: Optional[float] = None
    #: Largest accepted request body in bytes (413 beyond it).
    max_body_bytes: int = 65536
    #: ``Retry-After`` seconds advertised on queue-full rejections.
    retry_after_s: int = 1
    #: Header carrying the rate-limit client identity; falls back to the
    #: peer IP address when absent.
    client_header: str = "X-Client-Id"
    #: Readiness floor: ``GET /healthz`` reports 503 ``unavailable`` when
    #: the served corpus's shard coverage fraction drops below this.  The
    #: default 0.0 never fails readiness on coverage (any partial corpus
    #: still serves degraded answers); 1.0 demands a fully healthy corpus.
    min_coverage: float = 0.0
    #: How queued requests execute: ``"thread"`` (a pool of ``workers``
    #: OS threads, the default) or ``"async"`` (one event-loop thread
    #: running up to ``workers`` queries concurrently as asyncio tasks —
    #: pairs with the engine's ``parallel_mode="process"`` so the loop
    #: stays responsive while worker processes burn CPU).  Responses are
    #: byte-identical across both modes.
    execution_mode: str = "thread"

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535] (0 = ephemeral)")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be > 0 req/s (None disables)")
        if self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")
        if self.rate_clients < 1:
            raise ValueError("rate_clients must be >= 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0 (None disables)")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.retry_after_s < 1:
            raise ValueError("retry_after_s must be >= 1")
        if not self.client_header:
            raise ValueError("client_header must be non-empty")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ValueError("min_coverage must be in [0.0, 1.0]")
        if self.execution_mode not in ("thread", "async"):
            raise ValueError(
                f"unknown execution_mode {self.execution_mode!r}; "
                "options: ['async', 'thread']"
            )

    def replace(self, **changes: Any) -> ServeConfig:
        """Copy with some fields replaced (re-validates)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> ServeConfig:
        """Build a config from a (possibly partial) plain dict.

        Missing keys take their defaults; unknown keys raise
        ``ValueError`` so typos in config files fail loudly.
        """
        data = dict(data or {})
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ServeConfig keys: {unknown}; known: {sorted(known)}"
            )
        return cls(**data)
