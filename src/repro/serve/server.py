"""The HTTP front door: bounded queue, worker pool, SLO-driven shedding.

:class:`ReproServer` wraps a :class:`~repro.service.WWTService` behind a
stdlib ``ThreadingHTTPServer``.  The request lifecycle is::

    handler thread (per connection)          worker pool (fixed width)
    ------------------------------           -------------------------
    parse + validate body        --+
    rate-limit (token bucket)      |  429 + Retry-After on refusal
    enqueue into bounded queue   --+  429 + Retry-After when full
    wait on the job's future   <-----  drain queue, deduct queue wait
                                       from the deadline, run the
                                       engine (shed to degraded under
                                       pressure), resolve the future
    serialize the envelope

Handler threads only do socket I/O and waiting; the worker pool is the
*execution* concurrency bound, and the bounded queue is the only place
requests wait — so memory under overload is capped at
``queue_depth + workers`` in-flight requests and everything beyond that
is told to back off instead of queueing to death.

Deadlines are end-to-end: a request's ``deadline_ms`` (or the config's
default) covers queue wait plus execution.  Time spent queued is
deducted before the engine runs, so a request that waited out most of
its budget executes under a near-zero budget and comes back degraded
(flagged in the envelope) rather than blowing the SLO or timing out.

Shutdown is graceful: new work is refused with 503, queued work drains
through the workers, then the listener closes.

With ``execution_mode="async"`` the fixed thread pool is replaced by a
single event-loop thread that drains the same bounded queue and runs up
to ``workers`` queries concurrently as asyncio tasks (via the engine's
``answer_async``).  Admission, deadline deduction, counters, and the
drain protocol are identical — only the execution substrate changes, so
response envelopes are byte-identical across both modes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import queue
import threading
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
)

from ..exec.context import wall_clock
from ..faults.injection import POINT_SERVE_WORKER, trip
from ..service.facade import ServiceStats
from ..service.types import QueryRequest, QueryResponse
from .admission import RateLimiter
from .config import ServeConfig
from .protocol import (
    ERROR_BAD_JSON,
    ERROR_BODY_TOO_LARGE,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_METHOD_NOT_ALLOWED,
    ERROR_NOT_FOUND,
    ERROR_QUEUE_FULL,
    ERROR_RATE_LIMITED,
    ERROR_SHUTTING_DOWN,
    ServeError,
    error_envelope,
    parse_query_payload,
    response_envelope,
)
from .stats import ServerCounters, ServerStats

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..faults.health import Coverage

__all__ = ["AnswerService", "ReproServer"]

#: Smallest budget handed to the engine once queue wait consumed the
#: request's deadline: small enough that every between-stage check fires
#: (maximal shedding), positive so the context accepts it.
MIN_BUDGET_MS = 0.01


class AnswerService(Protocol):
    """What the server needs from the engine — the ``WWTService`` surface.

    A Protocol rather than the concrete class so tests can stand in a
    stub (e.g. one that blocks on an event to make queue states
    deterministic).  The async serving mode additionally *duck-types* an
    optional ``answer_async`` coroutine method; services without one are
    driven through a thread so they never block the event loop.
    """

    def answer(self, request: QueryRequest) -> QueryResponse:
        """Answer one request."""
        ...  # pragma: no cover - protocol stub

    def stats(self) -> ServiceStats:
        """Snapshot the engine's serving counters."""
        ...  # pragma: no cover - protocol stub


@dataclasses.dataclass
class _Job:
    """One admitted request travelling from handler to worker."""

    request: QueryRequest
    #: Resolves to ``(response, queue_ms)`` or an exception.
    future: Future[Tuple[QueryResponse, float]]
    #: Clock reading at admission (queue-wait measurement origin).
    enqueued_at: float
    #: End-to-end budget (request's, else the config default); ``None``
    #: means unbounded.
    deadline_ms: Optional[float]


class _HTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying a back-reference to the front door."""

    daemon_threads = True
    allow_reuse_address = True
    #: Handler threads must not block process exit / server_close.
    block_on_close = False
    #: The owning :class:`ReproServer`; set right after construction.
    repro: ReproServer


class _Handler(BaseHTTPRequestHandler):
    """Per-connection request handler: routing, admission, serialization."""

    protocol_version = "HTTP/1.1"
    #: Drop idle keep-alive connections instead of pinning threads.
    timeout = 30
    #: Headers and body go out as separate writes; with Nagle on, the
    #: second segment stalls behind the peer's delayed ACK (~40ms per
    #: response on Linux).  TCP_NODELAY sends both immediately.
    disable_nagle_algorithm = True
    server: _HTTPServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default per-request stderr line (stats endpoint and
        the server's counters are the observability surface)."""

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after_s: Optional[float] = None,
    ) -> None:
        """Write one JSON response with correct framing."""
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _refuse(self, exc: ServeError) -> None:
        """Write a :class:`ServeError`'s envelope and drop the connection.

        The request body may be unread at refusal time, which would
        desynchronize HTTP/1.1 keep-alive framing — closing is the safe
        exit.
        """
        self.close_connection = True
        self._send_json(exc.status, exc.envelope(), exc.retry_after_s)

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:
        """``/healthz`` and ``/stats`` — served inline (never queued), so
        they stay responsive while the worker pool is saturated."""
        front = self.server.repro
        if self.path == "/healthz":
            status, payload = front.health_payload()
            self._send_json(status, payload)
            return
        if self.path == "/stats":
            self._send_json(200, front.stats_payload())
            return
        if self.path == "/query":
            self._refuse(ServeError(
                ERROR_METHOD_NOT_ALLOWED, "use POST /query", status=405,
            ))
            return
        self._refuse(ServeError(
            ERROR_NOT_FOUND, f"no resource at {self.path}", status=404,
        ))

    def do_POST(self) -> None:
        """``POST /query`` — the admission pipeline described in the
        module docstring."""
        front = self.server.repro
        if self.path != "/query":
            self._refuse(ServeError(
                ERROR_NOT_FOUND, f"no resource at {self.path}", status=404,
            ))
            return
        client = self.headers.get(
            front.config.client_header, self.client_address[0]
        )
        try:
            raw = self._read_body()
            response, queue_ms = front.admit(client, raw)
        except ServeError as exc:
            front.count_refusal(exc)
            self._refuse(exc)
            return
        except TimeoutError as exc:  # reprolint: disable=R008 -- an expected serving outcome (degraded_ok=False budget expiry), already counted as failed by the worker's finish_execution; this handler only serializes the 504
            self.close_connection = True
            self._send_json(
                504, error_envelope(ERROR_DEADLINE_EXCEEDED, str(exc))
            )
            return
        except Exception as exc:  # reprolint: disable=R008 -- engine bug surfaced through the future, already counted as failed by the worker's finish_execution; this handler only serializes the 500
            self.close_connection = True
            self._send_json(
                500, error_envelope(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")
            )
            return
        self._send_json(200, response_envelope(response, queue_ms))

    def _read_body(self) -> bytes:
        """Read the request body, enforcing presence and the size cap."""
        front = self.server.repro
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header is not None else 0
        except ValueError as exc:
            raise ServeError(
                ERROR_BAD_JSON, f"invalid Content-Length: {length_header!r}"
            ) from exc
        if length <= 0:
            raise ServeError(ERROR_BAD_JSON, "empty request body")
        if length > front.config.max_body_bytes:
            raise ServeError(
                ERROR_BODY_TOO_LARGE,
                f"request body of {length} bytes exceeds the "
                f"{front.config.max_body_bytes}-byte limit",
                status=413,
            )
        return self.rfile.read(length)


class ReproServer:
    """The serving front door over one engine.

    ::

        service = WWTService("corpus-dir")
        with ReproServer(service, ServeConfig(port=0, workers=4)) as server:
            print(f"listening on {server.base_url}")
            server.wait()      # until shutdown() or KeyboardInterrupt

    ``clock`` is injectable (the ``repro.exec.context`` seam) so
    queue-wait deduction and uptime are testable on a fake clock.
    """

    def __init__(
        self,
        service: AnswerService,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServeConfig()
        self._clock = clock
        self._started_at = clock()
        self._counters = ServerCounters()
        self._limiter = (
            RateLimiter(
                rate=self.config.rate_limit,
                burst=self.config.rate_burst,
                max_clients=self.config.rate_clients,
                clock=clock,
            )
            if self.config.rate_limit is not None else None
        )
        #: Bounded admission queue; ``None`` entries are the shutdown
        #: sentinels that release the workers after the drain.
        self._queue: queue.Queue[Optional[_Job]] = queue.Queue(
            maxsize=self.config.queue_depth
        )
        self._workers: List[threading.Thread] = []
        self._httpd: Optional[_HTTPServer] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._state_lock = threading.Lock()
        self._draining = False
        self._stopped = threading.Event()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> ReproServer:
        """Bind the socket, start the worker pool and the accept loop.

        Returns ``self`` so ``server = ReproServer(...).start()`` reads
        naturally; with ``port=0`` the bound ephemeral port is available
        as :attr:`port` afterwards.
        """
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.repro = self
        if self.config.execution_mode == "async":
            # One event-loop thread is the whole "pool": it drains the
            # same queue and fans queries out as up to ``workers``
            # concurrent asyncio tasks.  Being the only ``_workers``
            # entry keeps shutdown's one-sentinel-per-worker drain
            # protocol unchanged.
            worker = threading.Thread(
                target=self._async_loop_main, name="repro-serve-async-loop",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        else:
            for i in range(self.config.workers):
                worker = threading.Thread(
                    target=self._worker_loop, name=f"repro-serve-worker-{i}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        self._accept_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        """Drain and stop (idempotent).

        New requests are refused with 503 immediately; jobs already
        admitted drain through the worker pool (every waiting client gets
        its answer); then the workers exit, the accept loop stops, and
        the listening socket closes.  The engine (``service``) is *not*
        closed — its owner closes it.
        """
        with self._state_lock:
            if self._draining:
                self._stopped.wait()
                return
            self._draining = True
        # FIFO queue: each sentinel lands behind every admitted job, so a
        # worker only sees its sentinel after real work is done.
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join()
        # A request that raced past the draining check may have enqueued
        # behind the sentinels; fail it over to 503 so its handler thread
        # is released rather than waiting forever.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:  # reprolint: disable=R008 -- the empty queue is this drain loop's termination condition, not a failure; stragglers found before it get set_exception below
                break
            if job is not None:
                job.future.set_exception(ServeError(
                    ERROR_SHUTTING_DOWN, "server is shutting down",
                    status=503, retry_after_s=self.config.retry_after_s,
                ))
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self._stopped.set()

    def wait(self) -> None:
        """Block until :meth:`shutdown` completes (CLI foreground mode).

        Interruptible: a ``KeyboardInterrupt`` in the waiting thread
        propagates so the CLI can run the graceful shutdown path.
        """
        self._stopped.wait()

    def __enter__(self) -> ReproServer:
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- admission (called from handler threads) --------------------------

    def admit(
        self, client: str, raw_body: bytes
    ) -> Tuple[QueryResponse, float]:
        """Run one request through admission and the worker pool.

        Returns ``(response, queue_ms)``; raises :class:`ServeError` on
        any refusal (rate limit, full queue, draining, invalid body) and
        re-raises whatever the engine raised on a worker.
        """
        if self.is_draining:
            raise ServeError(
                ERROR_SHUTTING_DOWN, "server is shutting down",
                status=503, retry_after_s=self.config.retry_after_s,
            )
        if self._limiter is not None:
            granted, retry_after_s = self._limiter.try_acquire(client)
            if not granted:
                raise ServeError(
                    ERROR_RATE_LIMITED,
                    f"client {client!r} is over its "
                    f"{self.config.rate_limit:g} req/s rate",
                    status=429, retry_after_s=retry_after_s,
                )
        request = parse_query_payload(raw_body)
        job = _Job(
            request=request,
            future=Future(),
            enqueued_at=self._clock(),
            deadline_ms=(
                request.deadline_ms if request.deadline_ms is not None
                else self.config.default_deadline_ms
            ),
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise ServeError(
                ERROR_QUEUE_FULL,
                f"request queue is full ({self.config.queue_depth} deep)",
                status=429, retry_after_s=self.config.retry_after_s,
            ) from None
        self._counters.accept()
        return job.future.result()

    def count_refusal(self, exc: ServeError) -> None:
        """Fold one refusal into the serving counters."""
        reasons = {
            ERROR_QUEUE_FULL: "queue_full",
            ERROR_RATE_LIMITED: "rate_limited",
            ERROR_SHUTTING_DOWN: "shutdown",
        }
        self._counters.reject(reasons.get(exc.code, "invalid"))

    # -- the worker pool --------------------------------------------------

    def _worker_loop(self) -> None:
        """Drain the queue: deduct queue wait from the budget, run the
        engine, resolve the future."""
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel: drain complete
                return
            picked_up = self._clock()
            queue_wait_s = max(0.0, picked_up - job.enqueued_at)
            self._counters.start_execution(queue_wait_s)
            degraded = False
            failed = False
            try:
                request = job.request
                if job.deadline_ms is not None:
                    # The deadline is end-to-end: what the queue consumed
                    # is gone.  A request that waited out its budget runs
                    # under MIN_BUDGET_MS — every stage check fires, the
                    # engine sheds to its cheapest path, and the client
                    # gets a degraded answer instead of a timeout.
                    remaining = job.deadline_ms - queue_wait_s * 1000.0
                    request = dataclasses.replace(
                        request, deadline_ms=max(remaining, MIN_BUDGET_MS)
                    )
                trip(POINT_SERVE_WORKER)
                response = self.service.answer(request)
                degraded = response.degraded
                job.future.set_result((response, queue_wait_s * 1000.0))
            except BaseException as exc:
                failed = True
                job.future.set_exception(exc)
            finally:
                self._counters.finish_execution(
                    self._clock() - picked_up, degraded, failed
                )

    # -- the async execution mode -----------------------------------------

    def _async_loop_main(self) -> None:
        """Thread body for ``execution_mode="async"``: own the event loop."""
        asyncio.run(self._async_main())

    async def _async_main(self) -> None:
        """Drain the queue onto the event loop until the shutdown sentinel.

        Concurrency is bounded the same way the thread pool bounds it:
        an ``asyncio.Semaphore(workers)`` slot is taken *before* a job
        leaves the queue, so under overload requests keep waiting in the
        bounded queue (where admission control can see and shed them)
        rather than piling up as unbounded loop tasks.
        """
        loop = asyncio.get_running_loop()
        slots = asyncio.Semaphore(self.config.workers)
        tasks: "set[asyncio.Task[None]]" = set()
        while True:
            await slots.acquire()
            # queue.Queue.get blocks; run it on a helper thread so the
            # loop keeps scheduling in-flight query tasks meanwhile.
            job = await loop.run_in_executor(None, self._queue.get)
            if job is None:  # shutdown sentinel: stop accepting
                slots.release()
                break
            task = loop.create_task(self._run_job_async(job, slots))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            # Graceful drain: every admitted job resolves its future
            # before the loop (and with it the "pool") exits.
            await asyncio.gather(*tasks)

    async def _run_job_async(
        self, job: _Job, slots: asyncio.Semaphore
    ) -> None:
        """One job as an asyncio task — :meth:`_worker_loop`'s body with
        the engine call awaited instead of blocking a pool thread."""
        try:
            picked_up = self._clock()
            queue_wait_s = max(0.0, picked_up - job.enqueued_at)
            self._counters.start_execution(queue_wait_s)
            degraded = False
            failed = False
            try:
                request = job.request
                if job.deadline_ms is not None:
                    # Same end-to-end budget rule as the thread pool.
                    remaining = job.deadline_ms - queue_wait_s * 1000.0
                    request = dataclasses.replace(
                        request, deadline_ms=max(remaining, MIN_BUDGET_MS)
                    )
                trip(POINT_SERVE_WORKER)
                response = await self._answer_on_loop(request)
                degraded = response.degraded
                job.future.set_result((response, queue_wait_s * 1000.0))
            except BaseException as exc:
                failed = True
                job.future.set_exception(exc)
            finally:
                self._counters.finish_execution(
                    self._clock() - picked_up, degraded, failed
                )
        finally:
            slots.release()

    async def _answer_on_loop(self, request: QueryRequest) -> QueryResponse:
        """Answer via the engine's coroutine surface when it has one.

        Stub services (tests) that only implement the sync protocol are
        dispatched to a helper thread so a blocking stub cannot starve
        the event loop.
        """
        answer_async = getattr(self.service, "answer_async", None)
        if answer_async is not None:
            response: QueryResponse = await answer_async(request)
            return response
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.service.answer, request)

    # -- observability ----------------------------------------------------

    @property
    def host(self) -> str:
        """Bound interface."""
        return self.config.host

    @property
    def port(self) -> int:
        """Bound port (the real one once started, even for ``port=0``)."""
        if self._httpd is not None:
            return int(self._httpd.server_address[1])
        return self.config.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def is_draining(self) -> bool:
        """Has shutdown begun?  (New work is refused with 503.)"""
        with self._state_lock:
            return self._draining

    @property
    def queue_depth(self) -> int:
        """Jobs waiting in the bounded queue right now (approximate)."""
        return self._queue.qsize()

    @property
    def uptime_s(self) -> float:
        """Seconds since construction (monotonic clock seam)."""
        return self._clock() - self._started_at

    def service_coverage(self) -> Optional[Coverage]:
        """Current shard coverage of the served engine's corpus.

        ``None`` when the engine exposes no coverage surface (stub
        services, corpora without failure domains) — readiness then falls
        back to draining-only semantics.
        """
        coverage_fn = getattr(self.service, "coverage", None)
        if coverage_fn is None:
            return None
        coverage: Optional[Coverage] = coverage_fn()
        return coverage

    def health_payload(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``'s ``(status, body)`` — liveness plus readiness.

        Draining always reports 503.  With a coverage-aware engine, shard
        coverage below ``config.min_coverage`` reports 503 ``unavailable``
        (take this instance out of rotation); a reachable-but-incomplete
        corpus reports 200 ``degraded`` — still serving, answers flagged
        partial; otherwise 200 ``ok``.
        """
        coverage = self.service_coverage()
        if self.is_draining:
            status, code = "draining", 503
        elif (
            coverage is not None
            and coverage.fraction < self.config.min_coverage
        ):
            status, code = "unavailable", 503
        elif coverage is not None and not coverage.complete:
            status, code = "degraded", 200
        else:
            status, code = "ok", 200
        payload: Dict[str, Any] = {
            "status": status,
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": self.queue_depth,
            "workers": self.config.workers,
        }
        if coverage is not None:
            payload["coverage"] = coverage.to_dict()
        return code, payload

    def stats(self) -> ServerStats:
        """Serving-layer counters snapshot."""
        return self._counters.snapshot(self.queue_depth, self.uptime_s)

    def stats_payload(self) -> Dict[str, Any]:
        """The ``/stats`` body: serving-layer and engine counters."""
        return {
            "server": self.stats().to_dict(),
            "service": self.service.stats().to_dict(),
        }
