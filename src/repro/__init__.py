"""repro — reproduction of "Answering Table Queries on the Web using Column
Keywords" (Pimplikar & Sarawagi, PVLDB 5(10), 2012): the WWT structured
web-table search engine.

Quickstart::

    from repro import CorpusConfig, WWTService, generate_corpus

    synthetic = generate_corpus(CorpusConfig(scale=0.3))
    service = WWTService(synthetic.corpus)
    response = service.answer("country | currency")
    for row in response.rows[:5]:
        print(row.cells)
    print(service.stats().to_dict())

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.html`, :mod:`repro.tables`, :mod:`repro.text` — offline
  extraction substrate (Section 2.1);
- :mod:`repro.index` — Lucene-style fielded index + table store, with a
  sharded, persistent backend (:class:`ShardedCorpus`, :func:`load_corpus`)
  interchangeable with the monolithic one via :class:`CorpusProtocol`;
- :mod:`repro.corpus` — the synthetic web crawl substitute;
- :mod:`repro.query` — column-keyword queries + the 59-query workload;
- :mod:`repro.core` — the graphical model (SegSim, PMI², potentials);
- :mod:`repro.flow`, :mod:`repro.inference` — Section 4's algorithms,
  behind a decorator-based :data:`REGISTRY`;
- :mod:`repro.baselines` — Basic / NbrText / PMI²;
- :mod:`repro.pipeline`, :mod:`repro.consolidate` — the query pipeline;
- :mod:`repro.service` — the serving facade (:class:`WWTService`,
  :class:`EngineConfig`, caching, batching);
- :mod:`repro.serve` — the HTTP/JSON front door over the facade
  (:class:`ReproServer`, :class:`ServeConfig`, admission control,
  SLO-driven degradation — ``python -m repro serve``);
- :mod:`repro.evaluation` — F1 error and the experiment harness.
"""

from .consolidate import AnswerRow, AnswerTable
from .core import DEFAULT_PARAMS, FeatureCache, ModelParams, build_problem
from .corpus import CorpusConfig, GroundTruth, generate_corpus, iter_tables
from .evaluation import build_environment, f1_error, run_method
from .exec import (
    CancellationToken,
    DeadlineExceeded,
    ExecutionContext,
    ExecutionPlan,
    Span,
    Stage,
)
from .index import (
    CorpusProtocol,
    IndexedCorpus,
    JournaledCorpus,
    NaiveScorer,
    ShardedCorpus,
    build_corpus_index,
    build_sharded_corpus,
    load_corpus,
)
from .inference import (
    ALGORITHMS,
    REGISTRY,
    InferenceRegistry,
    MappingResult,
    UnknownAlgorithmError,
    get_algorithm,
    register_algorithm,
)
from .pipeline import ProbeConfig, WWTAnswer, WWTEngine
from .query import WORKLOAD, Query
from .serve import ReproServer, ServeClient, ServeConfig
from .service import (
    EngineConfig,
    QueryRequest,
    QueryResponse,
    ServiceStats,
    WWTService,
)

__version__ = "1.5.0"

__all__ = [
    "ALGORITHMS",
    "AnswerRow",
    "AnswerTable",
    "CancellationToken",
    "CorpusConfig",
    "CorpusProtocol",
    "DEFAULT_PARAMS",
    "DeadlineExceeded",
    "EngineConfig",
    "ExecutionContext",
    "ExecutionPlan",
    "FeatureCache",
    "GroundTruth",
    "IndexedCorpus",
    "InferenceRegistry",
    "JournaledCorpus",
    "MappingResult",
    "ModelParams",
    "NaiveScorer",
    "ProbeConfig",
    "Query",
    "QueryRequest",
    "QueryResponse",
    "REGISTRY",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServiceStats",
    "ShardedCorpus",
    "Span",
    "Stage",
    "UnknownAlgorithmError",
    "WORKLOAD",
    "WWTAnswer",
    "WWTEngine",
    "WWTService",
    "__version__",
    "build_corpus_index",
    "build_environment",
    "build_problem",
    "build_sharded_corpus",
    "f1_error",
    "generate_corpus",
    "get_algorithm",
    "iter_tables",
    "load_corpus",
    "register_algorithm",
    "run_method",
]
