"""repro — reproduction of "Answering Table Queries on the Web using Column
Keywords" (Pimplikar & Sarawagi, PVLDB 5(10), 2012): the WWT structured
web-table search engine.

Quickstart::

    from repro import CorpusConfig, Query, WWTEngine, generate_corpus

    synthetic = generate_corpus(CorpusConfig(scale=0.3))
    engine = WWTEngine(synthetic.corpus)
    result = engine.answer(Query.parse("country | currency"))
    for row in result.answer.rows[:5]:
        print(row.cells)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.html`, :mod:`repro.tables`, :mod:`repro.text` — offline
  extraction substrate (Section 2.1);
- :mod:`repro.index` — Lucene-style fielded index + table store;
- :mod:`repro.corpus` — the synthetic web crawl substitute;
- :mod:`repro.query` — column-keyword queries + the 59-query workload;
- :mod:`repro.core` — the graphical model (SegSim, PMI², potentials);
- :mod:`repro.flow`, :mod:`repro.inference` — Section 4's algorithms;
- :mod:`repro.baselines` — Basic / NbrText / PMI²;
- :mod:`repro.pipeline`, :mod:`repro.consolidate` — the end-to-end engine;
- :mod:`repro.evaluation` — F1 error and the experiment harness.
"""

from .consolidate import AnswerRow, AnswerTable
from .core import DEFAULT_PARAMS, ModelParams, build_problem
from .corpus import CorpusConfig, GroundTruth, generate_corpus
from .evaluation import build_environment, f1_error, run_method
from .index import IndexedCorpus, build_corpus_index
from .inference import ALGORITHMS, MappingResult
from .pipeline import ProbeConfig, WWTAnswer, WWTEngine
from .query import WORKLOAD, Query

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AnswerRow",
    "AnswerTable",
    "CorpusConfig",
    "DEFAULT_PARAMS",
    "GroundTruth",
    "IndexedCorpus",
    "MappingResult",
    "ModelParams",
    "ProbeConfig",
    "Query",
    "WORKLOAD",
    "WWTAnswer",
    "WWTEngine",
    "build_corpus_index",
    "build_environment",
    "build_problem",
    "f1_error",
    "generate_corpus",
    "run_method",
    "__version__",
]
