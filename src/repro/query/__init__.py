"""Query model and the paper's 59-query workload (Table 1)."""

from .model import Query, WorkloadQuery
from .workload import WORKLOAD, load_workload, query_by_id

__all__ = ["Query", "WORKLOAD", "WorkloadQuery", "load_workload", "query_by_id"]
