"""The 59-query workload of Table 1.

Query strings are verbatim from the paper (5 single-, 37 two-, 17
three-column queries; AMT topic queries given attributes plus twelve
Wikipedia-sourced ones).  Each is bound to a synthetic-corpus domain and
attribute keys for ground truth; queries the paper found zero relevant
tables for are bound to no domain — only distractor pages carry their
keywords.  ``paper_total``/``paper_relevant`` columns mirror Table 1.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .model import Query, WorkloadQuery

__all__ = ["WORKLOAD", "load_workload", "query_by_id"]


def _wq(
    text: str,
    domain: Optional[str],
    attrs: Tuple[str, ...],
    total: int,
    relevant: int,
) -> WorkloadQuery:
    return WorkloadQuery(
        query=Query.parse(text),
        domain_key=domain,
        attr_keys=attrs,
        paper_total=total,
        paper_relevant=relevant,
    )


def load_workload() -> List[WorkloadQuery]:
    """Build the full 59-query workload."""
    w: List[WorkloadQuery] = []

    # -- single column queries (5) --------------------------------------------
    w.append(_wq("dog breed", "dogs", ("breed",), 68, 66))
    w.append(_wq("kings of africa", None, (), 26, 0))
    w.append(_wq("phases of moon", "moon_phases", ("phase",), 56, 17))
    w.append(_wq("prime ministers of england", "pm_england", ("pm",), 35, 3))
    w.append(_wq("professional wrestlers", "wrestlers", ("wrestler",), 52, 52))

    # -- two column queries (37) ----------------------------------------------
    w.append(_wq("2008 beijing Olympic events | winners", None, (), 29, 0))
    w.append(_wq("2008 olympic gold medal winners | sports event", None, (), 26, 0))
    w.append(_wq("australian cities | area", "aus_cities", ("city", "area"), 30, 4))
    w.append(_wq("banks | interest rates", "banks", ("bank", "rate"), 51, 34))
    w.append(_wq("black metal bands | country", "metal_bands", ("band", "country"), 39, 19))
    w.append(_wq("books in United States | author", "books_us", ("book", "author"), 6, 2))
    w.append(_wq("car accidents location | year", "car_accidents", ("location", "year"), 46, 8))
    w.append(_wq("clothing sizes | symbols", None, (), 20, 0))
    w.append(_wq("composition of the sun | percentage", "sun_composition",
                 ("component", "percentage"), 50, 12))
    w.append(_wq("country | currency", "countries", ("name", "currency"), 56, 53))
    w.append(_wq("country | daily fuel consumption", "countries", ("name", "fuel"), 38, 14))
    w.append(_wq("country | gdp", "countries", ("name", "gdp"), 58, 56))
    w.append(_wq("country | population", "countries", ("name", "population"), 58, 55))
    w.append(_wq("country | us dollar exchange rate", "countries",
                 ("name", "exchange_rate"), 52, 43))
    w.append(_wq("fifa worlds cup winners | year", "fifa", ("winner", "year"), 49, 9))
    w.append(_wq("Golden Globe award winners | year", "golden_globe",
                 ("winner", "year"), 23, 19))
    w.append(_wq("Ibanez guitar series | models", "ibanez", ("series", "model"), 21, 3))
    w.append(_wq("Internet domains | entity", "internet_domains",
                 ("domain", "entity"), 10, 4))
    w.append(_wq("James Bond films | year", "bond_films", ("film", "year"), 16, 11))
    w.append(_wq("Microsoft Windows products | release date", "windows",
                 ("product", "release_date"), 25, 12))
    w.append(_wq("MLB world series winners | year", "mlb", ("winner", "year"), 13, 3))
    w.append(_wq("movies | gross collection", "movies", ("movie", "gross"), 57, 57))
    w.append(_wq("name of parrot | binomial name", "parrots",
                 ("parrot", "binomial"), 11, 8))
    w.append(_wq("north american mountains | height", "mountains",
                 ("mountain", "height"), 47, 28))
    w.append(_wq("pain killers | company", "painkillers", ("drug", "company"), 1, 1))
    w.append(_wq("pga players | total score", "pga", ("player", "score"), 40, 29))
    w.append(_wq("pre-production electric vehicle | release date", None, (), 3, 0))
    w.append(_wq("running shoes model | company", "running_shoes",
                 ("model", "company"), 11, 5))
    w.append(_wq("science discoveries | discoverers", "discoveries",
                 ("discovery", "discoverer"), 41, 37))
    w.append(_wq("university | motto", "universities", ("university", "motto"), 7, 5))
    w.append(_wq("us cities | population", "us_cities", ("city", "population"), 34, 32))
    w.append(_wq("us pizza store | annual sales", "pizza_stores",
                 ("store", "sales"), 35, 1))
    w.append(_wq("usa states | population", "us_states", ("name", "population"), 41, 37))
    w.append(_wq("used cellphones | price", None, (), 29, 0))
    w.append(_wq("video games | company", "video_games", ("game", "company"), 30, 28))
    w.append(_wq("wimbledon champions | year", "wimbledon", ("champion", "year"), 38, 24))
    w.append(_wq("world tallest buildings | height", "buildings",
                 ("building", "height"), 51, 12))

    # -- three column queries (17) ----------------------------------------------
    w.append(_wq("academy award category | winner | year", "academy_awards",
                 ("category", "winner", "year"), 56, 22))
    w.append(_wq("bittorrent clients | license | cost", None, (), 0, 0))
    w.append(_wq("chemical element | atomic number | atomic weight", "elements",
                 ("element", "atomic_number", "atomic_weight"), 33, 30))
    w.append(_wq("company | stock ticker | price", "stocks",
                 ("company", "ticker", "price"), 53, 53))
    w.append(_wq("educational exchange discipline in US | number of students | year",
                 "edu_exchange", ("discipline", "students", "year"), 13, 2))
    w.append(_wq("fast cars | company | top speed", "fast_cars",
                 ("car", "company", "top_speed"), 34, 29))
    w.append(_wq("food | fat | protein", "food_nutrition",
                 ("food", "fat", "protein"), 47, 43))
    w.append(_wq("ipod models | release date | price", "ipods",
                 ("model", "release_date", "price"), 44, 16))
    w.append(_wq("name of explorers | nationality | areas explored", "explorers",
                 ("explorer", "nationality", "areas"), 19, 13))
    w.append(_wq("NBA Match | date | winner", "nba", ("match", "date", "winner"), 44, 34))
    w.append(_wq("new Jedi Order novels | authors | year", "jedi_novels",
                 ("novel", "author", "year"), 25, 24))
    w.append(_wq("Nobel prize winners | field | year", "nobel",
                 ("winner", "field", "year"), 12, 10))
    w.append(_wq("Olympus digital SLR Models | resolution | price", "olympus",
                 ("model", "resolution", "price"), 11, 3))
    w.append(_wq("president | library name | location", "pres_library",
                 ("president", "library", "location"), 8, 1))
    w.append(_wq("religion | number of followers | country of origin", "religions",
                 ("religion", "followers", "origin"), 37, 32))
    w.append(_wq("Star Trek novels | authors | release date", "star_trek",
                 ("novel", "author", "release_date"), 8, 8))
    w.append(_wq("us states | capitals | largest cities", "us_states",
                 ("name", "capital", "largest_city"), 32, 30))

    if len(w) != 59:
        raise AssertionError(f"workload must have 59 queries, got {len(w)}")
    return w


#: The workload, built once at import.
WORKLOAD: List[WorkloadQuery] = load_workload()


def query_by_id(query_id: str) -> WorkloadQuery:
    """Look up a workload query by its id (the query string)."""
    for wq in WORKLOAD:
        if wq.query_id == query_id:
            return wq
    raise KeyError(query_id)
