"""Query model: column keyword sets.

A column description query ``Q`` is ``q`` sets of keywords ``Q_1..Q_q``
(Section 1) — e.g. ``"name of explorers | nationality | areas explored"``.
The first column is the *subject* column (the must-match constraint requires
every relevant table to contain it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..text.tokenize import tokenize

__all__ = ["Query", "WorkloadQuery"]


@dataclass(frozen=True)
class Query:
    """A column-keyword query."""

    columns: Tuple[str, ...]
    query_id: str = ""

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a query needs at least one column keyword set")
        if any(not c.strip() for c in self.columns):
            raise ValueError("column keyword sets must be non-empty")

    @classmethod
    def parse(cls, text: str, query_id: str = "") -> Query:
        """Parse the paper's pipe syntax: ``"country | currency"``."""
        columns = tuple(part.strip() for part in text.split("|") if part.strip())
        return cls(columns=columns, query_id=query_id or text)

    @property
    def q(self) -> int:
        """Number of query columns."""
        return len(self.columns)

    def column_tokens(self, col: int) -> List[str]:
        """Analyzed tokens of query column ``col`` (0-based)."""
        return tokenize(self.columns[col])

    def all_tokens(self) -> List[str]:
        """Union (with duplicates) of all column tokens — the index probe."""
        out: List[str] = []
        for col in range(self.q):
            out.extend(self.column_tokens(col))
        return out

    def min_match(self) -> int:
        """The min-match constant m (2 for q >= 2, else 1), Section 3.4."""
        return 2 if self.q >= 2 else 1

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return " | ".join(self.columns)


@dataclass(frozen=True)
class WorkloadQuery:
    """A workload entry: the query plus its corpus binding and paper stats.

    ``domain_key``/``attr_keys`` bind the query to the synthetic corpus for
    ground truth; ``paper_total``/``paper_relevant`` record Table 1's counts
    for comparison in EXPERIMENTS.md.
    """

    query: Query
    domain_key: Optional[str]
    attr_keys: Tuple[str, ...]
    paper_total: int
    paper_relevant: int

    def __post_init__(self) -> None:
        if self.domain_key is not None and len(self.attr_keys) != self.query.q:
            raise ValueError(
                f"query {self.query.query_id!r}: got {len(self.attr_keys)} "
                f"attribute keys for {self.query.q} columns"
            )

    @property
    def query_id(self) -> str:
        """Delegates to the wrapped query."""
        return self.query.query_id
