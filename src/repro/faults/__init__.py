"""``repro.faults`` — deterministic fault injection and failure domains.

Two halves, both stdlib-only and fully seeded:

- :mod:`repro.faults.injection` — named fault points (``trip``) compiled
  into the risky edges of the engine (shard materialization, per-shard
  search, table-store reads, journal appends, serve workers).  Disabled
  — the default, and the only state tier-1 tests ever see — a tripped
  point is a single module-global ``None`` check.  Activated, a
  :class:`FaultInjector` evaluates deterministic trigger policies
  (every-Nth, probability-with-seed, one-shot) and raises
  :class:`InjectedFault`.
- :mod:`repro.faults.health` — per-failure-domain health state
  (healthy → retrying → quarantined) with bounded deterministic backoff
  and reopen probation on the injected clock seam, plus the
  :class:`Coverage` record that quantifies how much of the corpus a
  partial answer actually consulted.

See DESIGN.md, "Failure domains & fault injection".
"""

from .health import (
    DOMAIN_HEALTHY,
    DOMAIN_QUARANTINED,
    DOMAIN_RETRYING,
    Coverage,
    HealthPolicy,
    HealthTracker,
)
from .injection import (
    KNOWN_POINTS,
    POINT_JOURNAL_APPEND,
    POINT_SERVE_WORKER,
    POINT_SHARD_MATERIALIZE,
    POINT_SHARD_SEARCH,
    POINT_SHARD_WORKER,
    POINT_STORE_GET,
    EveryNth,
    FaultInjector,
    FaultRule,
    InjectedFault,
    Once,
    WithProbability,
    activate,
    active_injector,
    deactivate,
    injected,
    trip,
)

__all__ = [
    "Coverage",
    "DOMAIN_HEALTHY",
    "DOMAIN_QUARANTINED",
    "DOMAIN_RETRYING",
    "EveryNth",
    "FaultInjector",
    "FaultRule",
    "HealthPolicy",
    "HealthTracker",
    "InjectedFault",
    "KNOWN_POINTS",
    "Once",
    "POINT_JOURNAL_APPEND",
    "POINT_SERVE_WORKER",
    "POINT_SHARD_MATERIALIZE",
    "POINT_SHARD_SEARCH",
    "POINT_SHARD_WORKER",
    "POINT_STORE_GET",
    "WithProbability",
    "activate",
    "active_injector",
    "deactivate",
    "injected",
    "trip",
]
