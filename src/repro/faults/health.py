"""Per-failure-domain health state and the :class:`Coverage` record.

A :class:`HealthTracker` watches N independent failure domains (one per
shard of a :class:`~repro.index.sharded.ShardedCorpus`) and runs each
through a three-state machine:

- **healthy** — probes route to the domain normally.
- **retrying** — the domain failed recently; it sits out probes for a
  bounded, deterministic, exponentially growing backoff window, then is
  probed again.
- **quarantined** — more than ``max_retries`` consecutive failures;
  the domain sits out for ``reopen_after_s``, after which the next probe
  is let through as a *reopen attempt* (half-open probation).  Success
  heals the domain back to healthy; failure re-quarantines it for
  another reopen window.

All timing flows through an injectable ``clock`` (the
:func:`repro.exec.context.wall_clock` seam, reprolint R001), so the full
lifecycle — backoff, quarantine, reopen, heal — is testable on a fake
clock with exact assertions.

:class:`Coverage` is the quantitative record a partial answer carries:
how many shards answered and what fraction of the corpus's tables were
reachable.  The serving layers thread it end-to-end (``QueryState`` →
``WWTAnswer`` → ``QueryResponse`` → the serve envelope and ``/healthz``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "Coverage",
    "DOMAIN_HEALTHY",
    "DOMAIN_QUARANTINED",
    "DOMAIN_RETRYING",
    "HealthPolicy",
    "HealthTracker",
]

#: Domain answers probes normally.
DOMAIN_HEALTHY = "healthy"
#: Domain failed recently and is sitting out a backoff window.
DOMAIN_RETRYING = "retrying"
#: Domain exceeded ``max_retries`` consecutive failures; probes are held
#: back until the next reopen attempt.
DOMAIN_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """Tunables for the retry/quarantine state machine.

    ``max_retries`` bounds *consecutive* failures before quarantine;
    backoff grows as ``backoff_s * backoff_factor**(failures - 1)``,
    capped at ``max_backoff_s``.  A quarantined domain gets one probe
    through every ``reopen_after_s`` seconds.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    reopen_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_backoff_s < self.backoff_s:
            raise ValueError("max_backoff_s must be >= backoff_s")
        if self.reopen_after_s < 0.0:
            raise ValueError("reopen_after_s must be >= 0")

    def backoff_for(self, consecutive_failures: int) -> float:
        """Deterministic backoff window after the N-th consecutive failure."""
        if consecutive_failures <= 0:
            return 0.0
        window = self.backoff_s * (
            self.backoff_factor ** (consecutive_failures - 1)
        )
        return min(window, self.max_backoff_s)


@dataclass(frozen=True)
class Coverage:
    """How much of the corpus one answer (or the corpus right now) reaches.

    ``complete`` is the invariant serving layers key on: a complete
    coverage means the answer consulted every shard and is bit-identical
    to the fault-free computation; anything else is a partial answer
    that must be flagged degraded and never cached.
    """

    shards_total: int
    shards_reachable: int
    tables_total: int
    tables_reachable: int

    @property
    def fraction(self) -> float:
        """Reachable fraction of the corpus's tables (1.0 when empty)."""
        if self.tables_total == 0:
            return 1.0
        return self.tables_reachable / self.tables_total

    @property
    def complete(self) -> bool:
        """Did every shard answer?"""
        return self.shards_reachable == self.shards_total

    @classmethod
    def full(cls, shards: int, tables: int) -> Coverage:
        """The every-shard-answered record (fault-free corpora)."""
        return cls(
            shards_total=shards,
            shards_reachable=shards,
            tables_total=tables,
            tables_reachable=tables,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for stats payloads and the serve envelope."""
        return {
            "shards_total": self.shards_total,
            "shards_reachable": self.shards_reachable,
            "tables_total": self.tables_total,
            "tables_reachable": self.tables_reachable,
            "fraction": round(self.fraction, 6),
            "complete": self.complete,
        }


class _Domain:
    """Mutable per-domain record (guarded by the tracker's lock)."""

    __slots__ = (
        "state", "consecutive", "failures", "successes", "not_before",
        "last_error",
    )

    def __init__(self) -> None:
        self.state = DOMAIN_HEALTHY
        self.consecutive = 0
        self.failures = 0
        self.successes = 0
        self.not_before = 0.0
        self.last_error = ""


class HealthTracker:
    """Thread-safe health state for ``num_domains`` failure domains.

    The scatter path asks :meth:`available` before probing a domain,
    then reports the outcome through :meth:`record_success` /
    :meth:`record_failure`; everything else (states, coverage,
    snapshots) is derived.  ``clock`` must be monotonic seconds — the
    default is the engine-wide :func:`~repro.exec.context.wall_clock`
    seam.
    """

    def __init__(
        self,
        num_domains: int,
        policy: Optional[HealthPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if num_domains < 1:
            raise ValueError("num_domains must be >= 1")
        if clock is None:
            # Imported lazily: repro.faults sits below repro.exec in the
            # import graph (the index layer imports this package), so the
            # clock-seam default cannot be a module-level import.
            from ..exec.context import wall_clock

            clock = wall_clock
        self.policy = policy if policy is not None else HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._domains = [_Domain() for _ in range(num_domains)]

    @property
    def num_domains(self) -> int:
        """Number of tracked failure domains."""
        return len(self._domains)

    # -- the scatter-path API ---------------------------------------------

    def available(self, domain: int) -> bool:
        """Should a probe route to ``domain`` right now?

        Healthy domains: always.  Retrying/quarantined domains: only
        once their backoff/reopen window has elapsed — that probe *is*
        the retry or reopen attempt (half-open probation), and its
        outcome drives the next transition.
        """
        with self._lock:
            domain_state = self._domains[domain]
            if domain_state.state == DOMAIN_HEALTHY:
                return True
            return self._clock() >= domain_state.not_before

    def record_success(self, domain: int) -> None:
        """A probe of ``domain`` succeeded — heal it to healthy."""
        with self._lock:
            domain_state = self._domains[domain]
            domain_state.state = DOMAIN_HEALTHY
            domain_state.consecutive = 0
            domain_state.successes += 1
            domain_state.not_before = 0.0

    def record_failure(
        self, domain: int, error: Optional[BaseException] = None
    ) -> None:
        """A probe of ``domain`` failed — back off or quarantine it."""
        with self._lock:
            domain_state = self._domains[domain]
            domain_state.consecutive += 1
            domain_state.failures += 1
            if error is not None:
                domain_state.last_error = (
                    f"{type(error).__name__}: {error}"
                )
            now = self._clock()
            if domain_state.consecutive > self.policy.max_retries:
                domain_state.state = DOMAIN_QUARANTINED
                domain_state.not_before = now + self.policy.reopen_after_s
            else:
                domain_state.state = DOMAIN_RETRYING
                domain_state.not_before = now + self.policy.backoff_for(
                    domain_state.consecutive
                )

    # -- derived views ----------------------------------------------------

    def state(self, domain: int) -> str:
        """Current state name of one domain."""
        with self._lock:
            return self._domains[domain].state

    def states(self) -> List[str]:
        """Per-domain state names, in domain order."""
        with self._lock:
            return [d.state for d in self._domains]

    def all_healthy(self) -> bool:
        """Is every domain healthy (the fast common case)?"""
        with self._lock:
            return all(d.state == DOMAIN_HEALTHY for d in self._domains)

    def quarantined(self) -> int:
        """Number of currently quarantined domains."""
        with self._lock:
            return sum(
                1 for d in self._domains if d.state == DOMAIN_QUARANTINED
            )

    def coverage(self, domain_weights: Sequence[int]) -> Coverage:
        """The :class:`Coverage` of a probe routed right now.

        ``domain_weights`` is the per-domain table count; only *healthy*
        domains count as reachable — a retrying/backing-off domain did
        not contribute to the answer being described.
        """
        if len(domain_weights) != len(self._domains):
            raise ValueError(
                f"got {len(domain_weights)} weights for "
                f"{len(self._domains)} domains"
            )
        with self._lock:
            healthy = [
                d.state == DOMAIN_HEALTHY for d in self._domains
            ]
        return Coverage(
            shards_total=len(healthy),
            shards_reachable=sum(healthy),
            tables_total=sum(domain_weights),
            tables_reachable=sum(
                weight for weight, ok in zip(domain_weights, healthy) if ok
            ),
        )

    def snapshot(self) -> List[Dict[str, Any]]:
        """Per-domain diagnostics for stats payloads and tests."""
        with self._lock:
            return [
                {
                    "domain": i,
                    "state": d.state,
                    "consecutive_failures": d.consecutive,
                    "failures": d.failures,
                    "successes": d.successes,
                    "last_error": d.last_error,
                }
                for i, d in enumerate(self._domains)
            ]
