"""Named fault points with deterministic, seeded trigger policies.

The engine's risky edges each call :func:`trip` with a stable point name
(and, where it helps targeting, a per-call key such as the shard ordinal
or table id).  With no injector active — the default, and the only state
tier-1 tests ever see — ``trip`` is a single module-global ``None``
check, so the seam costs nothing and changes nothing.  Tests and the
chaos harness activate a :class:`FaultInjector` (usually through the
:func:`injected` context manager), whose rules decide *deterministically*
when a point fires: the same rules over the same call sequence always
fault the same calls, which is what makes chaos runs reproducible and
their assertions exact.

Fault-point catalog (see DESIGN.md, "Failure domains & fault injection"):

========================  ====================================================
point                     guarded edge
========================  ====================================================
``shard.materialize``     :class:`~repro.index.binfmt.LazyShard` first-probe
                          load (mmap open, decode, cross-checks)
``shard.search``          one shard's scatter-gather probe
                          (:class:`~repro.index.sharded.ShardedCorpus`)
``store.get``             :meth:`~repro.index.store.TableStore.get`
``journal.append``        :func:`~repro.index.journal.append_records`
                          (write + flush + fsync)
``serve.worker``          one worker-pool execution in
                          :class:`~repro.serve.server.ReproServer`
``shard.worker``          one scatter request executed *inside* a process-
                          pool worker (:mod:`repro.index.procpool`)
========================  ====================================================
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "EveryNth",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "KNOWN_POINTS",
    "Once",
    "POINT_JOURNAL_APPEND",
    "POINT_SERVE_WORKER",
    "POINT_SHARD_MATERIALIZE",
    "POINT_SHARD_SEARCH",
    "POINT_SHARD_WORKER",
    "POINT_STORE_GET",
    "TriggerPolicy",
    "WithProbability",
    "activate",
    "active_injector",
    "deactivate",
    "injected",
    "trip",
]

#: :class:`~repro.index.binfmt.LazyShard` materialization (mmap open).
POINT_SHARD_MATERIALIZE = "shard.materialize"
#: One shard's probe inside the scatter-gather.
POINT_SHARD_SEARCH = "shard.search"
#: A :class:`~repro.index.store.TableStore` single-table read.
POINT_STORE_GET = "store.get"
#: A write-ahead journal append (write + flush + fsync).
POINT_JOURNAL_APPEND = "journal.append"
#: One serve-worker execution, before the engine is invoked.
POINT_SERVE_WORKER = "serve.worker"
#: One scatter request inside a process-pool worker, before the shard
#: probe runs (:mod:`repro.index.procpool`).  Trips in the *worker*
#: process, so arming it requires shipping rules at pool spawn.
POINT_SHARD_WORKER = "shard.worker"

#: Every point name compiled into the engine.  :class:`FaultRule`
#: validates against this set so a typo in a chaos config fails loudly
#: at construction instead of silently never firing.
KNOWN_POINTS = frozenset({
    POINT_SHARD_MATERIALIZE,
    POINT_SHARD_SEARCH,
    POINT_SHARD_WORKER,
    POINT_STORE_GET,
    POINT_JOURNAL_APPEND,
    POINT_SERVE_WORKER,
})


class InjectedFault(RuntimeError):
    """The error a fired fault point raises.

    A distinct type so chaos tests can tell injected failures from real
    bugs, while subclassing :class:`RuntimeError` keeps production
    handlers (which catch ``Exception``) exercising their real paths.
    """

    def __init__(self, point: str, key: Optional[str] = None) -> None:
        self.point = point
        self.key = key
        at = f" (key={key!r})" if key is not None else ""
        super().__init__(f"injected fault at {point}{at}")

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[str, Optional[str]]]:
        """Pickle as ``(point, key)`` so a fault raised inside a process-
        pool worker crosses the IPC boundary with its attributes intact
        (the default exception reduction would re-init from the message
        string, garbling ``point``)."""
        return (type(self), (self.point, self.key))


class TriggerPolicy:
    """Decides whether one evaluation of a rule fires.

    Policies are frozen value objects; all mutable trigger state (the
    per-rule evaluation counter and RNG) lives in the
    :class:`FaultInjector`, so one policy object can be shared between
    rules and runs without cross-talk.
    """

    def make_rng(self) -> Optional[random.Random]:
        """A private seeded RNG for the rule, or ``None`` if not needed."""
        return None

    def should_fire(
        self, evaluation: int, rng: Optional[random.Random]
    ) -> bool:
        """Fire on the ``evaluation``-th matching call (1-based)?"""
        raise NotImplementedError


@dataclass(frozen=True)
class EveryNth(TriggerPolicy):
    """Fire on every ``n``-th matching call (1-based; ``n=1`` = always)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("EveryNth needs n >= 1")

    def should_fire(
        self, evaluation: int, rng: Optional[random.Random]
    ) -> bool:
        """True on evaluations ``n, 2n, 3n, ...``."""
        return evaluation % self.n == 0


@dataclass(frozen=True)
class Once(TriggerPolicy):
    """Fire exactly once, on the ``at``-th matching call (1-based)."""

    at: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("Once needs at >= 1")

    def should_fire(
        self, evaluation: int, rng: Optional[random.Random]
    ) -> bool:
        """True only on evaluation number ``at``."""
        return evaluation == self.at


@dataclass(frozen=True)
class WithProbability(TriggerPolicy):
    """Fire each matching call with probability ``p``, from a seeded RNG.

    Deterministic despite being "random": the injector gives each rule
    its own ``random.Random(seed)``, so the same rule over the same call
    sequence fires on exactly the same calls, every run.
    """

    p: float
    seed: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("WithProbability needs 0.0 <= p <= 1.0")

    def make_rng(self) -> Optional[random.Random]:
        """The rule's private ``random.Random(seed)`` stream."""
        return random.Random(self.seed)

    def should_fire(
        self, evaluation: int, rng: Optional[random.Random]
    ) -> bool:
        """One uniform draw from the rule's private stream."""
        if rng is None:
            raise RuntimeError("WithProbability rules need their seeded RNG")
        return rng.random() < self.p


@dataclass(frozen=True)
class FaultRule:
    """Arm one fault point with a trigger policy.

    ``key=None`` matches every call at the point; a non-``None`` key
    restricts the rule to calls that pass that exact key (e.g. shard
    ordinal ``"1"``), which is how chaos tests target a single failure
    domain.  Evaluation counters are per-rule: a keyed rule only counts
    calls it matched.
    """

    point: str
    policy: TriggerPolicy
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known points: "
                f"{sorted(KNOWN_POINTS)}"
            )


class _RuleState:
    """Mutable trigger state for one armed rule (guarded by the injector)."""

    __slots__ = ("evaluations", "fires", "rng")

    def __init__(self, rng: Optional[random.Random]) -> None:
        self.evaluations = 0
        self.fires = 0
        self.rng = rng


class FaultInjector:
    """Evaluates armed rules at every tripped fault point.

    Thread-safe: the scatter pool trips points concurrently, so counter
    and RNG updates happen under one lock.  The raise itself happens
    outside the lock.
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self._rules: List[FaultRule] = list(rules)
        self._lock = threading.Lock()
        self._states: List[_RuleState] = [
            _RuleState(rule.policy.make_rng()) for rule in self._rules
        ]

    def check(self, point: str, key: Optional[str] = None) -> None:
        """Evaluate every rule matching ``(point, key)``; raise on fire."""
        fired: Optional[FaultRule] = None
        with self._lock:
            for rule, rule_state in zip(self._rules, self._states):
                if rule.point != point:
                    continue
                if rule.key is not None and rule.key != key:
                    continue
                rule_state.evaluations += 1
                if rule.policy.should_fire(
                    rule_state.evaluations, rule_state.rng
                ):
                    rule_state.fires += 1
                    fired = rule
                    break
        if fired is not None:
            raise InjectedFault(point, key)

    def rules(self) -> List[FaultRule]:
        """The armed rules (frozen value objects, safe to share/pickle).

        The process scatter pool uses this to ship ``shard.worker`` rules
        to freshly spawned workers — rules are immutable dataclasses, so
        crossing the pickle boundary cannot leak trigger state.
        """
        return list(self._rules)

    def snapshot(self) -> List[Dict[str, object]]:
        """Per-rule ``{point, key, evaluations, fires}`` (test assertions)."""
        with self._lock:
            return [
                {
                    "point": rule.point,
                    "key": rule.key,
                    "evaluations": rule_state.evaluations,
                    "fires": rule_state.fires,
                }
                for rule, rule_state in zip(self._rules, self._states)
            ]

    def fires(self, point: Optional[str] = None) -> int:
        """Total fires, optionally restricted to one point."""
        with self._lock:
            return sum(
                rule_state.fires
                for rule, rule_state in zip(self._rules, self._states)
                if point is None or rule.point == point
            )


# The module-global seam.  `trip` reads `_ACTIVE` without a lock: Python
# attribute reads are atomic, and the only states are None (disabled — a
# no-op) or a fully constructed injector, so a racing reader sees one or
# the other, never a half-built object.
_ACTIVE: Optional[FaultInjector] = None
_ACTIVATION_LOCK = threading.Lock()


def trip(point: str, key: Optional[str] = None) -> None:
    """Evaluate fault point ``point``; no-op unless an injector is active.

    This is the call compiled into the engine's risky edges.  Disabled
    cost: one global read and a ``None`` comparison.
    """
    injector = _ACTIVE
    if injector is None:
        return
    injector.check(point, key)


def activate(injector: FaultInjector) -> None:
    """Install ``injector`` as the process-wide active injector.

    Refuses to stack: activating while another injector is active raises
    ``RuntimeError``, because two overlapping chaos scopes would make
    each other's trigger sequences nondeterministic.
    """
    global _ACTIVE
    with _ACTIVATION_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError(
                "a FaultInjector is already active; deactivate() it first "
                "(fault scopes must not overlap)"
            )
        _ACTIVE = injector


def deactivate() -> None:
    """Remove the active injector (idempotent); ``trip`` is a no-op again."""
    global _ACTIVE
    with _ACTIVATION_LOCK:
        _ACTIVE = None


def active_injector() -> Optional[FaultInjector]:
    """The currently active injector, or ``None`` when disabled."""
    return _ACTIVE


@contextmanager
def injected(
    *rules: FaultRule,
) -> Iterator[FaultInjector]:
    """Activate a fresh injector over ``rules`` for the ``with`` body.

    ::

        with injected(FaultRule("shard.search", EveryNth(3), key="1")):
            corpus.search(["country"])   # shard 1's every 3rd probe faults

    Deactivation is guaranteed on exit, so a failing test cannot leak an
    armed injector into the rest of the suite.
    """
    injector = FaultInjector(list(rules))
    activate(injector)
    try:
        yield injector
    finally:
        deactivate()


def rules_from_spec(
    spec: Sequence[Tuple[str, TriggerPolicy]],
) -> List[FaultRule]:
    """Build unkeyed rules from ``(point, policy)`` pairs (bench configs)."""
    return [FaultRule(point, policy) for point, policy in spec]
