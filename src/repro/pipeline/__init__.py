"""End-to-end query pipeline: probe, mapping, consolidation."""

from .probe import ProbeConfig, ProbeResult, two_stage_probe
from .wwt import QueryTiming, WWTAnswer, WWTEngine

__all__ = [
    "ProbeConfig",
    "ProbeResult",
    "QueryTiming",
    "WWTAnswer",
    "WWTEngine",
    "two_stage_probe",
]
