"""The two-stage index probe (Section 2.2.1).

Stage 1 probes the index with the union of all query keywords.  Because
many relevant tables have no useful header or context words, a second probe
augments the keywords with a random sample of rows from the stage-1 tables
the column mapper is *most confident* about — retrieving tables by content
overlap.  The paper reports the second stage fired for 65% of queries and
contributed about half of all relevant tables.

Since the execution-engine refactor the probe is defined as the staged
sub-plan ``probe.index1 -> probe.read1 -> probe.confidence ->
probe.index2 -> probe.read2`` (stage bodies in :mod:`repro.exec.query`);
:func:`two_stage_probe` runs that plan under an
:class:`~repro.exec.context.ExecutionContext`, so callers that never
touch the engine keep the exact pre-refactor behaviour while budgeted
callers get per-stage spans and graceful degradation for free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..core.features import FeatureCache
from ..core.model import build_problem
from ..core.params import DEFAULT_PARAMS, ModelParams
from ..core.pmi import PmiScorer
from ..index.protocol import CorpusProtocol
from ..query.model import Query
from ..tables.table import WebTable
from ..inference.base import column_distributions
from ..inference.max_marginals import all_max_marginals

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..exec.context import ExecutionContext
    from ..index.inverted import SearchHit

__all__ = [
    "PROBE_TIMING_SPANS",
    "ProbeConfig",
    "ProbeResult",
    "two_stage_probe",
    "table_confidences",
    "trim_hits",
]

#: The probe's ``QueryTiming`` field <-> execution span name mapping, in
#: stage order — the single source shared by :func:`two_stage_probe`'s
#: ``timings`` dict and ``QueryTiming.from_spans`` (renaming a probe
#: stage is a one-line change here; ``tests/test_exec.py`` pins this
#: tuple against the plan's actual stage names).
PROBE_TIMING_SPANS = (
    ("index1", "probe.index1"),
    ("read1", "probe.read1"),
    ("confidence", "probe.confidence"),
    ("index2", "probe.index2"),
    ("read2", "probe.read2"),
)


@dataclass(frozen=True)
class ProbeConfig:
    """Tunables of the two-stage probe."""

    stage1_limit: int = 60
    stage2_limit: int = 40
    #: Hits scoring below this fraction of the best hit are dropped —
    #: Lucene-style probes return a long weak tail that would otherwise pad
    #: the candidate set with noise.
    min_score_fraction: float = 0.25
    #: Confidence a table must reach to seed the second probe ("very high
    #: relevance score", top two tables).  Matches the 0.6 column-confidence
    #: threshold of Section 3.3 — the softmax over table-level
    #: max-marginals rarely exceeds ~0.7 at the trained weight scale.
    seed_confidence: float = 0.6
    num_seed_tables: int = 2
    num_sample_rows: int = 10
    seed: int = 0


@dataclass
class ProbeResult:
    """Outcome of the candidate retrieval for one query."""

    tables: List[WebTable]
    stage1_ids: List[str]
    stage2_ids: List[str]
    used_second_stage: bool
    seed_table_ids: List[str] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        """Total distinct candidate tables."""
        return len(self.tables)


def trim_hits(
    hits: List[SearchHit], min_score_fraction: float
) -> List[SearchHit]:
    """Drop the weak tail: hits below ``min_score_fraction`` of the best."""
    if not hits:
        return hits
    floor = hits[0].score * min_score_fraction
    if hits[-1].score >= floor:
        # Hits arrive sorted best-first, so when even the weakest one
        # clears the floor there is nothing to drop — skip the rescan.
        return hits
    return [h for h in hits if h.score >= floor]


def table_confidences(
    query: Query,
    tables: Sequence[WebTable],
    corpus: CorpusProtocol,
    params: ModelParams,
    feature_cache: Optional[FeatureCache] = None,
    pmi_scorer: Optional[PmiScorer] = None,
) -> List[float]:
    """Per-table relevance confidence from independent max-marginals."""
    problem = build_problem(
        query, tables, corpus.stats, params,
        pmi_scorer=pmi_scorer, feature_cache=feature_cache,
    )
    distributions = column_distributions(problem, all_max_marginals(problem))
    confidences = []
    for ti in range(len(tables)):
        best = 0.0
        for tc in problem.table_columns(ti):
            dist = distributions[tc]
            mass = max(dist[l] for l in problem.labels.query_labels())
            best = max(best, mass)
        confidences.append(best)
    return confidences


def two_stage_probe(
    query: Query,
    corpus: CorpusProtocol,
    config: Optional[ProbeConfig] = None,
    params: ModelParams = DEFAULT_PARAMS,
    timings: Optional[dict] = None,
    rng: Optional[random.Random] = None,
    feature_cache: Optional[FeatureCache] = None,
    pmi_scorer: Optional[PmiScorer] = None,
    context: Optional[ExecutionContext] = None,
) -> ProbeResult:
    """Run the Section 2.2.1 candidate retrieval.

    ``corpus`` is any :class:`~repro.index.protocol.CorpusProtocol` backend
    — the monolithic :class:`~repro.index.IndexedCorpus` or the
    scatter-gather :class:`~repro.index.ShardedCorpus`; results are
    identical (see DESIGN.md, "Sharded index & persistence").

    ``timings`` (when given) receives per-stage wall-clock seconds under the
    keys ``index1``, ``read1``, ``confidence``, ``index2``, ``read2`` — the
    slices of Figure 7, read off the execution spans.

    The stage-2 row sample draws from a private ``random.Random`` seeded
    with ``config.seed`` (never the module-global generator), so concurrent
    probes — including parallel sharded scatter-gather — and cached reruns
    are bit-reproducible.  Pass ``rng`` to thread your own generator
    instead (it is consumed; share one only for deliberately coupled
    sampling sequences).

    ``feature_cache`` (when given) is populated by the confidence pass's
    :func:`~repro.core.model.build_problem` call, so a caller assembling
    the full inference problem right after this probe — the serving
    facade — reuses every stage-1 table's features instead of recomputing
    them (see DESIGN.md, "Hot-path engine").  ``pmi_scorer`` forwards to
    the same call (only consulted when ``params.w3`` is non-zero).

    ``context`` (when given) threads an existing
    :class:`~repro.exec.context.ExecutionContext` through — the probe's
    spans land in that context's tree and its deadline/cancellation apply
    (a budgeted probe may skip its second stage and come back degraded).
    By default a fresh unbounded context runs the stages to completion,
    exactly as before the execution engine existed.
    """
    # Imported here, not at module scope: repro.exec.query imports this
    # module's stage helpers, so the probe reaches the engine lazily.
    from ..exec.context import ExecutionContext
    from ..exec.query import build_probe_plan
    from ..exec.state import QueryState

    if config is None:
        config = ProbeConfig()
    ctx = context if context is not None else ExecutionContext(
        root_name="probe"
    )
    state = QueryState(
        query=query,
        corpus=corpus,
        probe_config=config,
        params=params,
        rng=rng if rng is not None else random.Random(config.seed),
        feature_cache=feature_cache,
        pmi_scorer=pmi_scorer,
    )
    parent = ctx.current
    before = len(parent.children)
    build_probe_plan().run(ctx, state)
    if timings is not None:
        spans = {s.name: s for s in parent.children[before:]}
        for key, span_name in PROBE_TIMING_SPANS:
            span = spans.get(span_name)
            if span is not None:
                timings[key] = timings.get(key, 0.0) + span.duration
    return state.probe
