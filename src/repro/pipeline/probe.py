"""The two-stage index probe (Section 2.2.1).

Stage 1 probes the index with the union of all query keywords.  Because
many relevant tables have no useful header or context words, a second probe
augments the keywords with a random sample of rows from the stage-1 tables
the column mapper is *most confident* about — retrieving tables by content
overlap.  The paper reports the second stage fired for 65% of queries and
contributed about half of all relevant tables.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..core.features import FeatureCache
from ..core.model import build_problem
from ..core.params import DEFAULT_PARAMS, ModelParams
from ..core.pmi import PmiScorer
from ..index.protocol import CorpusProtocol
from ..query.model import Query
from ..tables.table import WebTable
from ..text.tokenize import tokenize
from ..inference.base import column_distributions
from ..inference.max_marginals import all_max_marginals

__all__ = ["ProbeConfig", "ProbeResult", "two_stage_probe"]


@dataclass(frozen=True)
class ProbeConfig:
    """Tunables of the two-stage probe."""

    stage1_limit: int = 60
    stage2_limit: int = 40
    #: Hits scoring below this fraction of the best hit are dropped —
    #: Lucene-style probes return a long weak tail that would otherwise pad
    #: the candidate set with noise.
    min_score_fraction: float = 0.25
    #: Confidence a table must reach to seed the second probe ("very high
    #: relevance score", top two tables).  Matches the 0.6 column-confidence
    #: threshold of Section 3.3 — the softmax over table-level
    #: max-marginals rarely exceeds ~0.7 at the trained weight scale.
    seed_confidence: float = 0.6
    num_seed_tables: int = 2
    num_sample_rows: int = 10
    seed: int = 0


@dataclass
class ProbeResult:
    """Outcome of the candidate retrieval for one query."""

    tables: List[WebTable]
    stage1_ids: List[str]
    stage2_ids: List[str]
    used_second_stage: bool
    seed_table_ids: List[str] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        """Total distinct candidate tables."""
        return len(self.tables)


def _table_confidences(
    query: Query,
    tables: Sequence[WebTable],
    corpus: CorpusProtocol,
    params: ModelParams,
    feature_cache: Optional[FeatureCache] = None,
    pmi_scorer: Optional[PmiScorer] = None,
) -> List[float]:
    """Per-table relevance confidence from independent max-marginals."""
    problem = build_problem(
        query, tables, corpus.stats, params,
        pmi_scorer=pmi_scorer, feature_cache=feature_cache,
    )
    distributions = column_distributions(problem, all_max_marginals(problem))
    confidences = []
    for ti in range(len(tables)):
        best = 0.0
        for tc in problem.table_columns(ti):
            dist = distributions[tc]
            mass = max(dist[l] for l in problem.labels.query_labels())
            best = max(best, mass)
        confidences.append(best)
    return confidences


def two_stage_probe(
    query: Query,
    corpus: CorpusProtocol,
    config: Optional[ProbeConfig] = None,
    params: ModelParams = DEFAULT_PARAMS,
    timings: Optional[dict] = None,
    rng: Optional[random.Random] = None,
    feature_cache: Optional[FeatureCache] = None,
    pmi_scorer: Optional[PmiScorer] = None,
) -> ProbeResult:
    """Run the Section 2.2.1 candidate retrieval.

    ``corpus`` is any :class:`~repro.index.protocol.CorpusProtocol` backend
    — the monolithic :class:`~repro.index.IndexedCorpus` or the
    scatter-gather :class:`~repro.index.ShardedCorpus`; results are
    identical (see DESIGN.md, "Sharded index & persistence").

    ``timings`` (when given) receives per-stage wall-clock seconds under the
    keys ``index1``, ``read1``, ``confidence``, ``index2``, ``read2`` — the
    slices of Figure 7.

    The stage-2 row sample draws from a private ``random.Random`` seeded
    with ``config.seed`` (never the module-global generator), so concurrent
    probes — including parallel sharded scatter-gather — and cached reruns
    are bit-reproducible.  Pass ``rng`` to thread your own generator
    instead (it is consumed; share one only for deliberately coupled
    sampling sequences).

    ``feature_cache`` (when given) is populated by the confidence pass's
    :func:`~repro.core.model.build_problem` call, so a caller assembling
    the full inference problem right after this probe — the serving
    facade — reuses every stage-1 table's features instead of recomputing
    them (see DESIGN.md, "Hot-path engine").  ``pmi_scorer`` forwards to
    the same call (only consulted when ``params.w3`` is non-zero).
    """
    if config is None:
        config = ProbeConfig()

    def _record(key: str, start: float) -> float:
        now = _time.perf_counter()
        if timings is not None:
            timings[key] = timings.get(key, 0.0) + (now - start)
        return now

    if rng is None:
        rng = random.Random(config.seed)

    def _trim(hits):
        if not hits:
            return hits
        floor = hits[0].score * config.min_score_fraction
        if hits[-1].score >= floor:
            # Hits arrive sorted best-first, so when even the weakest one
            # clears the floor there is nothing to drop — skip the rescan.
            return hits
        return [h for h in hits if h.score >= floor]

    t0 = _time.perf_counter()
    stage1_hits = _trim(
        corpus.search(query.all_tokens(), limit=config.stage1_limit)
    )
    stage1_ids = [h.doc_id for h in stage1_hits]
    t0 = _record("index1", t0)
    stage1_tables = corpus.get_many(stage1_ids)
    t0 = _record("read1", t0)

    if not stage1_tables:
        return ProbeResult(
            tables=[], stage1_ids=[], stage2_ids=[], used_second_stage=False
        )

    confidences = _table_confidences(
        query, stage1_tables, corpus, params,
        feature_cache=feature_cache, pmi_scorer=pmi_scorer,
    )
    ranked = sorted(
        range(len(stage1_tables)), key=lambda i: -confidences[i]
    )
    seeds = [
        stage1_tables[i]
        for i in ranked[: config.num_seed_tables]
        if confidences[i] >= config.seed_confidence
    ]
    t0 = _record("confidence", t0)

    stage2_ids: List[str] = []
    if seeds:
        sample_tokens: List[str] = []
        all_rows = [
            row for table in seeds for row in table.body_rows()
        ]
        rng.shuffle(all_rows)
        for row in all_rows[: config.num_sample_rows]:
            for cell in row:
                sample_tokens.extend(tokenize(cell.text))
        probe2 = query.all_tokens() + sample_tokens
        stage2_hits = _trim(
            corpus.search(probe2, limit=config.stage2_limit)
        )
        seen: Set[str] = set(stage1_ids)
        stage2_ids = [h.doc_id for h in stage2_hits if h.doc_id not in seen]
    t0 = _record("index2", t0)

    tables = stage1_tables + corpus.get_many(stage2_ids)
    _record("read2", t0)
    return ProbeResult(
        tables=tables,
        stage1_ids=stage1_ids,
        stage2_ids=stage2_ids,
        used_second_stage=bool(stage2_ids),
        seed_table_ids=[t.table_id for t in seeds],
    )
