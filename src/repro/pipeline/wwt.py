"""Query-time artifacts (Figure 2) and the legacy engine shim.

:class:`QueryTiming` and :class:`WWTAnswer` describe everything the
pipeline produced for one query — they are the artifact types shared by
the serving layer.  :class:`WWTEngine` is the pre-service entry point,
kept as a thin deprecated shim over :class:`repro.service.WWTService`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..consolidate.merge import AnswerTable
from ..core.model import ColumnMappingProblem
from ..core.params import DEFAULT_PARAMS, ModelParams
from ..index.builder import IndexedCorpus
from ..inference import MappingResult
from ..query.model import Query
from .probe import PROBE_TIMING_SPANS, ProbeConfig, ProbeResult

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..exec.context import Span
    from ..faults.health import Coverage

__all__ = ["QueryTiming", "WWTAnswer", "WWTEngine"]


@dataclass
class QueryTiming:
    """Per-stage wall-clock seconds for one query (Figure 7's slices).

    Since the execution-engine refactor this is a *view* over the span
    tree an :class:`~repro.exec.context.ExecutionContext` recorded —
    build one with :meth:`from_spans` — rather than a hand-assembled
    timing dict; the field names survive as the stable reporting schema.
    """

    index1: float = 0.0
    read1: float = 0.0
    confidence: float = 0.0
    index2: float = 0.0
    read2: float = 0.0
    column_map: float = 0.0
    consolidate: float = 0.0

    @classmethod
    def from_spans(cls, root: Span) -> QueryTiming:
        """Project an execution span tree onto Figure 7's slices.

        ``consolidate`` folds the ``rank`` stage in — the pre-executor
        pipeline timed consolidation and ranking as one block, and the
        figure keeps that stacking.  The probe fields come from the
        shared :data:`~repro.pipeline.probe.PROBE_TIMING_SPANS` mapping.
        """
        probe_fields = {
            field_name: root.total(span_name)
            for field_name, span_name in PROBE_TIMING_SPANS
        }
        return cls(
            column_map=root.total("column_map"),
            consolidate=root.total("consolidate") + root.total("rank"),
            **probe_fields,
        )

    @property
    def total(self) -> float:
        """Total query latency."""
        return (
            self.index1 + self.read1 + self.confidence + self.index2
            + self.read2 + self.column_map + self.consolidate
        )

    def as_dict(self) -> Dict[str, float]:
        """Stage name -> seconds, in Figure 7's stacking order."""
        return {
            "1st Index": self.index1,
            "1st Table Read": self.read1,
            "2nd Index": self.confidence + self.index2,
            "2nd Table Read": self.read2,
            "Column Map": self.column_map,
            "Consolidate": self.consolidate,
        }


@dataclass
class WWTAnswer:
    """Everything the engine produced for one query."""

    query: Query
    answer: AnswerTable
    mapping: MappingResult
    probe: ProbeResult
    timing: QueryTiming
    problem: ColumnMappingProblem
    #: Root of the execution span tree (``None`` for paths that bypass
    #: the execution engine); ``timing`` is a view over it.
    spans: Optional[Span] = None
    #: True when a deadline forced stages to skip or fall back — the
    #: answer is partial (see DESIGN.md, "Execution engine").
    degraded: bool = False
    #: Stage names whose results this answer reflects, in execution
    #: order: executed this request or replayed from the probe cache;
    #: deadline-skipped stages are absent.
    stages_ran: list = field(default_factory=list)
    #: Why the answer is degraded, in first-occurrence order
    #: (``"deadline"``, ``"shard_failure"``); empty iff not degraded.
    degraded_reasons: list = field(default_factory=list)
    #: Worst shard coverage the probes saw; ``None`` when the corpus has
    #: no failure domains or every shard answered every probe.
    coverage: Optional[Coverage] = None


class WWTEngine:
    """Deprecated constructor-style entry point.

    Use :class:`repro.service.WWTService` instead — it adds request/response
    types, caching, batching, and serving stats.  This shim wires the old
    constructor arguments into an :class:`~repro.service.EngineConfig`
    (caches off, matching the old always-recompute behaviour) and delegates.
    """

    def __init__(
        self,
        corpus: IndexedCorpus,
        params: ModelParams = DEFAULT_PARAMS,
        inference: str = "table-centric",
        probe_config: Optional[ProbeConfig] = None,
    ) -> None:
        warnings.warn(
            "WWTEngine is deprecated; use repro.service.WWTService "
            "(see DESIGN.md for the migration map)",
            DeprecationWarning,
            stacklevel=2,
        )
        # Imported here: repro.service depends on this module's artifacts.
        from ..service import EngineConfig, WWTService

        config = EngineConfig(
            params=params,
            probe=probe_config if probe_config is not None else ProbeConfig(),
            inference=inference,
            cache_size=0,
            probe_cache_size=0,
        )
        self._service = WWTService(corpus, config)

    @property
    def corpus(self) -> IndexedCorpus:
        """The indexed corpus being served."""
        return self._service.corpus

    @property
    def params(self) -> ModelParams:
        """The model parameters in use."""
        return self._service.config.params

    @property
    def inference_name(self) -> str:
        """The configured inference algorithm."""
        return self._service.config.inference

    @property
    def probe_config(self) -> ProbeConfig:
        """The two-stage probe tunables."""
        return self._service.config.probe

    def answer(self, query: Query) -> WWTAnswer:
        """Run the full pipeline for one query."""
        return self._service.answer_full(query, use_cache=False)
