"""The end-to-end WWT engine (Figure 2, query-time half).

``WWTEngine.answer`` runs the full pipeline for one query: two-stage index
probe, column mapping with a chosen inference algorithm, consolidation, and
ranking — recording the per-stage timing breakdown of Figure 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..consolidate.merge import AnswerTable, consolidate
from ..consolidate.ranker import rank_answer
from ..core.model import ColumnMappingProblem, build_problem
from ..core.params import DEFAULT_PARAMS, ModelParams
from ..index.builder import IndexedCorpus
from ..inference import ALGORITHMS, MappingResult
from ..query.model import Query
from .probe import ProbeConfig, ProbeResult, two_stage_probe

__all__ = ["QueryTiming", "WWTAnswer", "WWTEngine"]


@dataclass
class QueryTiming:
    """Per-stage wall-clock seconds for one query (Figure 7's slices)."""

    index1: float = 0.0
    read1: float = 0.0
    confidence: float = 0.0
    index2: float = 0.0
    read2: float = 0.0
    column_map: float = 0.0
    consolidate: float = 0.0

    @property
    def total(self) -> float:
        """Total query latency."""
        return (
            self.index1 + self.read1 + self.confidence + self.index2
            + self.read2 + self.column_map + self.consolidate
        )

    def as_dict(self) -> Dict[str, float]:
        """Stage name -> seconds, in Figure 7's stacking order."""
        return {
            "1st Index": self.index1,
            "1st Table Read": self.read1,
            "2nd Index": self.confidence + self.index2,
            "2nd Table Read": self.read2,
            "Column Map": self.column_map,
            "Consolidate": self.consolidate,
        }


@dataclass
class WWTAnswer:
    """Everything the engine produced for one query."""

    query: Query
    answer: AnswerTable
    mapping: MappingResult
    probe: ProbeResult
    timing: QueryTiming
    problem: ColumnMappingProblem


class WWTEngine:
    """Query engine over an indexed corpus."""

    def __init__(
        self,
        corpus: IndexedCorpus,
        params: ModelParams = DEFAULT_PARAMS,
        inference: str = "table-centric",
        probe_config: ProbeConfig = ProbeConfig(),
    ) -> None:
        if inference not in ALGORITHMS:
            raise ValueError(
                f"unknown inference {inference!r}; options: {sorted(ALGORITHMS)}"
            )
        self.corpus = corpus
        self.params = params
        self.inference_name = inference
        self.probe_config = probe_config

    @property
    def _inference(self) -> Callable[[ColumnMappingProblem], MappingResult]:
        return ALGORITHMS[self.inference_name]

    def answer(self, query: Query) -> WWTAnswer:
        """Run the full pipeline for one query."""
        timing = QueryTiming()
        raw_timings: Dict[str, float] = {}

        probe = two_stage_probe(
            query, self.corpus, self.probe_config, self.params, timings=raw_timings
        )
        timing.index1 = raw_timings.get("index1", 0.0)
        timing.read1 = raw_timings.get("read1", 0.0)
        timing.confidence = raw_timings.get("confidence", 0.0)
        timing.index2 = raw_timings.get("index2", 0.0)
        timing.read2 = raw_timings.get("read2", 0.0)

        t0 = time.perf_counter()
        problem = build_problem(query, probe.tables, self.corpus.stats, self.params)
        mapping = self._inference(problem)
        timing.column_map = time.perf_counter() - t0

        t0 = time.perf_counter()
        mappings = {
            ti: mapping.table_mapping(ti) for ti in mapping.relevant_tables()
        }
        relevance = {
            ti: mapping.table_relevance_score(ti) for ti in mappings
        }
        answer = rank_answer(
            consolidate(query, probe.tables, mappings, relevance)
        )
        timing.consolidate = time.perf_counter() - t0

        return WWTAnswer(
            query=query,
            answer=answer,
            mapping=mapping,
            probe=probe,
            timing=timing,
            problem=problem,
        )
