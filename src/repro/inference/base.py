"""Shared inference types: labelings, probabilities, results.

All inference algorithms return a :class:`MappingResult` — the joint label
assignment plus the calibrated per-column distributions the rest of WWT
needs (Section 2.2.2: scores drive the second index probe and the final
ranking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..core.model import ColumnMappingProblem

__all__ = ["softmax", "MappingResult", "column_distributions", "confident_map"]


def softmax(values: List[float]) -> List[float]:
    """Numerically stable softmax; -inf entries get probability zero."""
    finite = [v for v in values if v != float("-inf")]
    if not finite:
        return [0.0] * len(values)
    peak = max(finite)
    exps = [math.exp(v - peak) if v != float("-inf") else 0.0 for v in values]
    total = sum(exps)
    if total <= 0:
        return [0.0] * len(values)
    return [e / total for e in exps]


@dataclass
class MappingResult:
    """Joint labeling of all column variables for one query."""

    problem: ColumnMappingProblem
    labels: Dict[Tuple[int, int], int]
    #: Pr(l | tc) per column (dense label order), when the algorithm
    #: computed them (table-independent max-marginal softmax).
    distributions: Dict[Tuple[int, int], List[float]] = field(default_factory=dict)
    algorithm: str = ""

    def label_name(self, tc: Tuple[int, int]) -> str:
        """Human-readable label of one column."""
        return self.problem.labels.name(self.labels[tc])

    def is_relevant(self, ti: int) -> bool:
        """Did the labeling mark table ``ti`` relevant?"""
        nr = self.problem.labels.nr
        return any(
            self.labels[tc] != nr for tc in self.problem.table_columns(ti)
        )

    def relevant_tables(self) -> List[int]:
        """Indices of tables labeled relevant."""
        return [ti for ti in range(len(self.problem.tables)) if self.is_relevant(ti)]

    def table_mapping(self, ti: int) -> Dict[int, int]:
        """column index -> 1-based query column, for mapped columns of t."""
        labels = self.problem.labels
        out: Dict[int, int] = {}
        for ti_, ci in self.problem.table_columns(ti):
            label = self.labels[(ti_, ci)]
            if labels.is_query(label):
                out[ci] = labels.to_query_column(label)
        return out

    def table_relevance_score(self, ti: int) -> float:
        """Calibrated relevance probability of table ``ti``.

        Averages, over the table's mapped columns, the probability mass on
        query labels; falls back to 0/1 from the hard labeling when the
        algorithm produced no distributions.
        """
        cols = self.problem.table_columns(ti)
        labels = self.problem.labels
        if not self.distributions:
            return 1.0 if self.is_relevant(ti) else 0.0
        masses = []
        for tc in cols:
            dist = self.distributions.get(tc)
            if dist:
                masses.append(sum(dist[l] for l in labels.query_labels()))
        if not masses:
            return 1.0 if self.is_relevant(ti) else 0.0
        return max(masses)

    def column_confidence(self, tc: Tuple[int, int]) -> float:
        """Probability of the assigned label (1.0 without distributions)."""
        dist = self.distributions.get(tc)
        if not dist:
            return 1.0
        return dist[self.labels[tc]]

    def score(self) -> float:
        """Objective value of this labeling (Eq. 9)."""
        return self.problem.score(self.labels, confident_map(self.problem, self.distributions))


def column_distributions(
    problem: ColumnMappingProblem,
    max_marginals: Mapping[Tuple[int, int], List[float]],
) -> Dict[Tuple[int, int], List[float]]:
    """Pr(l | tc) by softmaxing per-column max-marginals (Section 4.2)."""
    return {tc: softmax(list(mm)) for tc, mm in max_marginals.items()}


def confident_map(
    problem: ColumnMappingProblem,
    distributions: Mapping[Tuple[int, int], List[float]],
) -> Dict[Tuple[int, int], bool]:
    """The edge-gating confidence indicator of Section 3.3.

    A column is confident when some *query* label holds more than the
    threshold (default 0.6) of its probability mass.
    """
    threshold = problem.params.confidence_threshold
    labels = problem.labels
    out: Dict[Tuple[int, int], bool] = {}
    for tc in problem.columns():
        dist = distributions.get(tc)
        if not dist:
            out[tc] = False
            continue
        out[tc] = max(dist[l] for l in labels.query_labels()) > threshold
    return out
