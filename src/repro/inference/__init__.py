"""Inference algorithms for the column mapping task (Section 4).

``independent`` solves tables in isolation (the "None" baseline of
Table 2); ``table_centric`` is the paper's best collective algorithm;
``alpha_expansion`` the constrained graph-cut alternative; ``bp`` and
``trws`` the message-passing comparisons; ``exhaustive`` the brute-force
test oracle.

Each algorithm registers itself into :data:`REGISTRY` (an
:class:`~repro.inference.registry.InferenceRegistry`) at import time via
the :func:`~repro.inference.registry.register_algorithm` decorator.
``ALGORITHMS`` is the same registry under its historical name — it still
behaves like the ``Dict[str, InferenceFn]`` it used to be.
"""

from .alpha_expansion import alpha_expansion_inference
from .base import MappingResult, column_distributions, confident_map, softmax
from .belief_propagation import belief_propagation_inference
from .exhaustive import exhaustive_inference
from .independent import independent_inference, solve_table
from .max_marginals import all_max_marginals, table_max_marginals
from .registry import (
    DEFAULT_REGISTRY,
    AlgorithmInfo,
    InferenceFn,
    InferenceRegistry,
    UnknownAlgorithmError,
    register_algorithm,
)
from .repair import repair_assignment, table_violates_constraints
from .table_centric import table_centric_inference
from .trws import trws_inference

#: The registry holding the Table 2 algorithms (populated by the modules
#: above at import time).
REGISTRY: InferenceRegistry = DEFAULT_REGISTRY

#: Legacy alias — the registry satisfies the Mapping protocol, so code
#: written against the old plain-dict constant keeps working.
ALGORITHMS = REGISTRY


def get_algorithm(name: str) -> InferenceFn:
    """Look up an inference algorithm by registered name."""
    return REGISTRY.get_algorithm(name)


__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "InferenceRegistry",
    "REGISTRY",
    "UnknownAlgorithmError",
    "get_algorithm",
    "register_algorithm",
    "MappingResult",
    "all_max_marginals",
    "alpha_expansion_inference",
    "belief_propagation_inference",
    "column_distributions",
    "confident_map",
    "exhaustive_inference",
    "independent_inference",
    "repair_assignment",
    "softmax",
    "solve_table",
    "table_centric_inference",
    "table_max_marginals",
    "table_violates_constraints",
    "trws_inference",
]
