"""Inference algorithms for the column mapping task (Section 4).

``independent`` solves tables in isolation (the "None" baseline of
Table 2); ``table_centric`` is the paper's best collective algorithm;
``alpha_expansion`` the constrained graph-cut alternative; ``bp`` and
``trws`` the message-passing comparisons; ``exhaustive`` the brute-force
test oracle.
"""

from typing import Callable, Dict

from ..core.model import ColumnMappingProblem
from .alpha_expansion import alpha_expansion_inference
from .base import MappingResult, column_distributions, confident_map, softmax
from .belief_propagation import belief_propagation_inference
from .exhaustive import exhaustive_inference
from .independent import independent_inference, solve_table
from .max_marginals import all_max_marginals, table_max_marginals
from .repair import repair_assignment, table_violates_constraints
from .table_centric import table_centric_inference
from .trws import trws_inference

#: Registry of the collective-inference algorithms compared in Table 2.
ALGORITHMS: Dict[str, Callable[[ColumnMappingProblem], MappingResult]] = {
    "none": independent_inference,
    "alpha-expansion": alpha_expansion_inference,
    "bp": belief_propagation_inference,
    "trws": trws_inference,
    "table-centric": table_centric_inference,
}

__all__ = [
    "ALGORITHMS",
    "MappingResult",
    "all_max_marginals",
    "alpha_expansion_inference",
    "belief_propagation_inference",
    "column_distributions",
    "confident_map",
    "exhaustive_inference",
    "independent_inference",
    "repair_assignment",
    "softmax",
    "solve_table",
    "table_centric_inference",
    "table_max_marginals",
    "table_violates_constraints",
    "trws_inference",
]
