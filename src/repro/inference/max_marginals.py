"""Max-marginal computation (Section 4.2.3, Fig. 3).

``µ_tc(l)`` is the best achievable table score when column ``c`` is forced
to take label ``l``, under mutex and all-Irr only — must-match and
min-match are *deliberately excluded* so the relative magnitudes across
labels stay comparable (the paper calls this out explicitly).

For query labels and ``na`` this is a forced-assignment bipartite optimum,
computed for all (c, l) pairs at once from the residual graph of a single
min-cost-flow solve (one Bellman–Ford per label).  For ``nr``, all-Irr
forces the whole table, so ``µ_tc(nr)`` is the all-``nr`` table score.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.model import ColumnMappingProblem
from ..flow.bipartite import BipartiteMatcher
from .base import column_distributions

__all__ = ["table_max_marginals", "all_max_marginals"]


def table_max_marginals(
    problem: ColumnMappingProblem,
    ti: int,
    potentials: Optional[Dict[Tuple[int, int], List[float]]] = None,
) -> Dict[Tuple[int, int], List[float]]:
    """µ_tc(l) for every column of table ``ti`` and every label.

    Returns dense per-column lists over the full label space
    (q query labels, na, nr).
    """
    table = problem.tables[ti]
    labels = problem.labels
    q = labels.q
    nt = table.num_cols
    theta = potentials if potentials is not None else problem.node_potentials

    # Bipartite graph without must-match (no M1) and without min-match
    # (na capacity = nt), exactly Fig. 3's construction.
    weights = [
        [theta[(ti, ci)][l] for l in range(q)] + [theta[(ti, ci)][labels.na]]
        for ci in range(nt)
    ]
    matcher = BipartiteMatcher(weights, [1] * nt, [1] * q + [nt])
    matcher.solve()
    mm = matcher.max_marginals()

    nr_score = sum(theta[(ti, ci)][labels.nr] for ci in range(nt))

    out: Dict[Tuple[int, int], List[float]] = {}
    for ci in range(nt):
        row = [mm[ci][l] for l in range(q)]
        row.append(mm[ci][q])  # na
        row.append(nr_score)  # nr (all-Irr forces the whole table)
        out[(ti, ci)] = row
    return out


def all_max_marginals(
    problem: ColumnMappingProblem,
    potentials: Optional[Dict[Tuple[int, int], List[float]]] = None,
) -> Dict[Tuple[int, int], List[float]]:
    """Max-marginals for every column of every table."""
    out: Dict[Tuple[int, int], List[float]] = {}
    for ti in range(len(problem.tables)):
        out.update(table_max_marginals(problem, ti, potentials))
    return out


def all_distributions(
    problem: ColumnMappingProblem,
) -> Dict[Tuple[int, int], List[float]]:
    """Pr(l | tc) for every column (softmaxed max-marginals)."""
    return column_distributions(problem, all_max_marginals(problem))
