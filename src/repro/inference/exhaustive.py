"""Brute-force exact inference — the test oracle.

Enumerates every labeling of every column and maximizes Eq. 9 exactly.
Exponential, so only usable on tiny problems; the unit tests compare every
approximate algorithm against this on small instances.
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Optional, Tuple

from ..core.model import ColumnMappingProblem
from .base import MappingResult

__all__ = ["exhaustive_inference"]


def exhaustive_inference(
    problem: ColumnMappingProblem,
    confident: Optional[Mapping[Tuple[int, int], bool]] = None,
    max_columns: int = 10,
) -> MappingResult:
    """Exact maximization of Eq. 9 by enumeration.

    Raises ``ValueError`` beyond ``max_columns`` total columns — the label
    space grows as ``(q+2)^n``.
    """
    columns = list(problem.columns())
    if len(columns) > max_columns:
        raise ValueError(
            f"{len(columns)} columns is too many for exhaustive inference"
        )
    label_range = list(problem.labels.all_labels())

    best_y: Optional[Dict[Tuple[int, int], int]] = None
    best_score = float("-inf")
    for assignment in itertools.product(label_range, repeat=len(columns)):
        y = dict(zip(columns, assignment))
        score = problem.score(y, confident)
        if score > best_score:
            best_score = score
            best_y = y

    if best_y is None:  # every labeling violated constraints: all-nr is safe
        best_y = problem.all_nr_labeling()
    return MappingResult(problem=problem, labels=best_y, algorithm="exhaustive")
