"""Shared pairwise-energy view of the problem for edge-centric algorithms.

α-expansion, loopy BP and TRW-S (Section 4.3 / 5.3) all operate on a model
with only node and edge terms.  This module lowers the problem to that form:

* node energies ``E_i(l) = -θ(tc, l)``;
* cross-table edges: the potts-except-nr reward of Eq. 4 (gated by the
  independent-inference confidences), negated into an energy;
* the all-Irr constraint as the pairwise energy of Eq. 11 over every
  same-table column pair (``BIG`` when exactly one endpoint is nr);
* optionally the mutex constraint as a dissociative pairwise energy
  (``BIG`` when two same-table columns share a query label) — used by BP
  and TRW-S; α-expansion enforces mutex with the constrained cut instead.

must-match and min-match cannot be lowered to pairwise terms; they are
repaired post hoc (see :mod:`repro.inference.repair`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.model import ColumnMappingProblem
from .base import column_distributions, confident_map
from .max_marginals import all_max_marginals

__all__ = ["BIG", "PairwiseTerm", "PairwiseModel", "build_pairwise_model"]

#: Finite stand-in for the constraints' -inf; dominates any real potential.
BIG = 1.0e7


@dataclass(frozen=True)
class PairwiseTerm:
    """One pairwise energy term between nodes ``a`` and ``b``.

    ``kind``: 'potts' (cross-table reward, carries ``weight``), 'allirr'
    (Eq. 11), or 'mutex' (same-query-label exclusion).
    """

    a: int
    b: int
    kind: str
    weight: float = 0.0


class PairwiseModel:
    """Node/edge energy model over dense node ids."""

    def __init__(
        self,
        problem: ColumnMappingProblem,
        include_mutex_edges: bool,
    ) -> None:
        self.problem = problem
        self.labels = problem.labels
        self.nodes: List[Tuple[int, int]] = list(problem.columns())
        self.node_id: Dict[Tuple[int, int], int] = {
            tc: i for i, tc in enumerate(self.nodes)
        }
        self.unary: List[List[float]] = [
            [-problem.node_potentials[tc][l] for l in self.labels.all_labels()]
            for tc in self.nodes
        ]

        mm = all_max_marginals(problem)
        self.distributions = column_distributions(problem, mm)
        confident = confident_map(problem, self.distributions)

        self.terms: List[PairwiseTerm] = []
        for edge in problem.edges:
            weight = problem.params.we * (
                (edge.nsim_ab if confident.get(edge.b, False) else 0.0)
                + (edge.nsim_ba if confident.get(edge.a, False) else 0.0)
            )
            if weight > 0:
                self.terms.append(
                    PairwiseTerm(
                        self.node_id[edge.a], self.node_id[edge.b], "potts", weight
                    )
                )
        for ti in range(len(problem.tables)):
            cols = problem.table_columns(ti)
            for i in range(len(cols)):
                for j in range(i + 1, len(cols)):
                    a, b = self.node_id[cols[i]], self.node_id[cols[j]]
                    self.terms.append(PairwiseTerm(a, b, "allirr"))
                    if include_mutex_edges:
                        self.terms.append(PairwiseTerm(a, b, "mutex"))

        self.neighbors: List[List[Tuple[int, PairwiseTerm]]] = [
            [] for _ in self.nodes
        ]
        for term in self.terms:
            self.neighbors[term.a].append((term.b, term))
            self.neighbors[term.b].append((term.a, term))

    # -- energies ----------------------------------------------------------------

    def pair_energy(self, term: PairwiseTerm, la: int, lb: int) -> float:
        """E(l_a, l_b) of one pairwise term."""
        nr = self.labels.nr
        if term.kind == "potts":
            return -term.weight if (la == lb and la != nr) else 0.0
        if term.kind == "allirr":
            return BIG if (la == nr) != (lb == nr) else 0.0
        if term.kind == "mutex":
            return BIG if (la == lb and self.labels.is_query(la)) else 0.0
        raise ValueError(term.kind)

    def energy(self, labeling: Sequence[int]) -> float:
        """Total energy of a dense labeling (lower = better)."""
        total = sum(self.unary[i][l] for i, l in enumerate(labeling))
        for term in self.terms:
            total += self.pair_energy(term, labeling[term.a], labeling[term.b])
        return total

    def to_assignment(self, labeling: Sequence[int]) -> Dict[Tuple[int, int], int]:
        """Dense labeling -> (table, col) assignment map."""
        return {tc: labeling[i] for i, tc in enumerate(self.nodes)}


def build_pairwise_model(
    problem: ColumnMappingProblem, include_mutex_edges: bool
) -> PairwiseModel:
    """Lower the problem to a pairwise energy model."""
    return PairwiseModel(problem, include_mutex_edges)
