"""The inference-algorithm registry.

Inference algorithms register themselves at definition time with
:func:`register_algorithm`, attaching capability metadata (is the solver
exact or approximate?  does it reason collectively across tables?) that the
service layer surfaces in explain payloads and the CLI uses to build its
option lists.  The registry implements the ``Mapping`` protocol so the
legacy ``ALGORITHMS`` dict idiom (``ALGORITHMS[name]``, ``name in
ALGORITHMS``, ``ALGORITHMS.items()``) keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..core.model import ColumnMappingProblem
    from .base import MappingResult

#: An inference algorithm maps a column-mapping problem to a labeling.
InferenceFn = Callable[["ColumnMappingProblem"], "MappingResult"]

__all__ = [
    "AlgorithmInfo",
    "InferenceRegistry",
    "UnknownAlgorithmError",
    "DEFAULT_REGISTRY",
    "register_algorithm",
]


class UnknownAlgorithmError(KeyError):
    """Raised when a requested inference algorithm is not registered."""

    def __init__(self, name: str, options: List[str]) -> None:
        self.name = name
        self.options = options
        super().__init__(
            f"unknown inference algorithm {name!r}; options: {sorted(options)}"
        )

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registered algorithm plus its capability metadata."""

    name: str
    fn: InferenceFn
    #: True when the solver is guaranteed to find the global optimum of
    #: Eq. 9 (none of the collective solvers is; the exhaustive oracle is).
    exact: bool = False
    #: True when the algorithm exchanges information across tables
    #: (Section 3.3's collective signals).
    collective: bool = True
    description: str = ""
    #: Relative running-cost hint used by :meth:`InferenceRegistry.fastest`
    #: to pick a degraded-mode fallback (lower = cheaper; ties among
    #: equally cheap algorithms break on ``collective`` then name).
    cost_hint: float = 1.0

    @property
    def capability(self) -> str:
        """``"exact"`` or ``"approximate"`` — the headline guarantee."""
        return "exact" if self.exact else "approximate"


class InferenceRegistry(Mapping[str, InferenceFn]):
    """Name -> algorithm registry with decorator-based registration.

    Reads like a plain ``Dict[str, InferenceFn]`` (the shape of the old
    ``ALGORITHMS`` module constant) while also exposing per-algorithm
    metadata via :meth:`info`.
    """

    def __init__(self) -> None:
        self._algorithms: Dict[str, AlgorithmInfo] = {}

    # -- registration -----------------------------------------------------

    def register(
        self,
        name: str,
        *,
        exact: bool = False,
        collective: bool = True,
        description: str = "",
        cost_hint: float = 1.0,
        replace: bool = False,
    ) -> Callable[[InferenceFn], InferenceFn]:
        """Decorator: register the wrapped function under ``name``."""

        def decorator(fn: InferenceFn) -> InferenceFn:
            self.add(
                name,
                fn,
                exact=exact,
                collective=collective,
                description=description,
                cost_hint=cost_hint,
                replace=replace,
            )
            return fn

        return decorator

    def add(
        self,
        name: str,
        fn: InferenceFn,
        *,
        exact: bool = False,
        collective: bool = True,
        description: str = "",
        cost_hint: float = 1.0,
        replace: bool = False,
    ) -> AlgorithmInfo:
        """Imperative registration (the decorator's workhorse)."""
        if not name:
            raise ValueError("algorithm name must be non-empty")
        if name in self._algorithms and not replace:
            raise ValueError(
                f"algorithm {name!r} is already registered; "
                "pass replace=True to override"
            )
        info = AlgorithmInfo(
            name=name,
            fn=fn,
            exact=exact,
            collective=collective,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
            cost_hint=cost_hint,
        )
        self._algorithms[name] = info
        return info

    def unregister(self, name: str) -> None:
        """Remove an algorithm (primarily for tests)."""
        if name not in self._algorithms:
            raise UnknownAlgorithmError(name, list(self._algorithms))
        del self._algorithms[name]

    # -- lookup -----------------------------------------------------------

    def info(self, name: str) -> AlgorithmInfo:
        """Full metadata record for one algorithm."""
        try:
            return self._algorithms[name]
        except KeyError:
            raise UnknownAlgorithmError(name, list(self._algorithms)) from None

    def get_algorithm(self, name: str) -> InferenceFn:
        """The callable registered under ``name``."""
        return self.info(name).fn

    def names(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._algorithms)

    def fastest(self) -> str:
        """Name of the cheapest registered algorithm.

        The execution engine's degraded mode falls back to this solver
        when a query's deadline expires before column mapping (see
        DESIGN.md, "Execution engine").  Ordering: lowest ``cost_hint``
        first, non-collective before collective (per-table matching skips
        the cross-table message passing, Table 2's cheap column), name as
        the deterministic tie-break.
        """
        if not self._algorithms:
            raise UnknownAlgorithmError("<fastest>", [])
        return min(
            self._algorithms.values(),
            key=lambda info: (info.cost_hint, info.collective, info.name),
        ).name

    def infos(self) -> List[AlgorithmInfo]:
        """All metadata records, sorted by name."""
        return [self._algorithms[name] for name in self.names()]

    # -- Mapping protocol (legacy ``ALGORITHMS`` dict idiom) --------------

    def __getitem__(self, name: str) -> InferenceFn:
        return self.get_algorithm(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._algorithms)

    def __len__(self) -> int:
        return len(self._algorithms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InferenceRegistry({self.names()})"


#: The process-wide registry the stock algorithms register into.
DEFAULT_REGISTRY = InferenceRegistry()


def register_algorithm(
    name: str,
    *,
    exact: bool = False,
    collective: bool = True,
    description: str = "",
    cost_hint: float = 1.0,
    replace: bool = False,
) -> Callable[[InferenceFn], InferenceFn]:
    """Decorator registering into :data:`DEFAULT_REGISTRY`."""
    return DEFAULT_REGISTRY.register(
        name,
        exact=exact,
        collective=collective,
        description=description,
        cost_hint=cost_hint,
        replace=replace,
    )
