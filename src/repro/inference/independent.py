"""Table-independent inference (Section 4.1).

With edge potentials dropped, Eq. 9 decouples per table, and the optimum for
one table reduces to a generalized maximum bipartite matching: columns on
the left; labels ``1..q`` plus ``na`` on the right; label capacities one
except ``na`` with ``n_t - m`` (enforcing min-match); a large constant
``M_1`` on edges into label 1 (enforcing must-match).  The relevant-branch
optimum is compared with the all-``nr`` score and the better one wins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.model import ColumnMappingProblem
from ..flow.bipartite import BipartiteMatcher
from .base import MappingResult
from .registry import register_algorithm

__all__ = ["solve_table", "independent_inference", "M1_BONUS"]

#: The large constant added to label-1 edges; dominates any real potential.
M1_BONUS = 1e6


def _build_matcher(
    problem: ColumnMappingProblem,
    ti: int,
    potentials: Optional[Dict[Tuple[int, int], List[float]]] = None,
    enforce_must_match: bool = True,
    enforce_min_match: bool = True,
) -> BipartiteMatcher:
    """The bipartite reduction for one table.

    ``potentials`` overrides the problem's node potentials (the
    table-centric algorithm re-solves with message-boosted potentials).
    """
    table = problem.tables[ti]
    labels = problem.labels
    q = labels.q
    nt = table.num_cols
    theta = potentials if potentials is not None else problem.node_potentials

    weights: List[List[float]] = []
    for ci in range(nt):
        row = [theta[(ti, ci)][l] for l in range(q)]
        if enforce_must_match:
            row[0] += M1_BONUS
        row.append(theta[(ti, ci)][labels.na])  # na column
        weights.append(row)

    na_cap = max(0, nt - problem.min_match(ti)) if enforce_min_match else nt
    right_caps = [1] * q + [na_cap]
    return BipartiteMatcher(weights, [1] * nt, right_caps)


def solve_table(
    problem: ColumnMappingProblem,
    ti: int,
    potentials: Optional[Dict[Tuple[int, int], List[float]]] = None,
) -> Dict[Tuple[int, int], int]:
    """Optimal labeling of one table under all four constraints.

    Returns the per-column dense labels, choosing between the best relevant
    labeling (via matching) and the all-``nr`` labeling by score.
    """
    table = problem.tables[ti]
    labels = problem.labels
    q = labels.q
    nt = table.num_cols
    theta = potentials if potentials is not None else problem.node_potentials

    nr_score = sum(theta[(ti, ci)][labels.nr] for ci in range(nt))

    relevant_assignment: Optional[Dict[Tuple[int, int], int]] = None
    relevant_score = float("-inf")
    matcher = _build_matcher(problem, ti, potentials)
    result = matcher.solve()
    used_labels = {j for _i, j in result.pairs}
    if 0 in used_labels:  # must-match achievable
        relevant_score = result.total_weight - M1_BONUS
        relevant_assignment = {}
        for ci in range(nt):
            j = result.right_of(ci)
            relevant_assignment[(ti, ci)] = (
                labels.na if j is None or j == q  # unmatched or matched to na
                else j
            )

    if relevant_assignment is None or nr_score >= relevant_score:
        return {(ti, ci): labels.nr for ci in range(nt)}
    return relevant_assignment


@register_algorithm(
    "none",
    collective=False,
    description="per-table exact matching, no cross-table signals",
)
def independent_inference(problem: ColumnMappingProblem) -> MappingResult:
    """Solve every table independently (the "None" column of Table 2)."""
    assignment: Dict[Tuple[int, int], int] = {}
    for ti in range(len(problem.tables)):
        assignment.update(solve_table(problem, ti))
    from .max_marginals import table_max_marginals  # circular-safe local import
    from .base import column_distributions

    mm: Dict[Tuple[int, int], List[float]] = {}
    for ti in range(len(problem.tables)):
        mm.update(table_max_marginals(problem, ti))
    return MappingResult(
        problem=problem,
        labels=assignment,
        distributions=column_distributions(problem, mm),
        algorithm="independent",
    )
