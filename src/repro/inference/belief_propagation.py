"""Loopy max-product belief propagation (compared in Section 5.3).

Runs min-sum message passing on the pairwise lowering of the problem —
cross-table potts edges plus the all-Irr and mutex constraints as pairwise
energies (the paper reduced mutex to edge potentials for BP and TRW-S).
Messages are damped and normalized; decoding takes per-node belief argmins;
must-match/min-match violations are repaired post hoc.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.model import ColumnMappingProblem
from .base import MappingResult
from .pairwise import PairwiseModel, PairwiseTerm, build_pairwise_model
from .registry import register_algorithm
from .repair import repair_assignment

__all__ = ["belief_propagation_inference"]


def _min_sum_message(
    model: PairwiseModel,
    term: PairwiseTerm,
    from_node: int,
    incoming: List[float],
) -> List[float]:
    """m_{i->j}(x_j) = min_{x_i} (h_i(x_i) + E_ij(x_i, x_j))."""
    L = model.labels.size
    out = []
    for lj in range(L):
        best = float("inf")
        for li in range(L):
            e = (
                model.pair_energy(term, li, lj)
                if from_node == term.a
                else model.pair_energy(term, lj, li)
            )
            v = incoming[li] + e
            if v < best:
                best = v
        out.append(best)
    floor = min(out)
    return [v - floor for v in out]


@register_algorithm(
    "bp",
    description="loopy min-sum belief propagation with damping",
)
def belief_propagation_inference(
    problem: ColumnMappingProblem,
    max_iterations: int = 30,
    damping: float = 0.5,
    tolerance: float = 1e-4,
) -> MappingResult:
    """Run damped loopy BP and decode."""
    model = build_pairwise_model(problem, include_mutex_edges=True)
    L = model.labels.size
    n = len(model.nodes)

    # messages[(term_idx, direction)] with direction 0 = a->b, 1 = b->a.
    messages: Dict[Tuple[int, int], List[float]] = {}
    for t_idx in range(len(model.terms)):
        messages[(t_idx, 0)] = [0.0] * L
        messages[(t_idx, 1)] = [0.0] * L

    incident: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for t_idx, term in enumerate(model.terms):
        incident[term.a].append((t_idx, 1))  # message b->a arrives at a
        incident[term.b].append((t_idx, 0))  # message a->b arrives at b

    for _ in range(max_iterations):
        max_delta = 0.0
        for t_idx, term in enumerate(model.terms):
            for direction, sender in ((0, term.a), (1, term.b)):
                h = list(model.unary[sender])
                for in_t, in_dir in incident[sender]:
                    if in_t == t_idx:
                        continue  # exclude the reverse message
                    msg = messages[(in_t, in_dir)]
                    for l in range(L):
                        h[l] += msg[l]
                new_msg = _min_sum_message(model, term, sender, h)
                old = messages[(t_idx, direction)]
                damped = [
                    damping * o + (1.0 - damping) * m
                    for o, m in zip(old, new_msg)
                ]
                max_delta = max(
                    max_delta, max(abs(a - b) for a, b in zip(old, damped))
                )
                messages[(t_idx, direction)] = damped
        if max_delta < tolerance:
            break

    labeling = []
    for i in range(n):
        belief = list(model.unary[i])
        for in_t, in_dir in incident[i]:
            msg = messages[(in_t, in_dir)]
            for l in range(L):
                belief[l] += msg[l]
        labeling.append(min(range(L), key=lambda l: belief[l]))

    assignment = repair_assignment(problem, model.to_assignment(labeling))
    return MappingResult(
        problem=problem,
        labels=assignment,
        distributions=model.distributions,
        algorithm="belief-propagation",
    )
