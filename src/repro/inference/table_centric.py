"""Table-centric collective inference (Section 4.2).

The paper's best algorithm.  Three stages:

1. per table, compute max-marginals ``µ_tc(l)`` (Fig. 3) and normalize to
   per-column distributions ``p_tc(l)``;
2. every column collects messages from its max-matching neighbors:
   ``msg(tc, l) = Σ_{t'c'} w_e · nsim(tc, t'c') · p_t'c'(l)`` — neighbors
   only speak when they are confident (Section 3.3's gating);
3. per table, re-run the Section 4.1 matching with node potentials boosted
   to ``max(msg(tc, l), θ(tc, l))``.

Edges influence table decisions only through stage 3's bounded boost, which
is what makes the algorithm robust to similar-but-irrelevant tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.model import ColumnMappingProblem
from .base import MappingResult, column_distributions, confident_map
from .independent import solve_table
from .max_marginals import all_max_marginals
from .registry import register_algorithm

__all__ = ["table_centric_inference"]


def _messages(
    problem: ColumnMappingProblem,
    distributions: Dict[Tuple[int, int], List[float]],
    confident: Dict[Tuple[int, int], bool],
) -> Dict[Tuple[int, int], List[float]]:
    """Stage 2: aggregate neighbor distributions along nsim edges."""
    labels = problem.labels
    we = problem.params.we
    msgs: Dict[Tuple[int, int], List[float]] = {
        tc: [0.0] * labels.size for tc in problem.columns()
    }
    for edge in problem.edges:
        dist_a = distributions.get(edge.a)
        dist_b = distributions.get(edge.b)
        # Messages flow only on query labels (Eq. 4 excludes nr; na carries
        # no rescue semantics and confident senders put little mass on it),
        # and only from confident senders.
        for l in labels.query_labels():
            if dist_b and confident.get(edge.b, False):
                msgs[edge.a][l] += we * edge.nsim_ab * dist_b[l]
            if dist_a and confident.get(edge.a, False):
                msgs[edge.b][l] += we * edge.nsim_ba * dist_a[l]
    return msgs


@register_algorithm(
    "table-centric",
    description="the paper's three-stage collective algorithm (Section 4.2)",
)
def table_centric_inference(problem: ColumnMappingProblem) -> MappingResult:
    """Run the three-stage table-centric algorithm."""
    # Stage 1: independent max-marginals -> distributions + confidence.
    mm = all_max_marginals(problem)
    distributions = column_distributions(problem, mm)
    confident = confident_map(problem, distributions)

    # Stage 2: messages.
    msgs = _messages(problem, distributions, confident)

    # Stage 3: re-solve each table with boosted potentials.
    boosted: Dict[Tuple[int, int], List[float]] = {}
    for tc in problem.columns():
        theta = problem.node_potentials[tc]
        boosted[tc] = [max(msgs[tc][l], theta[l]) for l in problem.labels.all_labels()]

    assignment: Dict[Tuple[int, int], int] = {}
    for ti in range(len(problem.tables)):
        assignment.update(solve_table(problem, ti, potentials=boosted))

    return MappingResult(
        problem=problem,
        labels=assignment,
        distributions=distributions,
        algorithm="table-centric",
    )
