"""Post-processing repair of table constraints (Section 4.3).

must-match and min-match cannot be expressed as pairwise energies, so the
edge-centric algorithms fix them after the fact: any table whose labeling
violates a constraint is re-labeled by the table-independent algorithm of
Section 4.1 ("we greedily fix its labels").  Mutex/all-Irr violations from
approximate decoding are repaired the same way.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.model import ColumnMappingProblem
from .independent import solve_table

__all__ = ["table_violates_constraints", "repair_assignment"]


def table_violates_constraints(
    problem: ColumnMappingProblem,
    assignment: Dict[Tuple[int, int], int],
    ti: int,
) -> bool:
    """Does table ``ti``'s labeling violate any of the four constraints?"""
    labels = problem.labels
    cols = problem.table_columns(ti)
    assigned = [assignment[tc] for tc in cols]
    n_nr = sum(1 for l in assigned if l == labels.nr)
    if n_nr not in (0, len(assigned)):
        return True  # all-Irr
    if n_nr == len(assigned):
        return False  # fully irrelevant: nothing else applies
    query_labels = [l for l in assigned if labels.is_query(l)]
    if len(set(query_labels)) != len(query_labels):
        return True  # mutex
    if 0 not in query_labels:
        return True  # must-match
    if len(query_labels) < problem.min_match(ti):
        return True  # min-match
    return False


def repair_assignment(
    problem: ColumnMappingProblem,
    assignment: Dict[Tuple[int, int], int],
) -> Dict[Tuple[int, int], int]:
    """Re-label every violating table with the Section 4.1 algorithm."""
    repaired = dict(assignment)
    for ti in range(len(problem.tables)):
        if table_violates_constraints(problem, repaired, ti):
            repaired.update(solve_table(problem, ti))
    return repaired
