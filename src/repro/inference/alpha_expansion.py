"""Constrained α-expansion (Section 4.3).

Standard α-expansion improves a labeling by repeatedly solving, for each
label α, a binary min-cut deciding which variables switch to α.  Two of the
paper's table constraints need special treatment:

* **all-Irr** lowers to the submodular pairwise energy of Eq. 11 and rides
  along in the move graph;
* **mutex** is *not* submodular as a pairwise term, so for α a query label
  the move is solved with the constrained min s-t cut of Fig. 4 — at most
  one column per table may sit on the switch side of the cut;
* **must-match/min-match** are repaired post hoc per Section 4.3.

Move graphs use the standard submodular binary-energy construction
(s-side = keep current label, t-side = switch to α).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.model import ColumnMappingProblem
from ..flow.constrained_cut import constrained_min_cut
from ..flow.network import FlowNetwork
from .base import MappingResult
from .pairwise import BIG, PairwiseModel, build_pairwise_model
from .registry import register_algorithm
from .repair import repair_assignment

__all__ = ["alpha_expansion_inference"]

_EPS = 1e-9


def _expansion_move(
    model: PairwiseModel,
    labeling: List[int],
    alpha: int,
    constrain_groups: bool,
) -> List[int]:
    """Best single α-expansion of ``labeling`` (may return it unchanged)."""
    n = len(model.nodes)
    # e0[i] / e1[i]: unary energy of keeping y_i vs switching to α.
    e0 = [model.unary[i][labeling[i]] for i in range(n)]
    e1 = [model.unary[i][alpha] for i in range(n)]
    pair_terms: List[Tuple[int, int, float]] = []  # (i, j, cap of i->j)

    for term in model.terms:
        if term.kind == "mutex":
            continue  # handled by the constrained cut / fixed-α unaries
        i, j = term.a, term.b
        yi, yj = labeling[i], labeling[j]
        a = model.pair_energy(term, yi, yj)  # keep, keep
        b = model.pair_energy(term, yi, alpha)  # keep, switch
        c = model.pair_energy(term, alpha, yj)  # switch, keep
        d = model.pair_energy(term, alpha, alpha)  # switch, switch
        # E(xi,xj) = a + (c-a)xi + (d-c)xj + (b+c-a-d)[xi=0, xj=1]
        e1[i] += c - a
        e1[j] += d - c
        e0[j] += 0.0
        cap = b + c - a - d
        if cap < -1e-6:
            raise AssertionError(
                f"non-submodular move term {term.kind} (cap={cap})"
            )
        if cap > _EPS:
            pair_terms.append((i, j, cap))

    # mutex with already-α columns: a query-α column pins its table — no
    # other column of that table may adopt α.
    if model.labels.is_query(alpha):
        tables_with_alpha = {
            model.nodes[i][0] for i in range(n) if labeling[i] == alpha
        }
        for i in range(n):
            if labeling[i] != alpha and model.nodes[i][0] in tables_with_alpha:
                e1[i] += BIG

    # Build the move graph: node ids shifted by 2 (0 = s, 1 = t).
    net = FlowNetwork(2 + n)
    s, t = 0, 1
    for i in range(n):
        if labeling[i] == alpha:
            # Already α: switching is a no-op; pin to the switch side so
            # pairwise terms see label α.
            net.add_edge(i + 2, t, BIG * 10)
            continue
        diff = e1[i] - e0[i]
        if diff > _EPS:
            net.add_edge(s, i + 2, diff)
        elif diff < -_EPS:
            net.add_edge(i + 2, t, -diff)
    for i, j, cap in pair_terms:
        net.add_edge(i + 2, j + 2, cap)

    if constrain_groups and model.labels.is_query(alpha):
        groups: Dict[int, List[int]] = {}
        for i in range(n):
            if labeling[i] == alpha:
                continue  # pinned nodes handled above
            groups.setdefault(model.nodes[i][0], []).append(i + 2)
        t_side, _ = constrained_min_cut(
            net, s, t, groups=[g for g in groups.values() if len(g) > 1]
        )
    else:
        _, t_side = net.min_cut(s, t)

    new_labeling = list(labeling)
    for i in range(n):
        if i + 2 in t_side:
            new_labeling[i] = alpha
    return new_labeling


@register_algorithm(
    "alpha-expansion",
    description="constrained graph-cut expansion moves (Section 4.1)",
)
def alpha_expansion_inference(
    problem: ColumnMappingProblem,
    max_rounds: int = 5,
    init: Optional[List[int]] = None,
) -> MappingResult:
    """Run constrained α-expansion to a local optimum, then repair."""
    model = build_pairwise_model(problem, include_mutex_edges=True)
    labels = problem.labels
    labeling = list(init) if init is not None else [labels.na] * len(model.nodes)
    energy = model.energy(labeling)

    for _ in range(max_rounds):
        improved = False
        for alpha in labels.all_labels():
            candidate = _expansion_move(model, labeling, alpha, constrain_groups=True)
            cand_energy = model.energy(candidate)
            if cand_energy < energy - 1e-9:
                labeling = candidate
                energy = cand_energy
                improved = True
        if not improved:
            break

    assignment = repair_assignment(problem, model.to_assignment(labeling))
    return MappingResult(
        problem=problem,
        labels=assignment,
        distributions=model.distributions,
        algorithm="alpha-expansion",
    )
