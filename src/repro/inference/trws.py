"""Sequential tree-reweighted message passing, TRW-S (compared in §5.3).

Implements Kolmogorov's sequential TRW with uniform edge appearance
probabilities: nodes are processed in a fixed order; a forward pass sends
messages along edges to later nodes, a backward pass the reverse, with the
per-node reparameterization weighted by ``γ_i = 1 / max(n_fwd(i),
n_bwd(i))``.  The pairwise structure is the same lowering BP uses (potts
cross-table edges + all-Irr + mutex pairwise).  Decoding takes per-node
argmins of the reparameterized beliefs on the final backward pass, followed
by the usual constraint repair.

On tree-structured instances with a single pass direction this computes
exact min-energy labelings, which the unit tests verify.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.model import ColumnMappingProblem
from .base import MappingResult
from .pairwise import PairwiseTerm, build_pairwise_model
from .registry import register_algorithm
from .repair import repair_assignment

__all__ = ["trws_inference"]


@register_algorithm(
    "trws",
    description="sequential tree-reweighted message passing",
)
def trws_inference(
    problem: ColumnMappingProblem,
    max_iterations: int = 30,
    tolerance: float = 1e-4,
) -> MappingResult:
    """Run sequential TRW message passing and decode."""
    model = build_pairwise_model(problem, include_mutex_edges=True)
    L = model.labels.size
    n = len(model.nodes)

    # Edge direction follows node order: term (a, b) is "forward" from
    # min(a,b) to max(a,b).
    fwd_count = [0] * n
    bwd_count = [0] * n
    for term in model.terms:
        lo, hi = min(term.a, term.b), max(term.a, term.b)
        fwd_count[lo] += 1
        bwd_count[hi] += 1
    gamma = [
        1.0 / max(1, max(fwd_count[i], bwd_count[i])) for i in range(n)
    ]

    # messages[(t_idx, dir)]: dir 0 = a->b, 1 = b->a.
    messages: Dict[Tuple[int, int], List[float]] = {
        (t, d): [0.0] * L for t in range(len(model.terms)) for d in (0, 1)
    }
    incident: List[List[Tuple[int, int, PairwiseTerm]]] = [[] for _ in range(n)]
    for t_idx, term in enumerate(model.terms):
        incident[term.a].append((t_idx, 1, term))  # b->a arrives at a
        incident[term.b].append((t_idx, 0, term))  # a->b arrives at b

    def belief(i: int) -> List[float]:
        out = list(model.unary[i])
        for t_idx, d, _term in incident[i]:
            msg = messages[(t_idx, d)]
            for l in range(L):
                out[l] += msg[l]
        return out

    def send(i: int, t_idx: int, term: PairwiseTerm) -> float:
        """Update the message from i along term; returns max change."""
        b = belief(i)
        if i == term.a:
            reverse = messages[(t_idx, 1)]
            out_dir = 0
        else:
            reverse = messages[(t_idx, 0)]
            out_dir = 1
        g = gamma[i]
        new_msg = []
        for lj in range(L):
            best = float("inf")
            for li in range(L):
                e = (
                    model.pair_energy(term, li, lj)
                    if i == term.a
                    else model.pair_energy(term, lj, li)
                )
                v = g * b[li] - reverse[li] + e
                if v < best:
                    best = v
            new_msg.append(best)
        floor = min(new_msg)
        new_msg = [v - floor for v in new_msg]
        old = messages[(t_idx, out_dir)]
        delta = max(abs(a - c) for a, c in zip(old, new_msg))
        messages[(t_idx, out_dir)] = new_msg
        return delta

    labeling = [0] * n
    for _ in range(max_iterations):
        max_delta = 0.0
        # Forward pass: messages to later nodes.
        for i in range(n):
            for t_idx, _d, term in incident[i]:
                other = term.b if i == term.a else term.a
                if other > i:
                    max_delta = max(max_delta, send(i, t_idx, term))
        # Backward pass: messages to earlier nodes, decoding as we go.
        for i in range(n - 1, -1, -1):
            b = belief(i)
            labeling[i] = min(range(L), key=lambda l: b[l])
            for t_idx, _d, term in incident[i]:
                other = term.b if i == term.a else term.a
                if other < i:
                    max_delta = max(max_delta, send(i, t_idx, term))
        if max_delta < tolerance:
            break

    assignment = repair_assignment(problem, model.to_assignment(labeling))
    return MappingResult(
        problem=problem,
        labels=assignment,
        distributions=model.distributions,
        algorithm="trws",
    )
