"""Thread-safe LRU cache with hit/miss accounting.

Backs both service caches: the query-result cache (full pipeline outputs
keyed on normalized query text) and the probe cache (candidate-retrieval
outputs).  Counters feed ``WWTService.stats()``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "LRUCache"]

_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging/CLI output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Bounded least-recently-used map; capacity 0 disables it entirely."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @property
    def enabled(self) -> bool:
        """False when capacity is 0 (every lookup misses, puts drop)."""
        return self.capacity > 0

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)``; a hit refreshes the key's recency."""
        with self._lock:
            value = self._data.get(key, _MISS) if self.enabled else _MISS
            if value is _MISS:
                self._misses += 1
                return False, None
            self._data.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh a key, evicting the LRU entry when full."""
        if not self.enabled:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                capacity=self.capacity,
            )
