"""Thread-safe LRU cache with hit/miss accounting.

Backs both service caches: the query-result cache (full pipeline outputs
keyed on normalized query text) and the probe cache (candidate-retrieval
outputs).  Counters feed ``WWTService.stats()``.

One eviction/locking implementation lives in the codebase —
:class:`~repro.core.features.BoundedCache`; :class:`LRUCache` is the
service-layer adapter over it, keeping this layer's historical API
(``get`` returning ``(hit, value)``, ``CacheStats`` snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from ..core.features import BoundedCache

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging/CLI output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Bounded least-recently-used map; capacity 0 disables it entirely."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._cache = BoundedCache(capacity)

    @property
    def enabled(self) -> bool:
        """False when capacity is 0 (every lookup misses, puts drop)."""
        return self.capacity > 0

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)``; a hit refreshes the key's recency."""
        return self._cache.lookup(key)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh a key, evicting the LRU entry when full."""
        self._cache.put(key, value)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._cache.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the counters."""
        snapshot = self._cache.stats()
        return CacheStats(
            hits=snapshot["hits"],
            misses=snapshot["misses"],
            size=snapshot["size"],
            capacity=self.capacity,
        )
