"""Service request/response types.

``QueryRequest`` is what callers hand :class:`~repro.service.WWTService`;
``QueryResponse`` is what they get back — a page of consolidated answer
rows plus per-stage timing, cache provenance, and (on request) an explain
payload describing every decision the pipeline made.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..faults.health import Coverage

from ..consolidate.merge import AnswerRow
from ..exec.context import Span
from ..pipeline.wwt import QueryTiming, WWTAnswer
from ..query.model import Query
from ..text.tokenize import tokenize

__all__ = ["QueryRequest", "QueryResponse", "normalized_query_key", "build_explain"]


def normalized_query_key(query: Query) -> str:
    """Canonical cache key: analyzer-normalized column keyword sets.

    Two surface forms that tokenize identically (case, punctuation,
    whitespace) share one cache entry — ``"Country | Currency"`` and
    ``"country|currency"`` are the same query to the engine.
    """
    return " | ".join(
        " ".join(tokenize(column)) for column in query.columns
    )


@dataclass(frozen=True)
class QueryRequest:
    """One query plus its serving options."""

    query: Query
    #: 1-based page of consolidated answer rows to return.
    page: int = 1
    #: Rows per page; ``None`` uses the service config's ``page_size``.
    page_size: Optional[int] = None
    #: Attach the explain payload (probe/mapping decisions) to the response.
    explain: bool = False
    #: Allow this request to be served from (and stored into) the caches.
    use_cache: bool = True
    #: Per-request inference override; ``None`` uses the config's choice.
    inference: Optional[str] = None
    #: Per-request wall-clock budget in milliseconds, overriding the
    #: config's ``deadline_ms`` — the serving layer's SLO knob.  The
    #: execution engine sheds work once it expires (see DESIGN.md,
    #: "Execution engine"); ``None`` falls back to the config.
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.page < 1:
            raise ValueError("page is 1-based and must be >= 1")
        if self.page_size is not None and self.page_size < 1:
            raise ValueError("page_size must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 (None uses the config)")

    @classmethod
    def parse(cls, text: str, **options: Any) -> QueryRequest:
        """Build a request from the paper's pipe syntax."""
        return cls(query=Query.parse(text), **options)

    @classmethod
    def of(cls, query: Union[QueryRequest, Query, str]) -> QueryRequest:
        """Coerce a request, a :class:`Query`, or raw text to a request."""
        if isinstance(query, QueryRequest):
            return query
        if isinstance(query, Query):
            return cls(query=query)
        return cls.parse(query)


@dataclass
class QueryResponse:
    """One answered query: a page of rows plus serving metadata."""

    query: Query
    header: List[str]
    rows: List[AnswerRow]
    page: int
    page_size: int
    total_rows: int
    timing: QueryTiming
    algorithm: str
    cache_hit: bool = False
    #: Wall-clock seconds this request took to serve (cache hits included —
    #: ``timing`` always describes the original computation).
    served_in: float = 0.0
    #: True when a deadline forced the pipeline to skip stages or fall
    #: back to a cheaper inference — the rows are a partial answer.
    degraded: bool = False
    #: Execution stages whose results this response reflects, in order
    #: (probe stages replayed from the probe cache included; stages a
    #: deadline skipped absent — compare against ``trace`` statuses).
    stages_ran: List[str] = field(default_factory=list)
    #: Root of the execution span tree for this answer (the original
    #: computation's spans on a cache hit); ``None`` for legacy paths.
    trace: Optional[Span] = None
    explain: Optional[Dict[str, Any]] = None
    #: Why the answer is degraded (``"deadline"``, ``"shard_failure"``),
    #: in first-occurrence order; empty iff ``degraded`` is False.
    degraded_reasons: List[str] = field(default_factory=list)
    #: Worst shard coverage the query's probes saw; ``None`` when the
    #: corpus has no failure domains or every shard answered.
    coverage: Optional[Coverage] = None

    @property
    def num_pages(self) -> int:
        """Total pages at this page size (at least 1).

        Defensive against direct construction with a non-positive
        ``page_size`` (requests validate theirs): anything below 1 is
        treated as one single page rather than dividing by zero.
        """
        if self.page_size < 1:
            return 1
        return max(1, math.ceil(self.total_rows / self.page_size))

    @property
    def has_next_page(self) -> bool:
        """Are there rows beyond this page?"""
        return self.page < self.num_pages

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for CLI/serving output."""
        return {
            "query": str(self.query),
            "header": list(self.header),
            "rows": [
                {"cells": list(row.cells), "support": row.support,
                 "relevance": row.relevance}
                for row in self.rows
            ],
            "page": self.page,
            "page_size": self.page_size,
            "total_rows": self.total_rows,
            "num_pages": self.num_pages,
            "algorithm": self.algorithm,
            "cache_hit": self.cache_hit,
            "served_in": self.served_in,
            "degraded": self.degraded,
            "degraded_reasons": list(self.degraded_reasons),
            "coverage": (
                self.coverage.to_dict() if self.coverage is not None else None
            ),
            "stages_ran": list(self.stages_ran),
            "timing": self.timing.as_dict(),
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "explain": self.explain,
        }


def build_explain(answer: WWTAnswer) -> Dict[str, Any]:
    """Assemble the explain payload from a full pipeline artifact."""
    mapping = answer.mapping
    relevant = []
    for ti in mapping.relevant_tables():
        table = answer.problem.tables[ti]
        relevant.append({
            "table_id": table.table_id,
            "relevance": mapping.table_relevance_score(ti),
            "column_mapping": {
                ci: qc for ci, qc in sorted(mapping.table_mapping(ti).items())
            },
        })
    return {
        "algorithm": mapping.algorithm,
        "num_candidates": answer.probe.num_candidates,
        "stage1_ids": list(answer.probe.stage1_ids),
        "stage2_ids": list(answer.probe.stage2_ids),
        "used_second_stage": answer.probe.used_second_stage,
        "seed_table_ids": list(answer.probe.seed_table_ids),
        "num_columns": answer.problem.num_columns,
        "num_edges": len(answer.problem.edges),
        "relevant_tables": relevant,
    }
