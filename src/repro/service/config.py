"""The unified engine configuration.

Before the service layer, engine behaviour was configured in four places:
``ModelParams`` (graphical-model weights), ``ProbeConfig`` (two-stage probe
tunables), a bare inference-name string, and ad-hoc keyword arguments.
:class:`EngineConfig` folds them into one frozen value plus the serving
knobs (cache sizes, batch concurrency, page size), and round-trips through
plain dicts so the CLI and experiment harness can load configurations from
JSON files.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, TypeVar

from ..core.params import ModelParams
from ..inference.registry import DEFAULT_REGISTRY
from ..pipeline.probe import ProbeConfig

__all__ = ["EngineConfig"]

_D = TypeVar("_D")


def _from_mapping(
    cls: Callable[..., _D], data: Mapping[str, Any], where: str
) -> _D:
    """Build a dataclass from a mapping, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {where} keys: {unknown}; known: {sorted(known)}")
    return cls(**dict(data))


@dataclass(frozen=True)
class EngineConfig:
    """Everything a :class:`~repro.service.WWTService` needs, in one value.

    ``params`` and ``probe`` carry the paper's tunables; the rest are
    serving knobs.  A cache size of 0 disables that cache.  Round-trips
    through plain dicts, so a service is configurable from one JSON file::

        config = EngineConfig(inference="bp", cache_size=512)
        assert EngineConfig.from_dict(config.to_dict()) == config
        service_cfg = EngineConfig.from_dict(
            {"index_path": "corpus-dir", "auto_compact_threshold": 1000}
        )
    """

    params: ModelParams = field(default_factory=ModelParams)
    probe: ProbeConfig = field(default_factory=ProbeConfig)
    #: Registered inference algorithm used for column mapping.
    inference: str = "table-centric"
    #: LRU capacity of the query-result cache (full pipeline outputs).
    cache_size: int = 256
    #: LRU capacity of the probe cache (candidate-retrieval outputs).
    probe_cache_size: int = 128
    #: LRU capacity of the per-(query, table) feature cache shared between
    #: the probe's confidence pass and the full inference assembly (the
    #: hot-path memoization — see DESIGN.md, "Hot-path engine").
    feature_cache_size: int = 4096
    #: Thread-pool width for :meth:`WWTService.answer_batch`.
    max_workers: int = 4
    #: Default answer-row page size for :class:`QueryResponse` pagination.
    page_size: int = 25
    #: Shard count for corpora *built* on behalf of this config — the CLI's
    #: generate-then-serve path partitions with it (``None`` keeps the
    #: monolithic :class:`~repro.index.IndexedCorpus`; an int selects the
    #: hash-partitioned :class:`~repro.index.ShardedCorpus`).  A corpus
    #: object passed to :class:`WWTService` directly is served as-is.
    num_shards: Optional[int] = None
    #: Directory of a persisted corpus (``repro index build``);
    #: :class:`WWTService` loads it at construction when no corpus object
    #: is passed.
    index_path: Optional[str] = None
    #: Scatter-gather width for sharded probes (1 = serial scatter, which
    #: wins for small in-memory shards; raise it for large/disk shards).
    probe_workers: int = 1
    #: How a sharded corpus executes its scatter: ``"serial"`` (in the
    #: calling thread), ``"thread"`` (GIL-bound thread pool — the
    #: default), or ``"process"`` (persistent spawn workers, each holding
    #: its own mmap'd shard; needs ``index_path``/a persisted corpus).
    #: Monolithic corpora ignore it.  Rankings are bit-identical across
    #: all three modes (see DESIGN.md, "Process-parallel scatter-gather").
    parallel_mode: str = "thread"
    #: Journal depth at which :meth:`WWTService.add_tables` /
    #: :meth:`WWTService.delete_tables` trigger an automatic ``compact()``
    #: of the served corpus (``None`` = never; compact manually or via
    #: ``repro index compact``).
    auto_compact_threshold: Optional[int] = None
    #: Shard snapshot format for corpora saved or compacted on behalf of
    #: this config: ``"bin"`` (version-3 binary columnar, mmap'd + lazily
    #: loaded — the default) or ``"json"`` (the version-2 layout).  Both
    #: load transparently regardless of this setting.
    index_format: str = "bin"
    #: Per-query wall-clock budget in milliseconds (``None`` = unbounded).
    #: The execution engine checks it between stages: once exceeded, the
    #: remaining skippable stages are skipped and column mapping falls
    #: back to the fastest registered inference, so the response returns
    #: within budget plus one stage's own cost (see DESIGN.md,
    #: "Execution engine").
    deadline_ms: Optional[float] = None
    #: What to do when the deadline expires mid-plan: return a partial
    #: answer flagged ``degraded`` (True, the default) or raise
    #: :class:`~repro.exec.DeadlineExceeded` (False).
    degraded_ok: bool = True

    def __post_init__(self) -> None:
        if self.inference not in DEFAULT_REGISTRY:
            raise ValueError(
                f"unknown inference {self.inference!r}; "
                f"options: {DEFAULT_REGISTRY.names()}"
            )
        if (
            self.cache_size < 0
            or self.probe_cache_size < 0
            or self.feature_cache_size < 0
        ):
            raise ValueError("cache sizes must be >= 0 (0 disables the cache)")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.page_size < 1:
            raise ValueError("page_size must be >= 1")
        if self.num_shards is not None and self.num_shards < 1:
            raise ValueError("num_shards must be >= 1 (None for monolithic)")
        if self.probe_workers < 1:
            raise ValueError("probe_workers must be >= 1")
        if self.parallel_mode not in ("serial", "thread", "process"):
            raise ValueError(
                f"unknown parallel_mode {self.parallel_mode!r}; "
                "options: ['process', 'serial', 'thread']"
            )
        if self.index_format not in ("json", "bin"):
            raise ValueError(
                f"unknown index_format {self.index_format!r}; "
                "options: ['bin', 'json']"
            )
        if (
            self.auto_compact_threshold is not None
            and self.auto_compact_threshold < 1
        ):
            raise ValueError(
                "auto_compact_threshold must be >= 1 (None disables)"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                "deadline_ms must be > 0 (None disables the deadline)"
            )
        if self.index_path is not None and not isinstance(self.index_path, str):
            # Paths arrive as pathlib.Path from callers; freeze as str so
            # to_dict() stays JSON-safe and equality is well-defined.
            object.__setattr__(self, "index_path", str(self.index_path))

    # -- derived ----------------------------------------------------------

    @property
    def caching_enabled(self) -> bool:
        """Is the query-result cache on?"""
        return self.cache_size > 0

    def replace(self, **changes: Any) -> EngineConfig:
        """Copy with some fields replaced (re-validates)."""
        return dataclasses.replace(self, **changes)

    # -- dict round-trip --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "params": dataclasses.asdict(self.params),
            "probe": dataclasses.asdict(self.probe),
            "inference": self.inference,
            "cache_size": self.cache_size,
            "probe_cache_size": self.probe_cache_size,
            "feature_cache_size": self.feature_cache_size,
            "max_workers": self.max_workers,
            "page_size": self.page_size,
            "num_shards": self.num_shards,
            "index_path": self.index_path,
            "index_format": self.index_format,
            "probe_workers": self.probe_workers,
            "parallel_mode": self.parallel_mode,
            "auto_compact_threshold": self.auto_compact_threshold,
            "deadline_ms": self.deadline_ms,
            "degraded_ok": self.degraded_ok,
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> EngineConfig:
        """Build a config from a (possibly partial) plain dict.

        Missing keys take their defaults; unknown keys raise ``ValueError``
        so typos in config files fail loudly.
        """
        data = dict(data or {})
        kwargs: Dict[str, Any] = {}
        if "params" in data:
            raw = data.pop("params")
            kwargs["params"] = (
                raw if isinstance(raw, ModelParams)
                else _from_mapping(ModelParams, raw, "params")
            )
        if "probe" in data:
            raw = data.pop("probe")
            kwargs["probe"] = (
                raw if isinstance(raw, ProbeConfig)
                else _from_mapping(ProbeConfig, raw, "probe")
            )
        top_known = {
            "inference", "cache_size", "probe_cache_size",
            "feature_cache_size", "max_workers", "page_size",
            "num_shards", "index_path", "index_format", "probe_workers",
            "parallel_mode", "auto_compact_threshold", "deadline_ms",
            "degraded_ok",
        }
        unknown = sorted(set(data) - top_known)
        if unknown:
            raise ValueError(
                f"unknown EngineConfig keys: {unknown}; "
                f"known: {sorted(top_known | {'params', 'probe'})}"
            )
        kwargs.update(data)
        return cls(**kwargs)
