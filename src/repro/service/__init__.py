"""The serving layer: one façade over the whole WWT pipeline.

``WWTService`` answers column-keyword queries against an indexed corpus
behind a request/response API with LRU result + probe caching, thread-pool
batch fan-out, pagination, and per-stage timing — the seam every scaling
change (sharded index, async probe, multi-backend) plugs into.  All
behaviour is configured by one frozen :class:`EngineConfig`.

Queries execute through the staged engine in :mod:`repro.exec`: the
config's ``deadline_ms`` budget and ``degraded_ok`` policy bound tail
latency (degraded answers skip the stage-2 probe and fall back to the
fastest inference), and :meth:`WWTService.stats` reports per-stage
latency aggregates (:class:`StageStats`) plus deadline-hit counts read
off the execution span trees.
"""

from ..exec.stats import StageStats
from ..inference.registry import (
    DEFAULT_REGISTRY,
    AlgorithmInfo,
    InferenceRegistry,
    UnknownAlgorithmError,
    register_algorithm,
)
from .cache import CacheStats, LRUCache
from .config import EngineConfig
from .facade import ServiceStats, WWTService
from .types import QueryRequest, QueryResponse, build_explain, normalized_query_key

#: The registry the service resolves ``EngineConfig.inference`` against.
REGISTRY = DEFAULT_REGISTRY

__all__ = [
    "AlgorithmInfo",
    "CacheStats",
    "EngineConfig",
    "InferenceRegistry",
    "LRUCache",
    "QueryRequest",
    "QueryResponse",
    "REGISTRY",
    "ServiceStats",
    "StageStats",
    "UnknownAlgorithmError",
    "WWTService",
    "build_explain",
    "normalized_query_key",
    "register_algorithm",
]
