"""``WWTService`` — the one public entry point for answering queries.

Owns the full query-time pipeline of Figure 2 (two-stage probe, collective
column mapping, consolidation, ranking) behind a request/response API with
result + probe caching, batch fan-out, and serving statistics.  The legacy
``WWTEngine`` is now a deprecated shim over this class.
"""

from __future__ import annotations

import asyncio
import random
import threading
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Union

from ..core.features import FeatureCache
from ..core.pmi import PmiScorer
from ..exec.context import (
    SPAN_CACHED,
    SPAN_OK,
    SPAN_SKIPPED,
    ExecutionContext,
    wall_clock,
)
from ..exec.plan import ExecutionPlan
from ..exec.query import MAPPING_STAGES, PARSE_STAGES, QUERY_STAGES
from ..exec.state import QueryState
from ..exec.stats import StageAccumulator, StageStats
from ..index.protocol import CorpusProtocol
from ..index.sharded import load_corpus
from ..inference.registry import DEFAULT_REGISTRY
from ..pipeline.wwt import QueryTiming, WWTAnswer
from ..query.model import Query
from ..tables.table import WebTable
from .cache import CacheStats, LRUCache
from .config import EngineConfig
from .types import QueryRequest, QueryResponse, build_explain, normalized_query_key

if TYPE_CHECKING:  # typing-only: journal is an optional runtime surface here
    from ..index.journal import JournaledCorpus

__all__ = ["ServiceStats", "WWTService"]

#: The three plan shapes the facade runs: the full pipeline, and the
#: parse/mapping halves used around a probe-cache hit's grafted spans.
_FULL_PLAN = ExecutionPlan(QUERY_STAGES, name="query")
_PARSE_PLAN = ExecutionPlan(PARSE_STAGES, name="query")
_MAPPING_PLAN = ExecutionPlan(MAPPING_STAGES, name="query")

#: Anything ``answer``/``answer_batch`` accepts as a query.
RequestLike = Union[QueryRequest, Query, str]


@dataclass(frozen=True)
class ServiceStats:
    """Serving counters since construction (or the last ``reset_stats``)."""

    queries: int
    batches: int
    result_cache: CacheStats
    probe_cache: CacheStats
    #: Per-(query, table) feature memoization counters (the hot-path
    #: cache shared between probe confidence and full inference).
    feature_cache: CacheStats
    #: Cumulative wall-clock seconds spent serving (cache hits included).
    total_time: float
    #: Per-stage latency aggregates (count/total/p50/p95 seconds) over
    #: every executed pipeline stage, keyed by stage name — the serving
    #: view of the execution engine's span tree.
    stages: Dict[str, StageStats] = field(default_factory=dict)
    #: Queries whose deadline expired at some between-stage check.
    deadline_hits: int = 0
    #: Queries answered degraded (stages skipped or fallback inference).
    degraded_answers: int = 0
    #: Degraded queries broken down by reason (``"deadline"``,
    #: ``"shard_failure"``); a query degraded for both counts under both.
    degraded_reasons: Dict[str, int] = field(default_factory=dict)
    #: Queries answered from a partial corpus (some shard unreachable) —
    #: the subset of ``degraded_answers`` carrying a coverage record.
    partial_answers: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging/CLI output."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "total_time": self.total_time,
            "result_cache": self.result_cache.to_dict(),
            "probe_cache": self.probe_cache.to_dict(),
            "feature_cache": self.feature_cache.to_dict(),
            "stages": {
                name: stats.to_dict()
                for name, stats in sorted(self.stages.items())
            },
            "deadline_hits": self.deadline_hits,
            "degraded_answers": self.degraded_answers,
            "degraded_reasons": dict(sorted(self.degraded_reasons.items())),
            "partial_answers": self.partial_answers,
        }


class WWTService:
    """Facade over an indexed corpus: configure once, answer many.

    ::

        service = WWTService(corpus, EngineConfig(inference="table-centric"))
        response = service.answer("country | currency")
        responses = service.answer_batch(["country | gdp", "dog breed"])
        print(service.stats().to_dict())

    ``corpus`` is any :class:`~repro.index.protocol.CorpusProtocol` backend
    (monolithic or sharded), or a path to a persisted corpus directory
    (``repro index build``).  With no corpus argument at all, the config's
    ``index_path`` is loaded — so a service is fully constructible from one
    JSON config file.

    A service over a persisted directory can also mutate it live — new
    tables are journaled durably and searchable immediately::

        service = WWTService("corpus-dir")
        service.add_tables(new_tables)      # caches invalidated
        service.compact()                   # fold journal into snapshots
    """

    def __init__(
        self,
        corpus: Union[CorpusProtocol, str, Path, None] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        if corpus is None:
            if not self.config.index_path:
                raise ValueError(
                    "WWTService needs a corpus object, a corpus path, or an "
                    "EngineConfig with index_path set"
                )
            corpus = self.config.index_path
        #: Whether this service created the corpus (and so owns its
        #: resources — see :meth:`close`).
        self._owns_corpus = isinstance(corpus, (str, Path))
        if isinstance(corpus, (str, Path)):
            corpus = load_corpus(
                corpus,
                probe_workers=self.config.probe_workers,
                parallel_mode=self.config.parallel_mode,
            )
        self.corpus = corpus
        self._warn_if_probe_workers_moot()
        self._result_cache = LRUCache(self.config.cache_size)
        self._probe_cache = LRUCache(self.config.probe_cache_size)
        #: Per-(query, table) feature memo shared by the probe's
        #: confidence pass and the full inference assembly, so stage-1
        #: features are computed once per query instead of twice.
        self._feature_cache = FeatureCache(self.config.feature_cache_size)
        #: One corpus-level PMI² scorer (bounded H/B containment-probe
        #: caches shared across every query and batch) — only when the
        #: configured weights actually consult PMI².
        self._pmi_scorer = (
            PmiScorer(self.corpus)
            if self.config.params.w3 != 0.0 else None
        )
        self._lock = threading.Lock()
        #: Single-flight map: cache key -> Future of the leading computation,
        #: so concurrent identical queries compute the pipeline once.
        self._inflight: Dict[Any, Future[WWTAnswer]] = {}
        self._queries = 0
        self._batches = 0
        self._total_time = 0.0
        #: Per-stage latency accumulators keyed by stage name, fed by
        #: every executed (non-cached) span.
        self._stage_stats: Dict[str, StageAccumulator] = {}
        self._deadline_hits = 0
        self._degraded_answers = 0
        self._degraded_reasons: Dict[str, int] = {}
        self._partial_answers = 0

    def _warn_if_probe_workers_moot(self) -> None:
        """Warn once, at construction, when ``probe_workers`` cannot help.

        The setting only fans out a *sharded* corpus's scatter, and only
        in a pooled parallel mode — for a monolithic corpus, a single
        shard, or ``parallel_mode="serial"`` it silently did nothing,
        which cost real debugging time.  Surfacing the mismatch where the
        config meets the corpus (here) beats validating it in
        ``EngineConfig``, which cannot know the corpus shape.
        """
        if self.config.probe_workers <= 1:
            return
        num_shards = getattr(self.corpus, "num_shards", None)
        if num_shards is None:
            warnings.warn(
                f"probe_workers={self.config.probe_workers} has no effect: "
                "the served corpus is monolithic (no shards to scatter "
                "over); build a sharded corpus or drop the setting",
                RuntimeWarning,
                stacklevel=3,
            )
        elif num_shards == 1:
            warnings.warn(
                f"probe_workers={self.config.probe_workers} has no effect: "
                "the sharded corpus has a single shard; rebuild with "
                "num_shards > 1 or drop the setting",
                RuntimeWarning,
                stacklevel=3,
            )
        elif self.config.parallel_mode == "serial":
            warnings.warn(
                f"probe_workers={self.config.probe_workers} has no effect "
                'with parallel_mode="serial"; use "thread" or "process" '
                "to fan the scatter out",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- the pipeline -----------------------------------------------------

    def _compute(
        self,
        query: Query,
        inference: str,
        deadline_ms: Optional[float] = None,
    ) -> WWTAnswer:
        """Run one query through the staged execution engine, uncached
        except for the probe-stage cache.

        The plan (``parse -> probe.* -> column_map -> consolidate ->
        rank``) runs under an :class:`~repro.exec.ExecutionContext`
        carrying the request's ``deadline_ms`` (falling back to the
        config's) and the config's ``degraded_ok``; the span tree it
        records is the source of both the response's
        :class:`~repro.pipeline.wwt.QueryTiming` and the service's
        per-stage aggregates.
        """
        ctx, state, hit, probe_key, entry = self._begin_compute(
            query, inference, deadline_ms
        )
        try:
            if hit:
                state.probe, probe_spans = entry
                _PARSE_PLAN.run(ctx, state)
                ctx.adopt(probe_spans)
                _MAPPING_PLAN.run(ctx, state)
            else:
                _FULL_PLAN.run(ctx, state)
        finally:
            self._record_execution(ctx, state)
        return self._finish_compute(ctx, state, hit, probe_key)

    async def _compute_async(
        self,
        query: Query,
        inference: str,
        deadline_ms: Optional[float] = None,
    ) -> WWTAnswer:
        """:meth:`_compute` on the running asyncio event loop.

        Identical setup, probe-cache policy, accounting, and answer —
        the only difference is that the plans run via
        :meth:`~repro.exec.plan.ExecutionPlan.run_async`, whose stage
        boundaries yield to the loop so concurrent queries interleave.
        """
        ctx, state, hit, probe_key, entry = self._begin_compute(
            query, inference, deadline_ms
        )
        try:
            if hit:
                state.probe, probe_spans = entry
                await _PARSE_PLAN.run_async(ctx, state)
                ctx.adopt(probe_spans)
                await _MAPPING_PLAN.run_async(ctx, state)
            else:
                await _FULL_PLAN.run_async(ctx, state)
        finally:
            self._record_execution(ctx, state)
        return self._finish_compute(ctx, state, hit, probe_key)

    def _begin_compute(
        self,
        query: Query,
        inference: str,
        deadline_ms: Optional[float],
    ) -> tuple:
        """Shared setup for :meth:`_compute` / :meth:`_compute_async`.

        Builds the execution context and query state and consults the
        probe cache.  Returns ``(ctx, state, hit, probe_key, entry)``
        where a hit's ``entry`` is the cached ``(probe, probe_spans)``
        pair — the probe cache stores the probe's spans next to the
        result so a hit still reports the probe's original cost
        (Figure 7's slices), not a misleading zero; the runner then
        executes without probe stages, grafting the cached spans in the
        probe's place.
        """
        algorithm = DEFAULT_REGISTRY.get_algorithm(inference)  # fail fast
        ctx = ExecutionContext(
            deadline_ms=(
                deadline_ms if deadline_ms is not None
                else self.config.deadline_ms
            ),
            degraded_ok=self.config.degraded_ok,
        )
        state = QueryState(
            query=query,
            corpus=self.corpus,
            probe_config=self.config.probe,
            params=self.config.params,
            inference=inference,
            algorithm=algorithm,
            rng=random.Random(self.config.probe.seed),
            feature_cache=self._feature_cache,
            pmi_scorer=self._pmi_scorer,
        )
        probe_key = normalized_query_key(query)
        hit, entry = self._probe_cache.get(probe_key)
        return ctx, state, hit, probe_key, entry

    def _finish_compute(
        self,
        ctx: ExecutionContext,
        state: QueryState,
        hit: bool,
        probe_key: Any,
    ) -> WWTAnswer:
        """Shared tail: probe-cache admission + answer assembly."""
        if not hit:
            # A truncated probe (skipped stages) is partial — caching it
            # would serve short candidate sets to unbounded queries.  A
            # probe computed over a partial corpus (shards unreachable)
            # is partial the same way: replaying it after the shards heal
            # would pin the outage's candidate set.  A probe that ran
            # every stage at full coverage is the query's real candidate
            # set and cacheable even when a *later* stage degraded.
            probe_spans = [
                s for s in ctx.root.children if s.name.startswith("probe.")
            ]
            if all(s.status != SPAN_SKIPPED for s in probe_spans) and (
                state.coverage is None or state.coverage.complete
            ):
                self._probe_cache.put(probe_key, (state.probe, probe_spans))

        return WWTAnswer(
            query=state.query,
            answer=state.answer,
            mapping=state.mapping,
            probe=state.probe,
            timing=QueryTiming.from_spans(ctx.root),
            problem=state.problem,
            spans=ctx.root,
            degraded=ctx.degraded,
            stages_ran=ctx.root.stage_names(),
            degraded_reasons=list(ctx.degraded_reasons),
            coverage=state.coverage,
        )

    def _record_execution(
        self, ctx: ExecutionContext, state: Optional[QueryState] = None
    ) -> None:
        """Fold one execution's spans into the per-stage aggregates."""
        with self._lock:
            for span in ctx.root.leaves():
                if span is ctx.root:
                    continue  # childless root (aborted before any stage)
                if span.status in (SPAN_CACHED, SPAN_SKIPPED):
                    continue  # not executed by this request
                # Degraded executions (e.g. column_map's cheap fallback)
                # aggregate under their own key — mixing them into the
                # normal-stage percentiles would misdescribe the
                # configured solver's latency.
                key = (
                    span.name if span.status == SPAN_OK
                    else f"{span.name}:{span.status}"
                )
                acc = self._stage_stats.get(key)
                if acc is None:
                    acc = self._stage_stats[key] = StageAccumulator()
                acc.add(span.duration)
            if ctx.deadline_hit:
                self._deadline_hits += 1
            if ctx.degraded:
                self._degraded_answers += 1
            for reason in ctx.degraded_reasons:
                self._degraded_reasons[reason] = (
                    self._degraded_reasons.get(reason, 0) + 1
                )
            if state is not None and state.coverage is not None:
                self._partial_answers += 1

    def _cached_answer(
        self,
        query: Query,
        name: str,
        use_cache: bool,
        deadline_ms: Optional[float] = None,
    ) -> tuple:
        """``(served_without_computing, WWTAnswer)`` for one query.

        The single shared path behind :meth:`answer` and
        :meth:`answer_full`: LRU result lookup, then single-flight
        collapsing so concurrent identical queries (a batch with repeats)
        compute the pipeline once — followers wait on the leader's future
        and count as served-from-cache.

        The result-cache key deliberately omits ``deadline_ms``: only
        non-degraded answers are stored, and those are deadline-invariant
        (bit-identical whatever the budget was).  Single-flight collapsing
        *does* key on the deadline, so a tightly budgeted request never
        adopts a degraded answer computed under someone else's SLO.
        """
        if not use_cache:
            return False, self._compute(query, name, deadline_ms)
        key = (normalized_query_key(query), name)
        hit, cached = self._result_cache.get(key)
        if hit:
            return True, cached
        flight_key = key + (deadline_ms,)
        with self._lock:
            future = self._inflight.get(flight_key)
            leader = future is None
            if leader:
                future = Future()
                self._inflight[flight_key] = future
        if not leader:
            return True, future.result()
        try:
            full = self._compute(query, name, deadline_ms)
            if not full.degraded:
                # Degraded answers are shaped by transient load — serving
                # them from cache would pin one request's bad luck.
                self._result_cache.put(key, full)
            future.set_result(full)
            return False, full
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(flight_key, None)

    async def _cached_answer_async(
        self,
        query: Query,
        name: str,
        use_cache: bool,
        deadline_ms: Optional[float] = None,
    ) -> tuple:
        """:meth:`_cached_answer` for the asyncio serving path.

        Same LRU lookup, same single-flight map (shared with the threaded
        path — a thread leader's future satisfies an async follower and
        vice versa), same admission policy.  Followers ``await`` the
        leader's future via :func:`asyncio.wrap_future` instead of
        blocking the loop.
        """
        if not use_cache:
            return False, await self._compute_async(query, name, deadline_ms)
        key = (normalized_query_key(query), name)
        hit, cached = self._result_cache.get(key)
        if hit:
            return True, cached
        flight_key = key + (deadline_ms,)
        with self._lock:
            future = self._inflight.get(flight_key)
            leader = future is None
            if leader:
                future = Future()
                self._inflight[flight_key] = future
        if not leader:
            return True, await asyncio.wrap_future(future)
        try:
            full = await self._compute_async(query, name, deadline_ms)
            if not full.degraded:
                self._result_cache.put(key, full)
            future.set_result(full)
            return False, full
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(flight_key, None)

    def answer_full(
        self,
        query: Union[Query, str],
        use_cache: bool = True,
        inference: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> WWTAnswer:
        """Answer one query, returning the full pipeline artifact.

        This is the power-user API (examples, notebooks, debugging) — it
        exposes the probe result, the mapping problem, and the labeling.
        Serving callers should prefer :meth:`answer`.  ``deadline_ms``
        overrides the config's budget for this call only.
        """
        if isinstance(query, str):
            query = Query.parse(query)
        name = inference if inference is not None else self.config.inference
        return self._cached_answer(query, name, use_cache, deadline_ms)[1]

    # -- the serving API --------------------------------------------------

    def answer(self, request: RequestLike) -> QueryResponse:
        """Answer one request, returning a paginated response."""
        request = QueryRequest.of(request)
        start = wall_clock()
        name = (
            request.inference if request.inference is not None
            else self.config.inference
        )
        cache_hit, full = self._cached_answer(
            request.query, name, request.use_cache, request.deadline_ms
        )
        return self._build_response(request, name, cache_hit, full, start)

    async def answer_async(self, request: RequestLike) -> QueryResponse:
        """:meth:`answer` as a coroutine for the asyncio serving mode.

        Returns a byte-identical response envelope to :meth:`answer` for
        the same request and corpus state — the pipeline stages run on
        the event loop with their boundaries as await points, which
        changes *when* the CPU work happens relative to other in-flight
        queries, never *what* it computes.
        """
        request = QueryRequest.of(request)
        start = wall_clock()
        name = (
            request.inference if request.inference is not None
            else self.config.inference
        )
        cache_hit, full = await self._cached_answer_async(
            request.query, name, request.use_cache, request.deadline_ms
        )
        return self._build_response(request, name, cache_hit, full, start)

    def _build_response(
        self,
        request: QueryRequest,
        name: str,
        cache_hit: bool,
        full: WWTAnswer,
        start: float,
    ) -> QueryResponse:
        """Shared response assembly for :meth:`answer` / :meth:`answer_async`."""
        page_size = (
            request.page_size if request.page_size is not None
            else self.config.page_size
        )
        lo = (request.page - 1) * page_size
        rows = full.answer.rows[lo: lo + page_size]
        served_in = wall_clock() - start
        with self._lock:
            self._queries += 1
            self._total_time += served_in

        return QueryResponse(
            query=request.query,
            header=full.answer.header(),
            rows=rows,
            page=request.page,
            page_size=page_size,
            total_rows=full.answer.num_rows,
            timing=full.timing,
            algorithm=name,  # registry name; explain carries the solver's own
            cache_hit=cache_hit,
            served_in=served_in,
            degraded=full.degraded,
            stages_ran=list(full.stages_ran),
            trace=full.spans,
            explain=build_explain(full) if request.explain else None,
            degraded_reasons=list(full.degraded_reasons),
            coverage=full.coverage,
        )

    def answer_batch(
        self,
        requests: Sequence[RequestLike],
        max_workers: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Answer many requests with thread-pool fan-out.

        Responses come back in input order.  Width defaults to the config's
        ``max_workers``; repeated (normalized) queries — within one batch
        or across calls — compute the pipeline once (LRU cache plus
        single-flight collapsing of concurrent duplicates), and each
        response reports its own cache provenance.
        """
        coerced = [QueryRequest.of(r) for r in requests]
        with self._lock:
            self._batches += 1
        if not coerced:
            return []
        width = max_workers if max_workers is not None else self.config.max_workers
        width = max(1, min(width, len(coerced)))
        if width == 1:
            return [self.answer(r) for r in coerced]
        with ThreadPoolExecutor(max_workers=width) as pool:
            return list(pool.map(self.answer, coerced))

    # -- live mutation -----------------------------------------------------

    def _mutable_corpus(self) -> JournaledCorpus:
        """The served corpus, if it supports journaled mutation.

        Corpora loaded from a persisted directory (``WWTService(path)`` or
        ``EngineConfig.index_path``) are
        :class:`~repro.index.journal.JournaledCorpus` instances and
        mutable; an in-memory corpus object passed in by the caller
        usually is not.
        """
        if not hasattr(self.corpus, "add_tables"):
            raise ValueError(
                "the served corpus is immutable; serve a persisted corpus "
                "directory (repro index build + WWTService(path)) to get "
                "journaled add_tables/delete_tables"
            )
        return self.corpus

    def add_tables(self, tables: Iterable[WebTable]) -> int:
        """Journal new tables into the served corpus, live.

        The tables are searchable by the next query — both caches are
        dropped (cached answers were computed against the smaller corpus)
        — and the mutation is durable before this returns.  When the
        config sets ``auto_compact_threshold`` and the journal has grown
        to that depth, the corpus is compacted in the same call.  Returns
        the number of tables added.
        """
        corpus = self._mutable_corpus()
        added = corpus.add_tables(tables)
        self.clear_caches()
        self._maybe_auto_compact()
        return added

    def delete_tables(self, table_ids: Iterable[str]) -> int:
        """Remove tables from the served corpus, live (see :meth:`add_tables`)."""
        corpus = self._mutable_corpus()
        deleted = corpus.delete_tables(table_ids)
        self.clear_caches()
        self._maybe_auto_compact()
        return deleted

    def compact(self) -> int:
        """Fold the served corpus's journal into fresh shard snapshots.

        Returns the number of journal records folded.  Cached answers stay
        valid (compaction preserves rankings exactly), so the caches are
        left alone.  Snapshots are rewritten in ``config.index_format``
        (binary by default), which also upgrades a version-2 directory.
        """
        return self._mutable_corpus().compact(
            index_format=self.config.index_format
        )

    def _maybe_auto_compact(self) -> None:
        threshold = self.config.auto_compact_threshold
        if (
            threshold is not None
            and getattr(self.corpus, "journal_depth", 0) >= threshold
        ):
            self.corpus.compact(index_format=self.config.index_format)

    # -- operations -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Snapshot of the serving counters."""
        with self._lock:
            queries, batches = self._queries, self._batches
            total_time = self._total_time
            stages = {
                name: acc.snapshot()
                for name, acc in self._stage_stats.items()
            }
            deadline_hits = self._deadline_hits
            degraded_answers = self._degraded_answers
            degraded_reasons = dict(self._degraded_reasons)
            partial_answers = self._partial_answers
        feature = self._feature_cache.stats()  # one atomic snapshot
        return ServiceStats(
            queries=queries,
            batches=batches,
            result_cache=self._result_cache.stats(),
            probe_cache=self._probe_cache.stats(),
            feature_cache=CacheStats(
                hits=feature["hits"],
                misses=feature["misses"],
                size=feature["size"],
                capacity=feature["capacity"],
            ),
            total_time=total_time,
            stages=stages,
            deadline_hits=deadline_hits,
            degraded_answers=degraded_answers,
            degraded_reasons=degraded_reasons,
            partial_answers=partial_answers,
        )

    def coverage(self) -> Optional[Any]:
        """The served corpus's current shard :class:`~repro.faults.Coverage`.

        ``None`` when the corpus has no failure domains (monolithic, or
        sharded without a health policy) — absence means "coverage is not
        a concept here", not "coverage is unknown".
        """
        coverage_fn = getattr(self.corpus, "coverage", None)
        if coverage_fn is None:
            return None
        return coverage_fn()

    def clear_caches(self) -> None:
        """Drop all serving caches (hit/miss counters are kept).

        Covers the result and probe LRUs, the per-(query, table) feature
        memo, and — when PMI² is configured — the corpus-level H/B
        containment-probe caches; all of them key off corpus content, so
        a live mutation invalidates the lot.
        """
        self._result_cache.clear()
        self._probe_cache.clear()
        self._feature_cache.clear()
        if self._pmi_scorer is not None:
            self._pmi_scorer.clear_caches()

    def close(self) -> None:
        """Release resources the service created (idempotent).

        A corpus loaded here from a path (rather than passed in) may own a
        scatter thread pool; closing the service closes it.  A corpus the
        caller constructed is left untouched — they own its lifecycle.
        """
        if self._owns_corpus and hasattr(self.corpus, "close"):
            self.corpus.close()

    def __enter__(self) -> WWTService:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
