"""``WWTService`` — the one public entry point for answering queries.

Owns the full query-time pipeline of Figure 2 (two-stage probe, collective
column mapping, consolidation, ranking) behind a request/response API with
result + probe caching, batch fan-out, and serving statistics.  The legacy
``WWTEngine`` is now a deprecated shim over this class.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..consolidate.merge import consolidate
from ..consolidate.ranker import rank_answer
from ..core.features import FeatureCache
from ..core.model import build_problem
from ..core.pmi import PmiScorer
from ..index.protocol import CorpusProtocol
from ..index.sharded import load_corpus
from ..inference.registry import DEFAULT_REGISTRY
from ..pipeline.probe import two_stage_probe
from ..pipeline.wwt import QueryTiming, WWTAnswer
from ..query.model import Query
from .cache import CacheStats, LRUCache
from .config import EngineConfig
from .types import QueryRequest, QueryResponse, build_explain, normalized_query_key

__all__ = ["ServiceStats", "WWTService"]

#: Anything ``answer``/``answer_batch`` accepts as a query.
RequestLike = Union[QueryRequest, Query, str]


@dataclass(frozen=True)
class ServiceStats:
    """Serving counters since construction (or the last ``reset_stats``)."""

    queries: int
    batches: int
    result_cache: CacheStats
    probe_cache: CacheStats
    #: Per-(query, table) feature memoization counters (the hot-path
    #: cache shared between probe confidence and full inference).
    feature_cache: CacheStats
    #: Cumulative wall-clock seconds spent serving (cache hits included).
    total_time: float

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging/CLI output."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "total_time": self.total_time,
            "result_cache": self.result_cache.to_dict(),
            "probe_cache": self.probe_cache.to_dict(),
            "feature_cache": self.feature_cache.to_dict(),
        }


class WWTService:
    """Facade over an indexed corpus: configure once, answer many.

    ::

        service = WWTService(corpus, EngineConfig(inference="table-centric"))
        response = service.answer("country | currency")
        responses = service.answer_batch(["country | gdp", "dog breed"])
        print(service.stats().to_dict())

    ``corpus`` is any :class:`~repro.index.protocol.CorpusProtocol` backend
    (monolithic or sharded), or a path to a persisted corpus directory
    (``repro index build``).  With no corpus argument at all, the config's
    ``index_path`` is loaded — so a service is fully constructible from one
    JSON config file.

    A service over a persisted directory can also mutate it live — new
    tables are journaled durably and searchable immediately::

        service = WWTService("corpus-dir")
        service.add_tables(new_tables)      # caches invalidated
        service.compact()                   # fold journal into snapshots
    """

    def __init__(
        self,
        corpus: Union[CorpusProtocol, str, Path, None] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        if corpus is None:
            if not self.config.index_path:
                raise ValueError(
                    "WWTService needs a corpus object, a corpus path, or an "
                    "EngineConfig with index_path set"
                )
            corpus = self.config.index_path
        #: Whether this service created the corpus (and so owns its
        #: resources — see :meth:`close`).
        self._owns_corpus = isinstance(corpus, (str, Path))
        if isinstance(corpus, (str, Path)):
            corpus = load_corpus(corpus, probe_workers=self.config.probe_workers)
        self.corpus = corpus
        self._result_cache = LRUCache(self.config.cache_size)
        self._probe_cache = LRUCache(self.config.probe_cache_size)
        #: Per-(query, table) feature memo shared by the probe's
        #: confidence pass and the full inference assembly, so stage-1
        #: features are computed once per query instead of twice.
        self._feature_cache = FeatureCache(self.config.feature_cache_size)
        #: One corpus-level PMI² scorer (bounded H/B containment-probe
        #: caches shared across every query and batch) — only when the
        #: configured weights actually consult PMI².
        self._pmi_scorer = (
            PmiScorer(self.corpus)
            if self.config.params.w3 != 0.0 else None
        )
        self._lock = threading.Lock()
        #: Single-flight map: cache key -> Future of the leading computation,
        #: so concurrent identical queries compute the pipeline once.
        self._inflight: Dict[Any, "Future[WWTAnswer]"] = {}
        self._queries = 0
        self._batches = 0
        self._total_time = 0.0

    # -- the pipeline -----------------------------------------------------

    def _compute(self, query: Query, inference: str) -> WWTAnswer:
        """Run probe -> column map -> consolidate for one query, uncached
        except for the probe-stage cache."""
        algorithm = DEFAULT_REGISTRY.get_algorithm(inference)
        timing = QueryTiming()

        # The probe cache stores the stage timings next to the result so a
        # hit still reports the probe's original cost (Figure 7's slices),
        # not a misleading zero.
        probe_key = normalized_query_key(query)
        hit, entry = self._probe_cache.get(probe_key)
        if hit:
            probe, raw = entry
        else:
            raw = {}
            probe = two_stage_probe(
                query, self.corpus, self.config.probe, self.config.params,
                timings=raw, feature_cache=self._feature_cache,
                pmi_scorer=self._pmi_scorer,
            )
            self._probe_cache.put(probe_key, (probe, raw))
        timing.index1 = raw.get("index1", 0.0)
        timing.read1 = raw.get("read1", 0.0)
        timing.confidence = raw.get("confidence", 0.0)
        timing.index2 = raw.get("index2", 0.0)
        timing.read2 = raw.get("read2", 0.0)

        t0 = time.perf_counter()
        # The feature cache makes this an incremental extension of the
        # probe's confidence-pass problem: stage-1 table features come
        # from the cache, only stage-2 tables are evaluated fresh.
        problem = build_problem(
            query, probe.tables, self.corpus.stats, self.config.params,
            pmi_scorer=self._pmi_scorer, feature_cache=self._feature_cache,
        )
        mapping = algorithm(problem)
        timing.column_map = time.perf_counter() - t0

        t0 = time.perf_counter()
        mappings = {
            ti: mapping.table_mapping(ti) for ti in mapping.relevant_tables()
        }
        relevance = {ti: mapping.table_relevance_score(ti) for ti in mappings}
        answer = rank_answer(
            consolidate(query, probe.tables, mappings, relevance)
        )
        timing.consolidate = time.perf_counter() - t0

        return WWTAnswer(
            query=query,
            answer=answer,
            mapping=mapping,
            probe=probe,
            timing=timing,
            problem=problem,
        )

    def _cached_answer(
        self,
        query: Query,
        name: str,
        use_cache: bool,
    ) -> tuple:
        """``(served_without_computing, WWTAnswer)`` for one query.

        The single shared path behind :meth:`answer` and
        :meth:`answer_full`: LRU result lookup, then single-flight
        collapsing so concurrent identical queries (a batch with repeats)
        compute the pipeline once — followers wait on the leader's future
        and count as served-from-cache.
        """
        if not use_cache:
            return False, self._compute(query, name)
        key = (normalized_query_key(query), name)
        hit, cached = self._result_cache.get(key)
        if hit:
            return True, cached
        with self._lock:
            future = self._inflight.get(key)
            leader = future is None
            if leader:
                future = Future()
                self._inflight[key] = future
        if not leader:
            return True, future.result()
        try:
            full = self._compute(query, name)
            self._result_cache.put(key, full)
            future.set_result(full)
            return False, full
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def answer_full(
        self,
        query: Union[Query, str],
        use_cache: bool = True,
        inference: Optional[str] = None,
    ) -> WWTAnswer:
        """Answer one query, returning the full pipeline artifact.

        This is the power-user API (examples, notebooks, debugging) — it
        exposes the probe result, the mapping problem, and the labeling.
        Serving callers should prefer :meth:`answer`.
        """
        if isinstance(query, str):
            query = Query.parse(query)
        name = inference if inference is not None else self.config.inference
        return self._cached_answer(query, name, use_cache)[1]

    # -- the serving API --------------------------------------------------

    def answer(self, request: RequestLike) -> QueryResponse:
        """Answer one request, returning a paginated response."""
        request = QueryRequest.of(request)
        start = time.perf_counter()

        name = (
            request.inference if request.inference is not None
            else self.config.inference
        )
        cache_hit, full = self._cached_answer(
            request.query, name, request.use_cache
        )

        page_size = (
            request.page_size if request.page_size is not None
            else self.config.page_size
        )
        lo = (request.page - 1) * page_size
        rows = full.answer.rows[lo: lo + page_size]
        served_in = time.perf_counter() - start
        with self._lock:
            self._queries += 1
            self._total_time += served_in

        return QueryResponse(
            query=request.query,
            header=full.answer.header(),
            rows=rows,
            page=request.page,
            page_size=page_size,
            total_rows=full.answer.num_rows,
            timing=full.timing,
            algorithm=name,  # registry name; explain carries the solver's own
            cache_hit=cache_hit,
            served_in=served_in,
            explain=build_explain(full) if request.explain else None,
        )

    def answer_batch(
        self,
        requests: Sequence[RequestLike],
        max_workers: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Answer many requests with thread-pool fan-out.

        Responses come back in input order.  Width defaults to the config's
        ``max_workers``; repeated (normalized) queries — within one batch
        or across calls — compute the pipeline once (LRU cache plus
        single-flight collapsing of concurrent duplicates), and each
        response reports its own cache provenance.
        """
        coerced = [QueryRequest.of(r) for r in requests]
        with self._lock:
            self._batches += 1
        if not coerced:
            return []
        width = max_workers if max_workers is not None else self.config.max_workers
        width = max(1, min(width, len(coerced)))
        if width == 1:
            return [self.answer(r) for r in coerced]
        with ThreadPoolExecutor(max_workers=width) as pool:
            return list(pool.map(self.answer, coerced))

    # -- live mutation -----------------------------------------------------

    def _mutable_corpus(self):
        """The served corpus, if it supports journaled mutation.

        Corpora loaded from a persisted directory (``WWTService(path)`` or
        ``EngineConfig.index_path``) are
        :class:`~repro.index.journal.JournaledCorpus` instances and
        mutable; an in-memory corpus object passed in by the caller
        usually is not.
        """
        if not hasattr(self.corpus, "add_tables"):
            raise ValueError(
                "the served corpus is immutable; serve a persisted corpus "
                "directory (repro index build + WWTService(path)) to get "
                "journaled add_tables/delete_tables"
            )
        return self.corpus

    def add_tables(self, tables) -> int:
        """Journal new tables into the served corpus, live.

        The tables are searchable by the next query — both caches are
        dropped (cached answers were computed against the smaller corpus)
        — and the mutation is durable before this returns.  When the
        config sets ``auto_compact_threshold`` and the journal has grown
        to that depth, the corpus is compacted in the same call.  Returns
        the number of tables added.
        """
        corpus = self._mutable_corpus()
        added = corpus.add_tables(tables)
        self.clear_caches()
        self._maybe_auto_compact()
        return added

    def delete_tables(self, table_ids) -> int:
        """Remove tables from the served corpus, live (see :meth:`add_tables`)."""
        corpus = self._mutable_corpus()
        deleted = corpus.delete_tables(table_ids)
        self.clear_caches()
        self._maybe_auto_compact()
        return deleted

    def compact(self) -> int:
        """Fold the served corpus's journal into fresh shard snapshots.

        Returns the number of journal records folded.  Cached answers stay
        valid (compaction preserves rankings exactly), so the caches are
        left alone.
        """
        return self._mutable_corpus().compact()

    def _maybe_auto_compact(self) -> None:
        threshold = self.config.auto_compact_threshold
        if (
            threshold is not None
            and getattr(self.corpus, "journal_depth", 0) >= threshold
        ):
            self.corpus.compact()

    # -- operations -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Snapshot of the serving counters."""
        with self._lock:
            queries, batches = self._queries, self._batches
            total_time = self._total_time
        feature = self._feature_cache.stats()  # one atomic snapshot
        return ServiceStats(
            queries=queries,
            batches=batches,
            result_cache=self._result_cache.stats(),
            probe_cache=self._probe_cache.stats(),
            feature_cache=CacheStats(
                hits=feature["hits"],
                misses=feature["misses"],
                size=feature["size"],
                capacity=feature["capacity"],
            ),
            total_time=total_time,
        )

    def clear_caches(self) -> None:
        """Drop all serving caches (hit/miss counters are kept).

        Covers the result and probe LRUs, the per-(query, table) feature
        memo, and — when PMI² is configured — the corpus-level H/B
        containment-probe caches; all of them key off corpus content, so
        a live mutation invalidates the lot.
        """
        self._result_cache.clear()
        self._probe_cache.clear()
        self._feature_cache.clear()
        if self._pmi_scorer is not None:
            self._pmi_scorer.clear_caches()

    def close(self) -> None:
        """Release resources the service created (idempotent).

        A corpus loaded here from a path (rather than passed in) may own a
        scatter thread pool; closing the service closes it.  A corpus the
        caller constructed is left untouched — they own its lifecycle.
        """
        if self._owns_corpus and hasattr(self.corpus, "close"):
            self.corpus.close()

    def __enter__(self) -> "WWTService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
