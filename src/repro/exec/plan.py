"""Execution plans: a pipeline reified as a sequence of named stages.

A :class:`Stage` couples a name (``"probe.index1"``, ``"column_map"``, …)
with the function that runs it and a *degradation policy* — what the
runner may do with the stage once the context's budget is exhausted:

- ``skippable=True`` — skip it outright (downstream stages must tolerate
  the stage's outputs keeping their defaults);
- ``fallback=fn`` — run the cheaper ``fn`` instead of the normal body;
- neither — the stage is required and runs regardless (its cost is the
  "one stage granularity" by which a response may overshoot the budget).

:class:`ExecutionPlan` runs the stages in order under an
:class:`~repro.exec.context.ExecutionContext`, recording one span per
stage and checking cancellation + deadline *between* stages.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .context import SPAN_DEGRADED, ExecutionContext

__all__ = ["Stage", "ExecutionPlan"]

#: A stage body: mutates the shared state under the given context.
StageFn = Callable[[ExecutionContext, Any], None]


@dataclass(frozen=True)
class Stage:
    """One named step of an execution plan."""

    name: str
    fn: StageFn
    #: May the runner skip this stage entirely once the budget is gone?
    skippable: bool = False
    #: Cheaper body to run instead of ``fn`` once the budget is gone.
    fallback: Optional[StageFn] = None
    #: Short label describing the fallback (recorded on the span's note).
    fallback_note: str = ""


class ExecutionPlan:
    """An ordered sequence of stages run under one context.

    ::

        plan = ExecutionPlan([Stage("parse", parse), Stage("rank", rank)])
        ctx = ExecutionContext(deadline_ms=config.deadline_ms)
        plan.run(ctx, state)
        print(ctx.root.format_tree())

    ``run`` returns the state for chaining.  Deadline and cancellation are
    checked before each stage; a stage that is already running is never
    preempted.
    """

    def __init__(self, stages: Sequence[Stage], name: str = "plan") -> None:
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in plan: {names}")
        self.name = name
        self._stages: Tuple[Stage, ...] = tuple(stages)

    @property
    def stages(self) -> Tuple[Stage, ...]:
        """The plan's stages, in execution order."""
        return self._stages

    def stage_names(self) -> List[str]:
        """Stage names in execution order."""
        return [s.name for s in self._stages]

    def run(self, ctx: ExecutionContext, state: Any) -> Any:
        """Execute every stage in order under ``ctx``.

        Raises :class:`~repro.exec.context.ExecutionCancelled` when the
        context's token is tripped and
        :class:`~repro.exec.context.DeadlineExceeded` when the budget is
        exhausted with ``degraded_ok`` off.
        """
        for stage in self._stages:
            self._run_stage(stage, ctx, state)
        return state

    def _run_stage(
        self, stage: Stage, ctx: ExecutionContext, state: Any
    ) -> None:
        """One stage under the plan's boundary policy.

        The single decision point shared by :meth:`run` and
        :meth:`run_async` — cancellation and deadline checks, the
        skip/fallback/required degradation ladder, and span recording all
        live here, so the two runners cannot drift apart.
        """
        ctx.check_cancelled()
        if ctx.check_deadline():
            if stage.skippable:
                ctx.skip(stage.name)
                return
            if stage.fallback is not None:
                ctx.mark_degraded()
                with ctx.span(stage.name, status=SPAN_DEGRADED) as span:
                    span.note = stage.fallback_note or "fallback"
                    stage.fallback(ctx, state)
                return
            # Required stage: run it even over budget — this is the
            # plan's "one stage granularity" overshoot.
        with ctx.span(stage.name):
            stage.fn(ctx, state)

    async def run_async(self, ctx: ExecutionContext, state: Any) -> Any:
        """Execute every stage in order on the running asyncio event loop.

        Behaviourally identical to :meth:`run` — same deadline checks,
        same skip/fallback ladder, same spans, byte-identical answers —
        but stage boundaries become ``await`` points: the coroutine
        yields to the loop between stages, so a serving layer can
        interleave thousands of in-flight queries, and an
        ``asyncio``-level cancellation lands at the next boundary (stage
        bodies themselves are synchronous and never preempted mid-stage,
        exactly like the threaded path).
        """
        for stage in self._stages:
            await asyncio.sleep(0)
            self._run_stage(stage, ctx, state)
        return state
