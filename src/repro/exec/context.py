"""Execution context: deadline budget, cancellation, and the span tree.

An :class:`ExecutionContext` travels through one query's staged plan
(see :mod:`repro.exec.plan`) carrying three things:

- a **wall-clock budget** (``deadline_ms``) that the plan runner checks
  between stages — exceeding it triggers graceful degradation (or
  :class:`DeadlineExceeded` when ``degraded_ok`` is off);
- a **cancellation token** callers can trip from another thread; and
- a **span tree** of per-stage wall-clock timings and counters — the
  single source of truth the serving layer's ``QueryTiming`` and
  per-stage aggregates are views over.

The context never preempts a running stage: deadline enforcement is
*between* stages, so a response is late by at most one stage's own cost
("budget + one stage granularity").
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "CancellationToken",
    "DeadlineExceeded",
    "ExecutionCancelled",
    "ExecutionContext",
    "REASON_DEADLINE",
    "REASON_SHARD_FAILURE",
    "Span",
    "SPAN_OK",
    "SPAN_DEGRADED",
    "SPAN_SKIPPED",
    "SPAN_CACHED",
    "wall_clock",
]


def wall_clock() -> float:
    """Monotonic wall-clock read — the one sanctioned clock outside tests.

    Every timing measurement in the engine flows through this seam (or
    through an :class:`ExecutionContext` constructed with an injected
    ``clock``), so tests and replay harnesses can substitute a fake clock
    at a single point.  reprolint rule R001 enforces that no other module
    calls ``time.time``/``time.perf_counter``/``datetime.now`` directly.
    """
    return time.perf_counter()


#: Degradation reason: the deadline budget forced skips or fallbacks.
REASON_DEADLINE = "deadline"
#: Degradation reason: one or more corpus shards were unreachable, so
#: the answer covers only part of the corpus (see ``QueryState.coverage``).
REASON_SHARD_FAILURE = "shard_failure"

#: Span ran normally.
SPAN_OK = "ok"
#: Span ran a degraded fallback instead of its normal stage body.
SPAN_DEGRADED = "degraded"
#: Span was skipped outright under deadline pressure (zero duration).
SPAN_SKIPPED = "skipped"
#: Span was grafted from an earlier execution (e.g. a probe-cache hit);
#: its duration reports the *original* cost, not this request's.
SPAN_CACHED = "cached"


class DeadlineExceeded(TimeoutError):
    """A plan ran out of budget and degraded answers are not allowed.

    Subclasses :class:`TimeoutError` so generic timeout handling (and the
    CLI's error-to-exit-code mapping) applies.
    """


class ExecutionCancelled(RuntimeError):
    """A plan was cancelled via its :class:`CancellationToken`."""


class CancellationToken:
    """Thread-safe one-way cancellation latch.

    ::

        token = CancellationToken()
        # ... hand it to an ExecutionContext, then from any thread:
        token.cancel()
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Trip the latch; every context holding this token stops at its
        next between-stage check."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Has :meth:`cancel` been called?"""
        return self._event.is_set()


@dataclass
class Span:
    """One timed node of the execution trace.

    ``duration`` is wall-clock seconds; ``status`` is one of
    :data:`SPAN_OK`, :data:`SPAN_DEGRADED`, :data:`SPAN_SKIPPED`,
    :data:`SPAN_CACHED`; ``note`` carries a short human-readable marker
    (e.g. the fallback algorithm a degraded stage used).
    """

    name: str
    duration: float = 0.0
    status: str = SPAN_OK
    note: str = ""
    counters: Dict[str, float] = field(default_factory=dict)
    children: List[Span] = field(default_factory=list)

    # -- queries ----------------------------------------------------------

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def leaves(self) -> Iterator[Span]:
        """Depth-first iterator over the subtree's leaf spans."""
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def total(self, name: str) -> float:
        """Summed duration of every leaf named ``name`` in this subtree."""
        return sum(s.duration for s in self.leaves() if s.name == name)

    def stage_names(self) -> List[str]:
        """Names of the leaf stages whose results this tree reflects.

        Deadline-skipped stages are excluded; ``cached`` spans (a probe
        replayed from the probe cache) are *included* — their outputs
        feed the answer even though this request did not re-execute
        them (``ServiceStats.stages`` is the executed-only view).
        """
        return [s.name for s in self.leaves() if s.status != SPAN_SKIPPED]

    @property
    def degraded(self) -> bool:
        """Did any span in this subtree skip or degrade?"""
        return any(
            s.status in (SPAN_SKIPPED, SPAN_DEGRADED) for s in self.leaves()
        )

    # -- transforms -------------------------------------------------------

    def copy(self, status: Optional[str] = None) -> Span:
        """Deep copy, optionally rewriting every node's status."""
        return Span(
            name=self.name,
            duration=self.duration,
            status=status if status is not None else self.status,
            note=self.note,
            counters=dict(self.counters),
            children=[c.copy(status) for c in self.children],
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe nested form (durations in milliseconds)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "ms": self.duration * 1000.0,
            "status": self.status,
        }
        if self.note:
            data["note"] = self.note
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    def format_tree(self, indent: int = 0) -> List[str]:
        """Human-readable trace lines (the CLI's ``query --trace`` view)."""
        label = "  " * indent + self.name
        if self.status == SPAN_SKIPPED:
            line = f"{label:<32} {'--':>9}  skipped"
        else:
            line = f"{label:<32} {self.duration * 1000.0:>7.1f}ms"
            if self.status != SPAN_OK:
                line += f"  {self.status}"
        if self.note:
            line += f" ({self.note})"
        if self.counters:
            pairs = " ".join(
                f"{k}={v:g}" for k, v in sorted(self.counters.items())
            )
            line += f"  [{pairs}]"
        lines = [line]
        for child in self.children:
            lines.extend(child.format_tree(indent + 1))
        return lines


class ExecutionContext:
    """Per-query execution state: budget, cancellation, span tree.

    ::

        ctx = ExecutionContext(deadline_ms=50.0)
        with ctx.span("probe.index1"):
            hits = corpus.search(tokens)
            ctx.count("hits", len(hits))
        if ctx.out_of_budget:
            ...  # degrade

    ``clock`` is injectable for deterministic tests; it must be a
    monotonic ``() -> float`` in seconds (default
    :func:`time.perf_counter`).
    """

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        degraded_ok: bool = True,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.perf_counter,
        root_name: str = "query",
    ) -> None:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (None disables)")
        self.deadline_ms = deadline_ms
        #: When the budget runs out: degrade gracefully (True) or raise
        #: :class:`DeadlineExceeded` (False).
        self.degraded_ok = degraded_ok
        self.token = token
        self._clock = clock
        self._started = clock()
        #: Root of the span tree; stages append children as they run.
        self.root = Span(root_name)
        self._stack: List[Span] = [self.root]
        #: Did any stage skip or fall back?  (The answer is partial.)
        self.degraded = False
        #: Why, in first-occurrence order — :data:`REASON_DEADLINE`,
        #: :data:`REASON_SHARD_FAILURE`, or both.  Empty iff not degraded.
        self.degraded_reasons: List[str] = []
        #: Did the budget run out at any between-stage check?
        self.deadline_hit = False

    # -- budget -----------------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        """Milliseconds since the context was created."""
        return (self._clock() - self._started) * 1000.0

    @property
    def remaining_ms(self) -> Optional[float]:
        """Budget left (may be negative); ``None`` when no deadline."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms - self.elapsed_ms

    @property
    def out_of_budget(self) -> bool:
        """Has the deadline passed?  Always False with no deadline."""
        remaining = self.remaining_ms
        return remaining is not None and remaining <= 0.0

    def check_deadline(self) -> bool:
        """Record (and return) whether the budget has run out.

        With ``degraded_ok`` off, an exhausted budget raises
        :class:`DeadlineExceeded` instead of returning.
        """
        if not self.out_of_budget:
            return False
        self.deadline_hit = True
        if not self.degraded_ok:
            raise DeadlineExceeded(
                f"query exceeded its {self.deadline_ms:g}ms deadline "
                f"after {self.elapsed_ms:.1f}ms (degraded_ok is off)"
            )
        return True

    def check_cancelled(self) -> None:
        """Raise :class:`ExecutionCancelled` if the token was tripped."""
        if self.token is not None and self.token.cancelled:
            raise ExecutionCancelled("execution cancelled by caller")

    # -- spans ------------------------------------------------------------

    @property
    def current(self) -> Span:
        """The innermost open span (the root between stages)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, status: str = SPAN_OK) -> Iterator[Span]:
        """Open a child span; its duration is recorded on exit."""
        node = Span(name, status=status)
        self._stack[-1].children.append(node)
        self._stack.append(node)
        start = self._clock()
        try:
            yield node
        finally:
            node.duration += self._clock() - start
            self._stack.pop()

    def count(self, key: str, value: float) -> None:
        """Set a counter on the innermost open span."""
        self.current.counters[key] = value

    def skip(self, name: str, note: str = "deadline") -> Span:
        """Record a zero-duration skipped span and mark the run degraded."""
        node = Span(name, status=SPAN_SKIPPED, note=note)
        self._stack[-1].children.append(node)
        self.mark_degraded(REASON_DEADLINE)
        return node

    def mark_degraded(self, reason: str = REASON_DEADLINE) -> None:
        """Flag the run as having returned a partial/degraded answer.

        ``reason`` says *why* — deadline pressure or shard failure — and
        accumulates in :attr:`degraded_reasons` (deduplicated, in
        first-occurrence order) so serving layers can report both.
        """
        self.degraded = True
        if reason not in self.degraded_reasons:
            self.degraded_reasons.append(reason)

    def adopt(self, spans: Sequence[Span]) -> None:
        """Graft copies of previously recorded spans into the tree.

        Used by the probe cache: a hit replays the original probe's spans
        (status rewritten to :data:`SPAN_CACHED`) so the response still
        reports the probe's real cost — Figure 7's slices — instead of a
        misleading zero.
        """
        for span in spans:
            self._stack[-1].children.append(span.copy(status=SPAN_CACHED))
