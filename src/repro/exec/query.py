"""The WWT query plan: the Figure 2 pipeline as named, budgeted stages.

Reifies the serving pipeline as the stage sequence

    parse -> probe.index1 -> probe.read1 -> probe.confidence
          -> probe.index2 -> probe.read2 -> column_map
          -> consolidate -> rank

over a shared :class:`~repro.exec.state.QueryState`, run under an
:class:`~repro.exec.context.ExecutionContext`.  With no deadline the
stages perform *exactly* the computations of the pre-executor
straight-line pipeline, in the same order, consuming the same RNG draws —
answers are bit-identical (asserted over the 59-query workload in
``tests/test_exec.py``).  With a deadline, the degradation policy is:

- the probe stages (``probe.index1`` … ``probe.index2``) are skippable —
  in practice a budget expires inside ``probe.confidence``, which skips
  the stage-2 probe, the paper's expensive second round trip;
- ``column_map`` falls back to the fastest registered inference
  (:meth:`~repro.inference.registry.InferenceRegistry.fastest`) instead
  of the configured solver;
- ``probe.read2``, ``consolidate`` and ``rank`` always run — their cost
  is proportional to whatever the earlier stages produced, so a fully
  skipped probe consolidates an empty answer in microseconds.
"""

from __future__ import annotations

import random
from typing import List

from ..consolidate.merge import consolidate
from ..consolidate.ranker import rank_answer
from ..core.model import build_problem
from ..inference.registry import DEFAULT_REGISTRY
from ..pipeline.probe import (
    ProbeConfig,
    ProbeResult,
    table_confidences,
    trim_hits,
)
from ..query.model import Query
from ..text.tokenize import tokenize
from .context import REASON_SHARD_FAILURE, ExecutionContext
from .plan import ExecutionPlan, Stage
from .state import QueryState

__all__ = [
    "PROBE_STAGES",
    "QUERY_STAGES",
    "build_query_plan",
    "build_probe_plan",
]


# -- stage bodies ---------------------------------------------------------


def _note_coverage(ctx: ExecutionContext, s: QueryState) -> None:
    """After a corpus-touching stage: record shard coverage, flag partials.

    Corpora without failure domains either expose no ``coverage`` surface
    or always report complete coverage, so this costs one attribute probe
    on the fault-free path.  With failure domains, the *worst* coverage
    seen across the query's stages is kept (the answer is only as
    complete as its least-complete probe) and the context is marked
    degraded with :data:`~repro.exec.context.REASON_SHARD_FAILURE`.
    """
    coverage_fn = getattr(s.corpus, "coverage", None)
    if coverage_fn is None:
        return
    coverage = coverage_fn()
    if coverage.complete:
        return
    if s.coverage is None or coverage.fraction < s.coverage.fraction:
        s.coverage = coverage
    ctx.mark_degraded(REASON_SHARD_FAILURE)


def _stage_parse(ctx: ExecutionContext, s: QueryState) -> None:
    """Turn the request into an executable query: parse text, resolve the
    inference algorithm, default the probe config and RNG."""
    if s.query is None:
        s.query = Query.parse(s.text)
    if s.probe_config is None:
        s.probe_config = ProbeConfig()
    if s.algorithm is None and s.inference is not None:
        s.algorithm = DEFAULT_REGISTRY.get_algorithm(s.inference)
    if s.rng is None:
        s.rng = random.Random(s.probe_config.seed)


def _stage_index1(ctx: ExecutionContext, s: QueryState) -> None:
    """Stage-1 index probe: the union of all query keywords."""
    config = s.probe_config
    hits = trim_hits(
        s.corpus.search(s.query.all_tokens(), limit=config.stage1_limit),
        config.min_score_fraction,
    )
    s.stage1_ids = [h.doc_id for h in hits]
    ctx.count("hits", len(s.stage1_ids))
    _note_coverage(ctx, s)


def _stage_read1(ctx: ExecutionContext, s: QueryState) -> None:
    """Read the stage-1 candidate tables from the store."""
    s.stage1_tables = s.corpus.get_many(s.stage1_ids)
    ctx.count("tables", len(s.stage1_tables))
    _note_coverage(ctx, s)


def _stage_confidence(ctx: ExecutionContext, s: QueryState) -> None:
    """Rank stage-1 tables by mapping confidence; pick the seed tables
    that are allowed to drive the stage-2 content probe."""
    s.seeds = []
    if not s.stage1_tables:
        return
    config = s.probe_config
    s.confidences = table_confidences(
        s.query, s.stage1_tables, s.corpus, s.params,
        feature_cache=s.feature_cache, pmi_scorer=s.pmi_scorer,
    )
    ranked = sorted(
        range(len(s.stage1_tables)), key=lambda i: -s.confidences[i]
    )
    s.seeds = [
        s.stage1_tables[i]
        for i in ranked[: config.num_seed_tables]
        if s.confidences[i] >= config.seed_confidence
    ]
    ctx.count("seeds", len(s.seeds))
    _note_coverage(ctx, s)


def _stage_index2(ctx: ExecutionContext, s: QueryState) -> None:
    """Stage-2 index probe: keywords plus a random row sample from the
    seed tables, retrieving tables by content overlap."""
    s.stage2_ids = []
    if not s.seeds:
        return
    config = s.probe_config
    sample_tokens: List[str] = []
    all_rows = [row for table in s.seeds for row in table.body_rows()]
    s.rng.shuffle(all_rows)
    for row in all_rows[: config.num_sample_rows]:
        for cell in row:
            sample_tokens.extend(tokenize(cell.text))
    probe2 = s.query.all_tokens() + sample_tokens
    stage2_hits = trim_hits(
        s.corpus.search(probe2, limit=config.stage2_limit),
        config.min_score_fraction,
    )
    seen = set(s.stage1_ids)
    s.stage2_ids = [h.doc_id for h in stage2_hits if h.doc_id not in seen]
    ctx.count("hits", len(s.stage2_ids))
    _note_coverage(ctx, s)


def _stage_read2(ctx: ExecutionContext, s: QueryState) -> None:
    """Read the stage-2 tables and finalize the :class:`ProbeResult`.

    Always runs (it assembles the candidate set downstream stages need);
    with the stage-2 probe skipped it costs one empty ``get_many``.
    """
    tables = s.stage1_tables + s.corpus.get_many(s.stage2_ids)
    s.probe = ProbeResult(
        tables=tables,
        stage1_ids=s.stage1_ids,
        stage2_ids=s.stage2_ids,
        used_second_stage=bool(s.stage2_ids),
        seed_table_ids=[t.table_id for t in s.seeds],
    )
    ctx.count("candidates", len(tables))
    _note_coverage(ctx, s)


def _map_with(
    ctx: ExecutionContext, s: QueryState, algorithm: InferenceFn,
    with_edges: bool = True,
) -> None:
    s.problem = build_problem(
        s.query, s.probe.tables, s.corpus.stats, s.params,
        pmi_scorer=s.pmi_scorer, feature_cache=s.feature_cache,
        with_edges=with_edges,
    )
    s.mapping = algorithm(s.problem)
    ctx.count("tables", len(s.probe.tables))
    ctx.count("edges", len(s.problem.edges))


def _stage_column_map(ctx: ExecutionContext, s: QueryState) -> None:
    """Collective column mapping with the configured inference."""
    _map_with(ctx, s, s.algorithm)


def _stage_column_map_fallback(ctx: ExecutionContext, s: QueryState) -> None:
    """Degraded column mapping: the fastest registered inference.

    A non-collective fallback never reads cross-table edges, so their
    O(tables² x columns²) construction is skipped too — post-deadline
    work stays proportional to the node potentials the solver actually
    consumes, keeping the overshoot bound honest.
    """
    s.fallback_inference = DEFAULT_REGISTRY.fastest()
    info = DEFAULT_REGISTRY.info(s.fallback_inference)
    ctx.current.note = f"fallback={s.fallback_inference}"
    _map_with(ctx, s, info.fn, with_edges=info.collective)


def _stage_consolidate(ctx: ExecutionContext, s: QueryState) -> None:
    """Project relevant tables onto the query columns and merge rows."""
    mapping = s.mapping
    mappings = {
        ti: mapping.table_mapping(ti) for ti in mapping.relevant_tables()
    }
    relevance = {ti: mapping.table_relevance_score(ti) for ti in mappings}
    s.answer = consolidate(s.query, s.probe.tables, mappings, relevance)
    ctx.count("rows", s.answer.num_rows)


def _stage_rank(ctx: ExecutionContext, s: QueryState) -> None:
    """Order the consolidated rows best-first."""
    s.answer = rank_answer(s.answer)


# -- the plan -------------------------------------------------------------

#: Request normalization (text -> query, inference resolution, RNG).
PARSE_STAGES = (Stage("parse", _stage_parse),)

#: The candidate-retrieval sub-sequence (Section 2.2.1), reusable on its
#: own by :func:`~repro.pipeline.probe.two_stage_probe`.
PROBE_STAGES = (
    Stage("probe.index1", _stage_index1, skippable=True),
    Stage("probe.read1", _stage_read1, skippable=True),
    Stage("probe.confidence", _stage_confidence, skippable=True),
    Stage("probe.index2", _stage_index2, skippable=True),
    Stage("probe.read2", _stage_read2),
)

#: Column mapping, consolidation, ranking — runs after the probe (or a
#: probe-cache hit's grafted spans).
MAPPING_STAGES = (
    Stage(
        "column_map",
        _stage_column_map,
        fallback=_stage_column_map_fallback,
    ),
    Stage("consolidate", _stage_consolidate),
    Stage("rank", _stage_rank),
)

#: The full query plan, in execution order.
QUERY_STAGES = PARSE_STAGES + PROBE_STAGES + MAPPING_STAGES


def build_query_plan(include_probe: bool = True) -> ExecutionPlan:
    """The full query plan; ``include_probe=False`` omits the probe
    stages (the facade's probe-cache hit path, which grafts the cached
    probe's spans between ``parse`` and ``column_map`` instead)."""
    if include_probe:
        return ExecutionPlan(QUERY_STAGES, name="query")
    return ExecutionPlan(PARSE_STAGES + MAPPING_STAGES, name="query")


def build_probe_plan() -> ExecutionPlan:
    """Just the candidate-retrieval stages (``two_stage_probe``'s plan)."""
    return ExecutionPlan(PROBE_STAGES, name="probe")
