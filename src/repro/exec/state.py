"""The shared mutable state a query plan's stages read and write.

Kept import-light on purpose: every pipeline type is referenced through
``TYPE_CHECKING`` so this module sits below both :mod:`repro.pipeline`
and :mod:`repro.service` in the import graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..consolidate.merge import AnswerTable
    from ..core.features import FeatureCache
    from ..core.model import ColumnMappingProblem
    from ..core.params import ModelParams
    from ..core.pmi import PmiScorer
    from ..faults.health import Coverage
    from ..pipeline.probe import ProbeConfig, ProbeResult
    from ..query.model import Query
    from ..tables.table import WebTable

__all__ = ["QueryState"]


@dataclass
class QueryState:
    """Everything one query's staged execution reads and produces.

    Inputs are set by the caller (service facade, ``two_stage_probe``, or
    a test harness); the remaining fields start at their defaults and are
    filled in by the stages that produce them.  A skipped stage leaves
    its outputs at their defaults — downstream stages are written to
    tolerate that (an empty candidate list consolidates to an empty
    answer, never an error).
    """

    # -- inputs -----------------------------------------------------------
    #: Raw query text; the ``parse`` stage turns it into ``query``.
    text: Optional[str] = None
    #: The parsed query (pre-set by callers that already hold one).
    query: Optional[Query] = None
    #: Any :class:`~repro.index.protocol.CorpusProtocol` backend.
    corpus: Any = None
    probe_config: Optional[ProbeConfig] = None
    params: Optional[ModelParams] = None
    #: Registry name of the column-mapping algorithm to run.
    inference: Optional[str] = None
    #: Resolved algorithm callable (the ``parse`` stage resolves it from
    #: ``inference`` when unset).
    algorithm: Optional[Callable] = None
    #: Stage-2 row-sample generator; defaults to a private
    #: ``random.Random(probe_config.seed)`` so runs are bit-reproducible.
    rng: Optional[random.Random] = None
    feature_cache: Optional[FeatureCache] = None
    pmi_scorer: Optional[PmiScorer] = None

    # -- probe outputs ----------------------------------------------------
    stage1_ids: List[str] = field(default_factory=list)
    stage1_tables: List[WebTable] = field(default_factory=list)
    confidences: List[float] = field(default_factory=list)
    seeds: List[WebTable] = field(default_factory=list)
    stage2_ids: List[str] = field(default_factory=list)
    #: The finalized candidate-retrieval artifact (``probe.read2``).
    probe: Optional[ProbeResult] = None

    #: Worst (lowest-fraction) shard coverage observed across the
    #: corpus-touching stages; ``None`` when the corpus has no failure
    #: domains or every probe reached every shard.
    coverage: Optional[Coverage] = None

    # -- mapping / answer outputs -----------------------------------------
    problem: Optional[ColumnMappingProblem] = None
    mapping: Any = None
    #: Registry name of the fallback actually used (degraded runs only).
    fallback_inference: Optional[str] = None
    answer: Optional[AnswerTable] = None
