"""Per-stage latency aggregation (count / total / p50 / p95).

The serving facade folds every executed span into one
:class:`StageAccumulator` per stage name; :meth:`StageAccumulator.snapshot`
produces the frozen :class:`StageStats` that ``ServiceStats`` (and
``benchmarks/bench_exec.py``) report.  Percentiles are nearest-rank over a
bounded reservoir of the most recent samples, so long-running services
keep O(1) memory per stage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Sequence

__all__ = ["StageStats", "StageAccumulator", "percentile"]

#: Samples kept per stage for percentile estimation.
DEFAULT_RESERVOIR = 2048


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample (0 for an empty one)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class StageStats:
    """One stage's latency aggregate (seconds, like ``QueryTiming``)."""

    count: int
    total: float
    p50: float
    p95: float

    @property
    def mean(self) -> float:
        """Average duration per execution."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging/CLI/benchmark output."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
        }


class StageAccumulator:
    """Mutable latency accumulator behind one stage's :class:`StageStats`.

    Not thread-safe by itself — the facade serializes ``add`` calls under
    its own lock.
    """

    __slots__ = ("count", "total", "_samples")

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self.count = 0
        self.total = 0.0
        self._samples: deque[float] = deque(maxlen=reservoir)

    def add(self, seconds: float) -> None:
        """Fold one execution's duration in."""
        self.count += 1
        self.total += seconds
        self._samples.append(seconds)

    def snapshot(self) -> StageStats:
        """Frozen aggregate over everything folded in so far."""
        samples = list(self._samples)
        return StageStats(
            count=self.count,
            total=self.total,
            p50=percentile(samples, 0.50),
            p95=percentile(samples, 0.95),
        )
