"""``repro.exec`` — the staged query-execution engine.

Reifies the serving pipeline as an :class:`ExecutionPlan` of named
:class:`Stage` steps run under a shared :class:`ExecutionContext` that
carries a wall-clock deadline, a :class:`CancellationToken`, and a
:class:`Span` tree of per-stage timings and counters.  The serving
facade, ``two_stage_probe``, the evaluation harness, and the benchmarks
all execute queries through this engine, so every latency number in the
system is a view over the same span tree.

::

    from repro.exec import ExecutionContext, build_query_plan
    from repro.exec.state import QueryState

    ctx = ExecutionContext(deadline_ms=50.0)          # budgeted
    state = QueryState(text="country | currency", corpus=corpus,
                       params=params, inference="table-centric")
    build_query_plan().run(ctx, state)
    print("\\n".join(ctx.root.format_tree()))
    ctx.degraded            # True when a stage skipped or fell back

Degradation contract (see DESIGN.md, "Execution engine"): with no
deadline, answers are bit-identical to the straight-line pipeline; once
a deadline expires mid-plan, skippable stages are skipped (the stage-2
probe first, in practice), ``column_map`` falls back to the fastest
registered inference, and the answer comes back flagged degraded instead
of blowing the budget — or, with ``degraded_ok`` off, the plan raises
:class:`DeadlineExceeded`.
"""

from .context import (
    SPAN_CACHED,
    SPAN_DEGRADED,
    SPAN_OK,
    SPAN_SKIPPED,
    CancellationToken,
    DeadlineExceeded,
    ExecutionCancelled,
    ExecutionContext,
    Span,
)
from .plan import ExecutionPlan, Stage
from .state import QueryState
from .stats import StageAccumulator, StageStats, percentile
from .query import (
    PROBE_STAGES,
    QUERY_STAGES,
    build_probe_plan,
    build_query_plan,
)

__all__ = [
    "CancellationToken",
    "DeadlineExceeded",
    "ExecutionCancelled",
    "ExecutionContext",
    "ExecutionPlan",
    "PROBE_STAGES",
    "QUERY_STAGES",
    "QueryState",
    "SPAN_CACHED",
    "SPAN_DEGRADED",
    "SPAN_OK",
    "SPAN_SKIPPED",
    "Span",
    "Stage",
    "StageAccumulator",
    "StageStats",
    "build_probe_plan",
    "build_query_plan",
    "percentile",
]
