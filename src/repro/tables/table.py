"""The web-table data model.

A :class:`WebTable` is the unit everything downstream operates on: the index
stores one document per table with ``header``/``context``/``content`` fields,
the column mapper scores its header rows, title, context and body columns,
and the consolidator merges its rows into the answer.

Structure follows Section 2.1.1: a table is zero or more *title* rows,
followed by zero or more *header* rows, followed by *body* rows.  Context is
a list of scored text snippets extracted from the parent document
(Section 2.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..text.tokenize import tokenize

__all__ = ["CellFormat", "Cell", "ContextSnippet", "WebTable"]


@dataclass(frozen=True)
class CellFormat:
    """Visual/markup features of a cell, used by header detection."""

    is_th: bool = False
    bold: bool = False
    italic: bool = False
    underline: bool = False
    code: bool = False
    header_tag: bool = False  # h1..h6 inside the cell
    background: str = ""  # bgcolor attr or style background
    css_class: str = ""

    def emphasis_count(self) -> int:
        """Number of distinct emphasis markers set on this cell."""
        return sum(
            (self.is_th, self.bold, self.italic, self.underline,
             self.code, self.header_tag)
        )


@dataclass(frozen=True)
class Cell:
    """One table cell: its text plus formatting."""

    text: str = ""
    fmt: CellFormat = field(default_factory=CellFormat)

    def is_empty(self) -> bool:
        """True when the cell holds no visible text."""
        return not self.text.strip()

    def is_numeric(self) -> bool:
        """True when the text parses as a number (commas/%/$ tolerated)."""
        stripped = self.text.strip().replace(",", "").replace("%", "").replace("$", "")
        if not stripped:
            return False
        try:
            float(stripped)
            return True
        except ValueError:
            return False

    def is_capitalized(self) -> bool:
        """True when every word starts upper-case (a header marker)."""
        words = [w for w in self.text.split() if w and w[0].isalpha()]
        return bool(words) and all(w[0].isupper() for w in words)


@dataclass(frozen=True)
class ContextSnippet:
    """A context text snippet with its extraction score in [0, 1]."""

    text: str
    score: float = 1.0


class WebTable:
    """A table extracted from a web page.

    Parameters
    ----------
    grid:
        Rectangular cell grid (rows of equal length; pad before building).
    num_title_rows, num_header_rows:
        Prefix split per Section 2.1.1; ``grid[:nt]`` are title rows,
        ``grid[nt:nt+nh]`` header rows, the rest body rows.
    context:
        Scored snippets from the parent document.
    url, table_id:
        Provenance; ``table_id`` must be unique within a corpus.
    """

    __slots__ = (
        "table_id", "url", "grid", "num_title_rows", "num_header_rows",
        "context", "page_title",
    )

    def __init__(
        self,
        grid: Sequence[Sequence[Cell]],
        num_title_rows: int = 0,
        num_header_rows: int = 0,
        context: Optional[Sequence[ContextSnippet]] = None,
        url: str = "",
        table_id: str = "",
        page_title: str = "",
    ) -> None:
        rows = [list(r) for r in grid]
        width = max((len(r) for r in rows), default=0)
        for row in rows:
            row.extend(Cell() for _ in range(width - len(row)))
        if num_title_rows < 0 or num_header_rows < 0:
            raise ValueError("row counts must be non-negative")
        if num_title_rows + num_header_rows > len(rows):
            raise ValueError("title + header rows exceed table height")
        self.grid: List[List[Cell]] = rows
        self.num_title_rows = num_title_rows
        self.num_header_rows = num_header_rows
        self.context: List[ContextSnippet] = list(context or [])
        self.url = url
        self.table_id = table_id
        self.page_title = page_title

    # -- shape ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Total rows including title and header rows."""
        return len(self.grid)

    @property
    def num_cols(self) -> int:
        """Number of columns (grid is rectangular)."""
        return len(self.grid[0]) if self.grid else 0

    @property
    def num_body_rows(self) -> int:
        """Number of data rows."""
        return self.num_rows - self.num_title_rows - self.num_header_rows

    # -- row access ------------------------------------------------------------

    def title_rows(self) -> List[List[Cell]]:
        """The title rows (possibly empty list)."""
        return self.grid[: self.num_title_rows]

    def header_rows(self) -> List[List[Cell]]:
        """The header rows (possibly empty list)."""
        start = self.num_title_rows
        return self.grid[start : start + self.num_header_rows]

    def body_rows(self) -> List[List[Cell]]:
        """The data rows."""
        return self.grid[self.num_title_rows + self.num_header_rows :]

    # -- text views ------------------------------------------------------------

    def title_text(self) -> str:
        """All title-row text joined."""
        return " ".join(
            cell.text for row in self.title_rows() for cell in row if not cell.is_empty()
        )

    def header_text(self, row: int, col: int) -> str:
        """Header text of header row ``row`` (0-based) at column ``col``."""
        return self.header_rows()[row][col].text

    def header_tokens(self, row: int, col: int) -> List[str]:
        """Tokens of one header cell."""
        return tokenize(self.header_text(row, col))

    def column_header_tokens(self, col: int) -> List[str]:
        """Tokens of all header rows of ``col`` concatenated."""
        toks: List[str] = []
        for row in self.header_rows():
            toks.extend(tokenize(row[col].text))
        return toks

    def column_values(self, col: int) -> List[str]:
        """Body cell texts of column ``col`` (empty cells skipped)."""
        return [row[col].text for row in self.body_rows() if not row[col].is_empty()]

    def body_cell(self, row: int, col: int) -> Cell:
        """Body cell at (row, col), 0-based within the body."""
        return self.body_rows()[row][col]

    def context_text(self) -> str:
        """All context snippets joined (unweighted)."""
        return " ".join(snippet.text for snippet in self.context)

    def context_tokens(self) -> List[str]:
        """Tokens over all context snippets."""
        toks: List[str] = []
        for snippet in self.context:
            toks.extend(tokenize(snippet.text))
        return toks

    # -- index fields ------------------------------------------------------------

    def field_text(self, name: str) -> str:
        """Text of one of the three Lucene-style fields.

        ``header`` = header rows + title rows, ``context`` = context snippets
        + page title, ``content`` = body cells.
        """
        if name == "header":
            header = " ".join(
                cell.text for row in self.header_rows() for cell in row
            )
            return (header + " " + self.title_text()).strip()
        if name == "context":
            return (self.context_text() + " " + self.page_title).strip()
        if name == "content":
            return " ".join(
                cell.text for row in self.body_rows() for cell in row
                if not cell.is_empty()
            )
        raise KeyError(f"unknown field {name!r}")

    def all_tokens(self) -> List[str]:
        """Distinct-ish token stream over all three fields (for df stats)."""
        toks: List[str] = []
        for fld in ("header", "context", "content"):
            toks.extend(tokenize(self.field_text(fld)))
        return toks

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (formats reduced to flags)."""
        return {
            "table_id": self.table_id,
            "url": self.url,
            "page_title": self.page_title,
            "num_title_rows": self.num_title_rows,
            "num_header_rows": self.num_header_rows,
            "context": [[s.text, s.score] for s in self.context],
            "grid": [
                [
                    {
                        "t": cell.text,
                        "f": {
                            "th": cell.fmt.is_th,
                            "b": cell.fmt.bold,
                            "i": cell.fmt.italic,
                            "u": cell.fmt.underline,
                            "c": cell.fmt.code,
                            "h": cell.fmt.header_tag,
                            "bg": cell.fmt.background,
                            "cls": cell.fmt.css_class,
                        },
                    }
                    for cell in row
                ]
                for row in self.grid
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> WebTable:
        """Inverse of :meth:`to_dict`."""
        grid = [
            [
                Cell(
                    text=str(c["t"]),
                    fmt=CellFormat(
                        is_th=bool(c["f"]["th"]),
                        bold=bool(c["f"]["b"]),
                        italic=bool(c["f"]["i"]),
                        underline=bool(c["f"]["u"]),
                        code=bool(c["f"]["c"]),
                        header_tag=bool(c["f"]["h"]),
                        background=str(c["f"]["bg"]),
                        css_class=str(c["f"]["cls"]),
                    ),
                )
                for c in row
            ]
            for row in data["grid"]
        ]
        return cls(
            grid=grid,
            num_title_rows=int(data["num_title_rows"]),
            num_header_rows=int(data["num_header_rows"]),
            context=[ContextSnippet(str(t), float(s)) for t, s in data["context"]],
            url=str(data["url"]),
            table_id=str(data["table_id"]),
            page_title=str(data.get("page_title", "")),
        )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[str]],
        header: Optional[Sequence[str]] = None,
        **kwargs: Any,
    ) -> WebTable:
        """Convenience constructor from plain string rows.

        >>> t = WebTable.from_rows([["a", "1"]], header=["Name", "Rank"])
        >>> t.num_header_rows, t.num_body_rows
        (1, 1)
        """
        grid: List[List[Cell]] = []
        num_header = 0
        if header is not None:
            grid.append([Cell(h, CellFormat(is_th=True)) for h in header])
            num_header = 1
        for row in rows:
            grid.append([Cell(str(v)) for v in row])
        return cls(grid=grid, num_header_rows=num_header, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WebTable(id={self.table_id!r}, {self.num_rows}x{self.num_cols}, "
            f"titles={self.num_title_rows}, headers={self.num_header_rows})"
        )
