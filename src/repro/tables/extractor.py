"""Extracting data tables from crawled HTML pages (Section 2.1).

The ``<table>`` tag is mostly used for layout: on the paper's 500M-page
crawl only ~10% of table tags held relational data.  This module converts
``<table>`` elements into :class:`~repro.tables.table.WebTable` grids and
applies the layout/artifact rejection heuristics, recording a reason for
every rejection so the corpus census benchmark can report the same yield
statistics as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..html.dom import ElementNode
from .context import extract_context
from .headers import detect_header_rows
from .table import Cell, CellFormat, WebTable

__all__ = ["ExtractionCensus", "extract_grid", "is_data_table", "extract_tables"]

_EMPHASIS_BY_TAG = {
    "b": "bold", "strong": "bold",
    "i": "italic", "em": "italic",
    "u": "underline",
    "code": "code",
}
_FORM_TAGS = frozenset({"input", "select", "button", "textarea", "form"})


@dataclass
class ExtractionCensus:
    """Counts gathered while extracting a corpus, mirroring Section 2.1."""

    table_tags: int = 0
    data_tables: int = 0
    rejected: dict = field(default_factory=dict)
    header_row_histogram: dict = field(default_factory=dict)

    def record_rejection(self, reason: str) -> None:
        """Count one rejected candidate."""
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_headers(self, num_header_rows: int) -> None:
        """Count one accepted table's header-row count."""
        key = min(num_header_rows, 3)  # 3 == "more than two"
        self.header_row_histogram[key] = self.header_row_histogram.get(key, 0) + 1

    @property
    def yield_fraction(self) -> float:
        """Fraction of table tags that were data tables (~10% in the paper)."""
        return self.data_tables / self.table_tags if self.table_tags else 0.0


def _cell_format(cell_el: ElementNode) -> CellFormat:
    """Derive :class:`CellFormat` from a ``<td>``/``<th>`` element."""
    tags = set()
    header_tag = False
    for node in cell_el.iter_descendants():
        if isinstance(node, ElementNode):
            if node.tag in _EMPHASIS_BY_TAG:
                tags.add(_EMPHASIS_BY_TAG[node.tag])
            if node.tag in {"h1", "h2", "h3", "h4", "h5", "h6"}:
                header_tag = True
    style = cell_el.get_attr("style")
    background = cell_el.get_attr("bgcolor") or (
        "style" if "background" in style else ""
    )
    return CellFormat(
        is_th=cell_el.tag == "th",
        bold="bold" in tags,
        italic="italic" in tags,
        underline="underline" in tags,
        code="code" in tags,
        header_tag=header_tag,
        background=background,
        css_class=cell_el.get_attr("class"),
    )


def extract_grid(table_el: ElementNode) -> List[List[Cell]]:
    """Turn a ``<table>`` element into a rectangular cell grid.

    ``colspan`` is honoured by repeating the cell's text into the first slot
    and padding the remainder with empty cells (keeps columns aligned without
    duplicating content); ``rowspan`` is ignored — rare in data tables and
    harmless for the clues the mapper uses.  Nested tables contribute no
    cells to the outer grid.
    """
    rows: List[List[Cell]] = []
    for tr in table_el.find_all("tr"):
        # Skip rows belonging to a nested table.
        owner = next(
            (anc for anc in tr.ancestors() if anc.tag == "table"), None
        )
        if owner is not table_el:
            continue
        cells: List[Cell] = []
        for cell_el in tr.child_elements():
            if cell_el.tag not in ("td", "th"):
                continue
            text = cell_el.text_content()
            fmt = _cell_format(cell_el)
            cells.append(Cell(text=text, fmt=fmt))
            try:
                span = int(cell_el.get_attr("colspan", "1"))
            except ValueError:
                span = 1
            for _ in range(max(0, min(span, 20) - 1)):
                cells.append(Cell(text="", fmt=fmt))
        if cells:
            rows.append(cells)
    width = max((len(r) for r in rows), default=0)
    for row in rows:
        row.extend(Cell() for _ in range(width - len(row)))
    return rows


def is_data_table(
    table_el: ElementNode, grid: Optional[List[List[Cell]]] = None
) -> Tuple[bool, str]:
    """Apply the relational-data heuristics of Section 2.1.

    Returns ``(accepted, reason)`` where ``reason`` names the failed test for
    rejected candidates (``"ok"`` otherwise).
    """
    if grid is None:
        grid = extract_grid(table_el)

    # Forms / interactive widgets are never data tables.
    for node in table_el.iter_descendants():
        if isinstance(node, ElementNode) and node.tag in _FORM_TAGS:
            return False, "form"
        if isinstance(node, ElementNode) and node.tag == "table":
            return False, "nested"

    if len(grid) < 2:
        return False, "too_few_rows"
    width = len(grid[0])
    if width < 2:
        return False, "single_column"

    cells = [c for row in grid for c in row]
    non_empty = [c for c in cells if not c.is_empty()]
    if not non_empty or len(non_empty) < 0.5 * len(cells):
        return False, "mostly_empty"

    # Calendars: wide grids of small day numbers.
    numeric_small = [
        c for c in non_empty
        if c.is_numeric() and 0 <= _to_float(c.text) <= 31 and len(c.text.strip()) <= 2
    ]
    if width >= 5 and len(numeric_small) >= 0.8 * len(non_empty):
        return False, "calendar"

    # Layout tables: paragraph-sized cells.
    avg_chars = sum(len(c.text) for c in non_empty) / len(non_empty)
    if avg_chars > 200:
        return False, "layout_long_cells"

    # Layout tables: wildly ragged rows.  Rows with at most one non-empty
    # cell are title/banner rows and split header rows may be sparse, so we
    # require a dominant modal width rather than uniform widths.
    raw_widths = [sum(1 for c in row if not c.is_empty()) for row in grid]
    body_widths = [w for w in raw_widths if w > 1]
    if body_widths:
        mode_count = max(body_widths.count(w) for w in set(body_widths))
        if mode_count < 0.6 * len(body_widths):
            return False, "ragged"

    # Lists-in-disguise: almost no distinct values.
    distinct = {c.text.strip().lower() for c in non_empty}
    if len(distinct) < 3:
        return False, "degenerate_content"

    return True, "ok"


def _to_float(text: str) -> float:
    try:
        return float(text.strip().replace(",", ""))
    except ValueError:
        return -1.0


def extract_tables(
    root: ElementNode,
    url: str = "",
    id_prefix: str = "t",
    census: Optional[ExtractionCensus] = None,
) -> List[WebTable]:
    """Extract all data tables from a parsed page.

    Runs the full Section 2.1 pipeline per candidate: grid conversion,
    data-table filtering, title/header detection, and context extraction.
    """
    page_title_el = root.find_first("title")
    page_title = page_title_el.text_content() if page_title_el is not None else ""

    out: List[WebTable] = []
    for idx, table_el in enumerate(root.find_all("table")):
        if census is not None:
            census.table_tags += 1
        grid = extract_grid(table_el)
        ok, reason = is_data_table(table_el, grid)
        if not ok:
            if census is not None:
                census.record_rejection(reason)
            continue
        num_title, num_header = detect_header_rows(grid)
        if len(grid) - num_title - num_header < 1:
            if census is not None:
                census.record_rejection("no_body_rows")
            continue
        context = extract_context(root, table_el)
        table = WebTable(
            grid=grid,
            num_title_rows=num_title,
            num_header_rows=num_header,
            context=context,
            url=url,
            table_id=f"{id_prefix}{idx}",
            page_title=page_title,
        )
        if census is not None:
            census.data_tables += 1
            census.record_headers(num_header)
        out.append(table)
    return out
