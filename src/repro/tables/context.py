"""Context extraction (Section 2.1.2).

The *context* of a table is the text in its parent document that says what
the table is about.  The paper is generous about inclusion and instead
attaches a score to each snippet:

* candidate snippets are the text nodes that are **siblings of nodes on the
  path** from the table node to the document root;
* the score combines (1) the tree edge distance between the snippet and the
  table plus whether the snippet precedes (left sibling) or follows (right
  sibling) the table, and (2) the relative frequency of formatting tags
  (headings, bold, ...) attached to the snippet — a bolded heading right
  above the table is the strongest context there is.

The exact combination formula is unspecified in the paper ("we skip
details"); we use a product of a distance decay, a side factor, and a
format boost, normalized to [0, 1] — the downstream features only consume
the *relative* ordering of snippet scores.
"""

from __future__ import annotations

from typing import List

from ..html.dom import DomNode, ElementNode, FORMAT_TAGS, TextNode
from .table import ContextSnippet

__all__ = ["extract_context", "MAX_SNIPPET_CHARS"]

#: Snippets longer than this are truncated; contexts are clue text, not body.
MAX_SNIPPET_CHARS = 400

#: Left siblings (text before the table) tend to be captions/introductions;
#: right siblings are more often unrelated trailing matter.
_LEFT_FACTOR = 1.0
_RIGHT_FACTOR = 0.7


def _format_tag_count(node: DomNode) -> int:
    """Number of formatting tags on/inside the subtree holding ``node``."""
    if isinstance(node, ElementNode):
        count = 1 if node.tag in FORMAT_TAGS else 0
        count += sum(
            1
            for d in node.iter_descendants()
            if isinstance(d, ElementNode) and d.tag in FORMAT_TAGS
        )
        return count
    parent = node.parent
    if parent is not None and parent.tag in FORMAT_TAGS:
        return 1
    return 0


def _snippet_text(node: DomNode) -> str:
    """Visible text of a candidate sibling node."""
    if isinstance(node, TextNode):
        return node.text.strip()
    if isinstance(node, ElementNode):
        if node.tag in ("script", "style", "table"):
            return ""
        return node.text_content().strip()
    return ""


def extract_context(
    root: ElementNode, table_el: ElementNode, max_snippets: int = 12
) -> List[ContextSnippet]:
    """Extract scored context snippets for ``table_el`` inside ``root``.

    Snippets are returned ordered by decreasing score, at most
    ``max_snippets`` of them.
    """
    total_format_tags = max(
        1,
        sum(
            1
            for d in root.iter_descendants()
            if isinstance(d, ElementNode) and d.tag in FORMAT_TAGS
        ),
    )

    candidates: List[ContextSnippet] = []
    seen_texts = set()

    path = table_el.path_to_root()
    for distance_up, path_node in enumerate(path[:-1]):  # exclude root itself
        parent = path_node.parent
        if parent is None:
            break
        try:
            position = parent.children.index(path_node)
        except ValueError:  # pragma: no cover - defensive
            continue
        for sibling_idx, sibling in enumerate(parent.children):
            if sibling is path_node:
                continue
            if isinstance(sibling, ElementNode) and (
                sibling.tag == "table" or sibling.find_first("table") is not None
            ):
                continue  # other tables are candidates themselves, not context
            text = _snippet_text(sibling)
            if not text or text in seen_texts:
                continue
            seen_texts.add(text)

            # (1) distance + side: one edge up per path level, one sideways.
            edge_distance = distance_up + 1 + abs(sibling_idx - position) * 0
            side = _LEFT_FACTOR if sibling_idx < position else _RIGHT_FACTOR
            distance_decay = 1.0 / (1.0 + edge_distance)

            # (2) formatting boost relative to the document's tag usage.
            fmt = _format_tag_count(sibling)
            fmt_boost = 1.0 + min(1.0, 4.0 * fmt / total_format_tags)

            score = min(1.0, distance_decay * side * fmt_boost)
            candidates.append(
                ContextSnippet(text=text[:MAX_SNIPPET_CHARS], score=score)
            )

    candidates.sort(key=lambda s: -s.score)
    return candidates[:max_snippets]
