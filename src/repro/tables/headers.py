"""Title/header/body row detection (Section 2.1.1).

Only 20% of web tables use the ``<th>`` tag; the rest mark headers with
visual cues.  The paper's heuristic scans rows from the top: rows that are
*different* from most of the rows below them — in formatting (bold, italics,
underline, capitalization, code, header tags), layout (background color, CSS
classes) or content (textual row over a numeric body, character counts) —
form the title/header prefix.  A different row whose text is concentrated in
a single cell is a *title*; otherwise it is a *header*.  Subsequent rows stay
headers while they resemble the first header row and keep differing from the
rows below.  The scan stops at the first row that fails the test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .table import Cell

__all__ = ["RowSignature", "row_signature", "detect_header_rows", "MAX_HEADER_ROWS"]

#: Safety cap; the paper reports 5% of tables with more than two header rows,
#: and nothing meaningful beyond four.
MAX_HEADER_ROWS = 4


@dataclass(frozen=True)
class RowSignature:
    """Per-row aggregate of the formatting/layout/content cues."""

    frac_th: float
    frac_emphasis: float  # bold/italic/underline/code/header-tag
    frac_capitalized: float
    frac_numeric: float
    frac_empty: float
    has_layout: bool  # background color or css class on any cell
    avg_chars: float
    non_empty_cells: int


def row_signature(row: Sequence[Cell]) -> RowSignature:
    """Compute the :class:`RowSignature` of one row.

    Emphasis/markup fractions are taken over *non-empty* cells so that a
    single-cell title row (all other cells empty, e.g. via colspan padding)
    still registers as fully emphasized.
    """
    n = max(len(row), 1)
    non_empty = [c for c in row if not c.is_empty()]
    denom = max(len(non_empty), 1)
    return RowSignature(
        frac_th=sum(c.fmt.is_th for c in non_empty) / denom,
        frac_emphasis=sum(
            (c.fmt.bold or c.fmt.italic or c.fmt.underline or c.fmt.code
             or c.fmt.header_tag)
            for c in non_empty
        ) / denom,
        frac_capitalized=sum(c.is_capitalized() for c in non_empty) / denom,
        frac_numeric=sum(c.is_numeric() for c in non_empty) / denom,
        frac_empty=sum(c.is_empty() for c in row) / n,
        has_layout=any(c.fmt.background or c.fmt.css_class for c in row),
        avg_chars=sum(len(c.text) for c in non_empty) / denom,
        non_empty_cells=len(non_empty),
    )


def _majority(values: Sequence[float], threshold: float) -> bool:
    """True when more than half of ``values`` exceed ``threshold``."""
    if not values:
        return False
    return sum(v > threshold for v in values) * 2 > len(values)


def _differs_from_below(sig: RowSignature, below: Sequence[RowSignature]) -> bool:
    """Does this row look different from *most* rows below it?

    Mirrors the three cue families of Section 2.1.1: formatting, layout,
    content.
    """
    if not below:
        return False
    # Formatting: th cells or emphasis present here but not in the majority
    # of body rows.
    if sig.frac_th >= 0.5 and not _majority([b.frac_th for b in below], 0.49):
        return True
    if sig.frac_emphasis >= 0.5 and not _majority(
        [b.frac_emphasis for b in below], 0.49
    ):
        return True
    # Layout: a colored/classed band over an unstyled body.
    if sig.has_layout and sum(b.has_layout for b in below) * 2 <= len(below):
        return True
    # Content: textual header over a numeric body ...
    if sig.frac_numeric < 0.25 and _majority([b.frac_numeric for b in below], 0.5):
        return True
    # ... or a much shorter/sparser banner row.
    below_chars = sorted(b.avg_chars for b in below)
    median_chars = below_chars[len(below_chars) // 2]
    if median_chars > 0 and sig.avg_chars < 0.34 * median_chars and sig.frac_capitalized >= 0.99:
        return True
    return False


def _is_title_row(row: Sequence[Cell]) -> bool:
    """A *different* row is a title when its text sits in a single cell.

    (Figure 1's Table 3 — "Forest reserves" spanning the full width — is the
    canonical example.)
    """
    non_empty = [c for c in row if not c.is_empty()]
    return len(non_empty) <= 1


def _similar_headers(a: RowSignature, b: RowSignature) -> bool:
    """Are two candidate header rows alike enough to be one multi-row header?"""
    return (
        abs(a.frac_th - b.frac_th) <= 0.5
        and abs(a.frac_emphasis - b.frac_emphasis) <= 0.5
        and a.has_layout == b.has_layout
        and abs(a.frac_numeric - b.frac_numeric) <= 0.5
    )


def detect_header_rows(grid: Sequence[Sequence[Cell]]) -> Tuple[int, int]:
    """Classify the leading rows of ``grid``.

    Returns ``(num_title_rows, num_header_rows)``.  Tables with a single row
    get ``(0, 0)`` — a lone row cannot be distinguished from a body.
    """
    n = len(grid)
    if n <= 1:
        return 0, 0

    sigs: List[RowSignature] = [row_signature(row) for row in grid]

    num_title = 0
    i = 0
    # Title rows: different from below AND text concentrated in one cell.
    while i < n - 1 and num_title < 2:
        if _differs_from_below(sigs[i], sigs[i + 1 :]) and _is_title_row(grid[i]):
            num_title += 1
            i += 1
        else:
            break

    num_header = 0
    first_header_sig = None
    while i < n - 1 and num_header < MAX_HEADER_ROWS:
        sig = sigs[i]
        if not _differs_from_below(sig, sigs[i + 1 :]):
            break
        if _is_title_row(grid[i]) and num_header == 0:
            break  # a second banner row after titles, not a header
        if first_header_sig is None:
            first_header_sig = sig
        elif not _similar_headers(first_header_sig, sig):
            break
        num_header += 1
        i += 1

    return num_title, num_header
