"""Web-table substrate: model, extraction, header detection, context."""

from .context import extract_context
from .extractor import ExtractionCensus, extract_grid, extract_tables, is_data_table
from .headers import detect_header_rows, row_signature
from .table import Cell, CellFormat, ContextSnippet, WebTable

__all__ = [
    "Cell",
    "CellFormat",
    "ContextSnippet",
    "ExtractionCensus",
    "WebTable",
    "detect_header_rows",
    "extract_context",
    "extract_grid",
    "extract_tables",
    "is_data_table",
    "row_signature",
]
