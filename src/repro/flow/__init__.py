"""Flow substrate: residual networks, matching, cuts.

Everything Section 4 of the paper needs: min-cost max-flow with a live
residual graph (Fig. 3), capacitated bipartite matching (§4.1), and the
constrained minimum s-t cut (Fig. 4).
"""

from .bipartite import BipartiteMatcher, MatchingResult
from .constrained_cut import constrained_min_cut
from .network import EPS, FlowNetwork

__all__ = [
    "EPS",
    "BipartiteMatcher",
    "FlowNetwork",
    "MatchingResult",
    "constrained_min_cut",
]
