"""The constrained minimum s-t cut of Section 4.3 (Fig. 4).

Given a weighted directed graph whose vertices are partitioned into disjoint
groups ``V_1..V_T`` (the columns of each table), find a minimum s-t cut such
that **at most one vertex per group lies on the t side**.  The unconstrained
problem is polynomial; this variant is NP-hard, and the paper gives the
greedy repair loop implemented here:

1. solve the unconstrained min cut;
2. while some group has two or more t-side vertices, try — for every violated
   group ``V_i`` and every member ``v`` — forcing all of ``V_i - {v}`` to the
   s side (infinite source capacity) and measure the *additional* flow that
   forcing costs; commit the cheapest ``(i, v)`` choice and repeat.

The trial flows are computed on clones of the residual network so the
committed state stays incremental (max-flow resumes from the current flow).
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from .network import EPS, FlowNetwork

__all__ = ["constrained_min_cut"]

INF = float("inf")


def _source_edge_ids(net: FlowNetwork, s: int) -> Dict[int, int]:
    """Map node -> id of the edge s -> node (first one found)."""
    out: Dict[int, int] = {}
    for eid in net.adj[s]:
        if eid % 2 == 0:  # forward edges only
            out.setdefault(net.to[eid], eid)
    return out


def constrained_min_cut(
    net: FlowNetwork,
    s: int,
    t: int,
    groups: Sequence[Sequence[int]],
) -> Tuple[Set[int], float]:
    """Run Fig. 4's constrained min s-t cut on ``net`` (mutated in place).

    Parameters
    ----------
    net:
        Flow network with capacities set; flow state is consumed/modified.
    groups:
        Disjoint vertex groups; at most one member of each may end on the
        t side.
    Returns
    -------
    (t_side, total_flow):
        The t-side vertex set of the final cut and the total flow pushed.
    """
    seen: Set[int] = set()
    for group in groups:
        for v in group:
            if v in seen:
                raise ValueError("groups must be disjoint")
            seen.add(v)

    total_flow = net.max_flow(s, t)
    s_side = net.source_side(s)
    t_side = set(range(net.num_nodes)) - s_side

    source_edges = _source_edge_ids(net, s)

    def force_and_flow(network: FlowNetwork, members: Sequence[int]) -> float:
        """Raise cap(s, u) to infinity for ``members`` and push more flow."""
        for u in members:
            eid = source_edges.get(u)
            if eid is None:
                # No existing s->u edge: add one (recorded only on clones;
                # the committed network adds it permanently below).
                eid = network.add_edge(s, u, INF, 0.0)
            else:
                network.set_capacity(eid, INF)
        return network.max_flow(s, t)

    max_iterations = sum(len(g) for g in groups) + 1
    for _ in range(max_iterations):
        violated = [
            (gi, [v for v in group if v in t_side])
            for gi, group in enumerate(groups)
        ]
        violated = [(gi, members) for gi, members in violated if len(members) > 1]
        if not violated:
            break

        best: Tuple[float, int, int] = (INF, -1, -1)  # (added flow, group, keep v)
        for gi, members in violated:
            for v in members:
                trial = net.clone()
                added = force_and_flow(trial, [u for u in members if u != v])
                if added < best[0] - EPS:
                    best = (added, gi, v)

        _, gi, keep = best
        members = [v for v in groups[gi] if v in t_side and v != keep]
        # Commit: force the losers to the s side on the real network.
        for u in members:
            eid = source_edges.get(u)
            if eid is None:
                eid = net.add_edge(s, u, INF, 0.0)
                source_edges[u] = eid
            else:
                net.set_capacity(eid, INF)
        total_flow += net.max_flow(s, t)
        s_side = net.source_side(s)
        t_side = set(range(net.num_nodes)) - s_side

    return t_side, total_flow
