"""Flow network with explicit residual edges.

All of Section 4's machinery — max-weight bipartite matching (§4.1),
max-marginals over the residual graph (§4.2.3, Fig. 3), min s-t cuts and the
constrained-cut loop (§4.3, Fig. 4) — runs on this one structure.  Edges are
stored in pairs: edge ``e`` and ``e ^ 1`` are mutual reverses, so residual
bookkeeping is index arithmetic.

Capacities and costs are floats; comparisons use a small epsilon because
potentials are real-valued similarity scores.
"""

from __future__ import annotations

import math

from typing import Dict, List, Optional, Set, Tuple

__all__ = ["EPS", "FlowNetwork"]

EPS = 1e-9


class FlowNetwork:
    """A directed flow network supporting costs, cuts, and cloning."""

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        # Parallel edge arrays; edge i and i^1 are reverses of each other.
        self.to: List[int] = []
        self.cap: List[float] = []
        self.cost: List[float] = []
        self.flow: List[float] = []
        self.adj: List[List[int]] = [[] for _ in range(num_nodes)]

    # -- construction -----------------------------------------------------------

    def add_node(self) -> int:
        """Add a node; returns its id."""
        self.adj.append([])
        self.num_nodes += 1
        return self.num_nodes - 1

    def add_edge(self, u: int, v: int, cap: float, cost: float = 0.0) -> int:
        """Add edge ``u -> v``; returns the forward edge id.

        The reverse edge (id ``^1``) is created with zero capacity and
        negated cost, as the residual formulation requires.
        """
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise IndexError("edge endpoint out of range")
        if cap < 0:
            raise ValueError("capacity must be non-negative")
        eid = len(self.to)
        self.to.append(v)
        self.cap.append(cap)
        self.cost.append(cost)
        self.flow.append(0.0)
        self.adj[u].append(eid)
        self.to.append(u)
        self.cap.append(0.0)
        self.cost.append(-cost)
        self.flow.append(0.0)
        self.adj[v].append(eid + 1)
        return eid

    def edge_tail(self, eid: int) -> int:
        """Tail (source node) of edge ``eid``."""
        return self.to[eid ^ 1]

    def residual(self, eid: int) -> float:
        """Residual capacity of edge ``eid``."""
        return self.cap[eid] - self.flow[eid]

    def push(self, eid: int, amount: float) -> None:
        """Push ``amount`` of flow along edge ``eid`` (and its reverse)."""
        self.flow[eid] += amount
        self.flow[eid ^ 1] -= amount

    def set_capacity(self, eid: int, cap: float) -> None:
        """Raise/lower an edge capacity (used by the constrained-cut loop)."""
        self.cap[eid] = cap

    def clone(self) -> FlowNetwork:
        """Deep copy (topology + current flow)."""
        other = FlowNetwork(self.num_nodes)
        other.to = list(self.to)
        other.cap = list(self.cap)
        other.cost = list(self.cost)
        other.flow = list(self.flow)
        other.adj = [list(a) for a in self.adj]
        return other

    # -- max flow (costs ignored) -------------------------------------------------

    def max_flow(self, s: int, t: int, limit: float = math.inf) -> float:
        """Edmonds–Karp augmentation from the *current* flow state.

        Returns the amount of flow added (so it can be called again after
        capacity changes, which is exactly what Fig. 4 needs).
        """
        total = 0.0
        while total < limit - EPS:
            parent_edge = self._bfs_augmenting_path(s, t)
            if parent_edge is None:
                break
            bottleneck = limit - total
            v = t
            while v != s:
                eid = parent_edge[v]
                bottleneck = min(bottleneck, self.residual(eid))
                v = self.edge_tail(eid)
            v = t
            while v != s:
                eid = parent_edge[v]
                self.push(eid, bottleneck)
                v = self.edge_tail(eid)
            total += bottleneck
        return total

    def _bfs_augmenting_path(self, s: int, t: int) -> Optional[Dict[int, int]]:
        """BFS in the residual graph; returns parent-edge map or None."""
        parent_edge: Dict[int, int] = {}
        visited = [False] * self.num_nodes
        visited[s] = True
        queue = [s]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for eid in self.adj[u]:
                v = self.to[eid]
                if not visited[v] and self.residual(eid) > EPS:
                    visited[v] = True
                    parent_edge[v] = eid
                    if v == t:
                        return parent_edge
                    queue.append(v)
        return None

    def source_side(self, s: int) -> Set[int]:
        """Nodes reachable from ``s`` in the residual graph (the s-side)."""
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            for eid in self.adj[u]:
                v = self.to[eid]
                if v not in seen and self.residual(eid) > EPS:
                    seen.add(v)
                    stack.append(v)
        return seen

    def min_cut(self, s: int, t: int) -> Tuple[float, Set[int]]:
        """Run max-flow and return ``(cut value, t-side nodes)``."""
        value = self.max_flow(s, t)
        s_side = self.source_side(s)
        t_side = set(range(self.num_nodes)) - s_side
        return value, t_side

    # -- shortest paths over residual edges -----------------------------------------

    def residual_shortest_paths(self, src: int) -> List[float]:
        """Bellman–Ford distances from ``src`` using residual edges only.

        Edge costs may be negative (reverse edges of matched pairs); residual
        graphs of min-cost flows contain no negative cycles, so Bellman–Ford
        converges in ``num_nodes - 1`` rounds.  Used by Fig. 3's
        max-marginal computation.
        """
        inf = float("inf")
        dist = [inf] * self.num_nodes
        dist[src] = 0.0
        for _ in range(self.num_nodes - 1):
            changed = False
            for u in range(self.num_nodes):
                du = dist[u]
                if du == inf:
                    continue
                for eid in self.adj[u]:
                    if self.residual(eid) > EPS:
                        v = self.to[eid]
                        nd = du + self.cost[eid]
                        if nd < dist[v] - EPS:
                            dist[v] = nd
                            changed = True
            if not changed:
                break
        return dist

    # -- min-cost max-flow ---------------------------------------------------------

    def min_cost_max_flow(self, s: int, t: int) -> Tuple[float, float]:
        """Successive-shortest-paths min-cost max-flow.

        Returns ``(total flow, total cost)``.  Augments along Bellman–Ford
        shortest (cost) paths, which keeps the residual graph free of
        negative cycles — the invariant Fig. 3 relies on.

        Precondition: the input graph has no negative-cost *directed
        cycle*.  Negative edge costs are fine (matching reductions negate
        weights); all graphs built in Section 4 are DAGs plus source/sink,
        so the precondition holds by construction.
        """
        total_flow = 0.0
        total_cost = 0.0
        while True:
            dist, parent_edge = self._bellman_ford_path(s)
            if dist[t] == float("inf"):
                break
            bottleneck = float("inf")
            v = t
            while v != s:
                eid = parent_edge[v]
                bottleneck = min(bottleneck, self.residual(eid))
                v = self.edge_tail(eid)
            if bottleneck <= EPS or bottleneck == float("inf"):
                break
            v = t
            while v != s:
                eid = parent_edge[v]
                self.push(eid, bottleneck)
                total_cost += bottleneck * self.cost[eid]
                v = self.edge_tail(eid)
            total_flow += bottleneck
        return total_flow, total_cost

    def _bellman_ford_path(self, s: int) -> Tuple[List[float], Dict[int, int]]:
        """Bellman–Ford with parent-edge tracking over residual edges."""
        inf = float("inf")
        dist = [inf] * self.num_nodes
        parent_edge: Dict[int, int] = {}
        dist[s] = 0.0
        in_queue = [False] * self.num_nodes
        queue = [s]
        in_queue[s] = True
        head = 0
        rounds = 0
        max_rounds = self.num_nodes * max(1, len(self.to))
        while head < len(queue) and rounds < max_rounds:
            u = queue[head]
            head += 1
            in_queue[u] = False
            rounds += 1
            for eid in self.adj[u]:
                if self.residual(eid) > EPS:
                    v = self.to[eid]
                    nd = dist[u] + self.cost[eid]
                    if nd < dist[v] - EPS:
                        dist[v] = nd
                        parent_edge[v] = eid
                        if not in_queue[v]:
                            queue.append(v)
                            in_queue[v] = True
        return dist, parent_edge
