"""Capacitated max-weight bipartite matching (Sections 4.1–4.2.3).

The table-independent inference step reduces column labeling to a
generalized maximum matching: columns on the left, labels on the right,
node capacities enforcing mutex/min-match, solved as min-cost max-flow
(§4.2.1).  The matcher keeps its residual network alive after solving so
Fig. 3's max-marginals — "optimum under a forced assignment (c, l)" — can
be read off with one Bellman–Ford pass per right node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .network import EPS, FlowNetwork

__all__ = ["MatchingResult", "BipartiteMatcher"]

NEG_INF = float("-inf")


class MatchingResult:
    """Outcome of a matching solve."""

    __slots__ = ("pairs", "total_weight")

    def __init__(self, pairs: List[Tuple[int, int]], total_weight: float) -> None:
        self.pairs = pairs
        self.total_weight = total_weight

    def right_of(self, left: int) -> Optional[int]:
        """The right node matched to ``left``, if any."""
        for l, r in self.pairs:
            if l == left:
                return r
        return None


class BipartiteMatcher:
    """Max-weight matching between capacitated left and right node sets.

    Parameters
    ----------
    weights:
        Dense ``len(left_caps) x len(right_caps)`` weight matrix; weights may
        be negative (the matching must still saturate left capacity — flow
        maximization comes first, exactly as in the paper's reduction).
    left_caps, right_caps:
        Non-negative integer capacities per node.
    """

    def __init__(
        self,
        weights: Sequence[Sequence[float]],
        left_caps: Sequence[int],
        right_caps: Sequence[int],
    ) -> None:
        self.weights = [list(row) for row in weights]
        self.left_caps = list(left_caps)
        self.right_caps = list(right_caps)
        if len(self.weights) != len(self.left_caps):
            raise ValueError("weights rows must match left_caps")
        for row in self.weights:
            if len(row) != len(self.right_caps):
                raise ValueError("weights columns must match right_caps")
        if any(c < 0 for c in self.left_caps + self.right_caps):
            raise ValueError("capacities must be non-negative")

        self._network: Optional[FlowNetwork] = None
        self._left_nodes: List[int] = []
        self._right_nodes: List[int] = []
        self._lr_edges: Dict[Tuple[int, int], int] = {}
        self._result: Optional[MatchingResult] = None

    # -- solving -----------------------------------------------------------

    def solve(self) -> MatchingResult:
        """Build the flow network, run min-cost max-flow, extract matching."""
        n_left, n_right = len(self.left_caps), len(self.right_caps)
        total_left = sum(self.left_caps)
        total_right = sum(self.right_caps)

        net = FlowNetwork(2)  # 0 = source, 1 = sink
        s, t = 0, 1
        self._left_nodes = [net.add_node() for _ in range(n_left)]
        self._right_nodes = [net.add_node() for _ in range(n_right)]

        for i, u in enumerate(self._left_nodes):
            net.add_edge(s, u, float(self.left_caps[i]), 0.0)
        for j, v in enumerate(self._right_nodes):
            net.add_edge(v, t, float(self.right_caps[j]), 0.0)
        for i, u in enumerate(self._left_nodes):
            for j, v in enumerate(self._right_nodes):
                cap = float(min(self.left_caps[i], self.right_caps[j]))
                if cap <= 0:
                    continue
                eid = net.add_edge(u, v, cap, -self.weights[i][j])
                self._lr_edges[(i, j)] = eid

        # Balance the two sides with a dummy node on the deficient side
        # (§4.2.1) so max flow saturates every real capacity.
        if total_right > total_left:
            dummy = net.add_node()
            net.add_edge(s, dummy, float(total_right - total_left), 0.0)
            for j, v in enumerate(self._right_nodes):
                if self.right_caps[j] > 0:
                    net.add_edge(dummy, v, float(self.right_caps[j]), 0.0)
        elif total_left > total_right:
            dummy = net.add_node()
            net.add_edge(dummy, t, float(total_left - total_right), 0.0)
            for i, u in enumerate(self._left_nodes):
                if self.left_caps[i] > 0:
                    net.add_edge(u, dummy, float(self.left_caps[i]), 0.0)

        net.min_cost_max_flow(s, t)
        self._network = net

        pairs: List[Tuple[int, int]] = []
        total_weight = 0.0
        for (i, j), eid in self._lr_edges.items():
            if net.flow[eid] > EPS:
                pairs.append((i, j))
                total_weight += self.weights[i][j] * round(net.flow[eid])
        pairs.sort()
        self._result = MatchingResult(pairs, total_weight)
        return self._result

    # -- max-marginals (Fig. 3) -----------------------------------------------

    def max_marginals(self) -> List[List[float]]:
        """All-pairs forced-assignment optima.

        ``mm[i][j]`` is the best total matching weight subject to left ``i``
        being matched to right ``j``; ``-inf`` when infeasible.  Requires
        :meth:`solve` to have run.  Implements Fig. 3: one Bellman–Ford pass
        from each right node over the final residual graph, then
        ``Opt - d(j, i) - cost(i, j)``.
        """
        if self._network is None or self._result is None:
            raise RuntimeError("call solve() before max_marginals()")
        net = self._network
        opt = self._result.total_weight
        n_left, n_right = len(self.left_caps), len(self.right_caps)

        mm = [[NEG_INF] * n_right for _ in range(n_left)]
        for j in range(n_right):
            if self.right_caps[j] == 0:
                continue
            dist = net.residual_shortest_paths(self._right_nodes[j])
            for i in range(n_left):
                eid = self._lr_edges.get((i, j))
                if eid is None:
                    continue
                if net.flow[eid] > EPS:
                    # (i, j) already in the optimum.
                    mm[i][j] = opt
                    continue
                d = dist[self._left_nodes[i]]
                if d == float("inf"):
                    continue
                # cost(i, j) = -weight; mm = Opt - d(j,i) - cost(i,j).
                mm[i][j] = opt - d - (-self.weights[i][j])
        return mm

    @property
    def network(self) -> FlowNetwork:
        """The underlying flow network (after :meth:`solve`)."""
        if self._network is None:
            raise RuntimeError("call solve() first")
        return self._network
