"""Duplicate-row detection for the consolidator (Section 2.2.3).

The paper delegates row resolution to Gupta & Sarawagi [9]; any sound
resolver preserves the pipeline, so we use the standard recipe: rows whose
*subject* cells agree after normalization are duplicates when their
remaining cells are compatible (equal after normalization, token-similar,
or one side empty).
"""

from __future__ import annotations

from typing import Sequence

from ..text.tokenize import normalize_cell, tokenize

__all__ = ["cells_compatible", "rows_duplicate", "subject_key"]

#: Token-Jaccard at or above this makes two non-equal cells compatible.
_CELL_SIM_THRESHOLD = 0.6


def subject_key(value: str) -> str:
    """Normalization key of a subject cell."""
    return normalize_cell(value)


def cells_compatible(a: str, b: str) -> bool:
    """Can two cells describe the same fact?

    Empty cells are wildcards; otherwise normalized equality or high token
    overlap.
    """
    na, nb = normalize_cell(a), normalize_cell(b)
    if not na or not nb:
        return True
    if na == nb:
        return True
    ta, tb = set(tokenize(a)), set(tokenize(b))
    if not ta or not tb:
        return True
    inter = len(ta & tb)
    union = len(ta | tb)
    return union > 0 and inter / union >= _CELL_SIM_THRESHOLD


def rows_duplicate(
    row_a: Sequence[str],
    row_b: Sequence[str],
    subject_col: int = 0,
) -> bool:
    """Are two projected answer rows duplicates?

    Requires matching (non-empty) subject cells and compatibility in every
    other position.
    """
    if len(row_a) != len(row_b):
        return False
    key_a = subject_key(row_a[subject_col])
    key_b = subject_key(row_b[subject_col])
    if not key_a or not key_b or key_a != key_b:
        return False
    return all(
        cells_compatible(row_a[i], row_b[i])
        for i in range(len(row_a))
        if i != subject_col
    )
