"""Consolidation: merging mapped tables into the single answer table."""

from .dedup import cells_compatible, rows_duplicate, subject_key
from .merge import AnswerRow, AnswerTable, consolidate
from .ranker import rank_answer, rank_rows

__all__ = [
    "AnswerRow",
    "AnswerTable",
    "cells_compatible",
    "consolidate",
    "rank_answer",
    "rank_rows",
    "rows_duplicate",
    "subject_key",
]
