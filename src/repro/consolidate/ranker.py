"""The ranker (Section 2.2.3): order consolidated rows.

"Brings more relevant and highly supported rows on top": rows are ordered
by support (number of contributing tables), then source-table relevance,
then completeness (fraction of filled cells), with the subject key as the
deterministic tie-break.
"""

from __future__ import annotations

from typing import List

from .dedup import subject_key
from .merge import AnswerRow, AnswerTable

__all__ = ["rank_rows", "rank_answer"]


def _completeness(row: AnswerRow) -> float:
    if not row.cells:
        return 0.0
    return sum(1 for c in row.cells if c.strip()) / len(row.cells)


def rank_rows(rows: List[AnswerRow]) -> List[AnswerRow]:
    """Return rows sorted best-first."""
    return sorted(
        rows,
        key=lambda r: (
            -r.support,
            -r.relevance,
            -_completeness(r),
            subject_key(r.cells[0]) if r.cells else "",
        ),
    )


def rank_answer(answer: AnswerTable) -> AnswerTable:
    """Sort the answer's rows in place and return it."""
    answer.rows = rank_rows(answer.rows)
    return answer
