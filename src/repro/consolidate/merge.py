"""The consolidator (Section 2.2.3): merge mapped tables into one answer.

Given the column mapper's output — relevant tables with per-column query
labels and confidence scores — project each relevant table onto the query's
columns, merge duplicate rows (filling empty cells from duplicates), and
track per-row support for the ranker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..query.model import Query
from ..tables.table import WebTable
from .dedup import rows_duplicate, subject_key

__all__ = ["AnswerRow", "AnswerTable", "consolidate"]


@dataclass
class AnswerRow:
    """One consolidated answer row."""

    cells: List[str]
    support: int = 1  # how many source tables contributed this row
    source_tables: List[str] = field(default_factory=list)
    relevance: float = 0.0  # best source-table relevance score

    def merge(self, cells: Sequence[str], table_id: str, relevance: float) -> None:
        """Fold a duplicate occurrence into this row."""
        for i, value in enumerate(cells):
            if not self.cells[i].strip() and value.strip():
                self.cells[i] = value
        self.support += 1
        if table_id not in self.source_tables:
            self.source_tables.append(table_id)
        self.relevance = max(self.relevance, relevance)


@dataclass
class AnswerTable:
    """The consolidated multi-column answer."""

    query: Query
    rows: List[AnswerRow] = field(default_factory=list)
    source_table_ids: List[str] = field(default_factory=list)

    @property
    def num_rows(self) -> int:
        """Number of consolidated rows."""
        return len(self.rows)

    def header(self) -> List[str]:
        """Column headers (the query's keyword sets)."""
        return list(self.query.columns)

    def as_lists(self) -> List[List[str]]:
        """Plain list-of-rows view."""
        return [list(row.cells) for row in self.rows]


def consolidate(
    query: Query,
    tables: Sequence[WebTable],
    mappings: Mapping[int, Mapping[int, int]],
    relevance_scores: Optional[Mapping[int, float]] = None,
) -> AnswerTable:
    """Merge relevant tables into one answer table.

    ``mappings`` maps table index -> {table column -> 1-based query column}
    (only relevant tables should appear).  Duplicate rows merge; empty
    projected rows are dropped.
    """
    answer = AnswerTable(query=query)
    by_key: Dict[str, List[int]] = {}

    for ti, mapping in sorted(mappings.items()):
        if not mapping:
            continue
        table = tables[ti]
        relevance = (relevance_scores or {}).get(ti, 1.0)
        answer.source_table_ids.append(table.table_id)
        inverse = {qc - 1: tc for tc, qc in mapping.items()}
        for row in table.body_rows():
            # A mapping referencing a column beyond this row's width (a
            # ragged source, or a stale mapping after table edits)
            # projects as an empty cell rather than an IndexError.
            cells = [
                row[inverse[l]].text
                if l in inverse and inverse[l] < len(row) else ""
                for l in range(query.q)
            ]
            if not any(c.strip() for c in cells):
                continue
            key = subject_key(cells[0])
            merged = False
            for idx in by_key.get(key, []):
                if rows_duplicate(answer.rows[idx].cells, cells):
                    answer.rows[idx].merge(cells, table.table_id, relevance)
                    merged = True
                    break
            if not merged:
                answer.rows.append(
                    AnswerRow(
                        cells=list(cells),
                        support=1,
                        source_tables=[table.table_id],
                        relevance=relevance,
                    )
                )
                by_key.setdefault(key, []).append(len(answer.rows) - 1)
    return answer
