"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query``    answer a column-keyword query against a generated corpus
``batch``    answer many queries through the service (caching + fan-out)
``corpus``   generate a corpus and print its census / save the table store
``index``    ``build`` a persisted (optionally sharded) corpus; ``add``
             journal new tables into it; ``compact`` fold the journal into
             fresh snapshots; ``info`` describe it; ``verify`` scrub every
             shard offline (checksums + full decode, exit 1 on corruption);
             ``repair`` re-derive corrupt index snapshots from each shard's
             intact ``tables.jsonl``
``eval``     run one or more methods over the 59-query workload
``workload`` list the workload queries with their Table 1 statistics
``serve``    expose the service over HTTP/JSON (see DESIGN.md,
             "Serving layer"): ``repro serve --index DIR --port 8080
             --workers 4 --queue-depth 64 --rate-limit 50`` starts the
             :class:`repro.serve.ReproServer` front door with admission
             control and per-request deadlines; Ctrl-C drains and exits

``query`` and ``batch`` are fronted by :class:`repro.service.WWTService`;
``--config`` loads a JSON :class:`~repro.service.EngineConfig`, and
``--index`` serves a corpus persisted by ``index build`` instead of
generating one.  ``query --trace`` prints the execution span tree
(stage, ms, skipped/degraded markers) and ``batch --deadline-ms``
serves every query under a wall-clock budget with graceful degradation
(see DESIGN.md, "Execution engine").  The incremental flow is
``index build`` once, then
``index add`` as new tables arrive, then ``index compact`` when the
journal is deep (see DESIGN.md, "Incremental updates")::

    python -m repro index build --out corpus-dir --num-shards 4
    python -m repro index add corpus-dir --scale 0.05 --prefix live-
    python -m repro index compact corpus-dir
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from .corpus.generator import CorpusConfig, generate_corpus
from .evaluation.harness import METHODS, build_environment, run_method
from .exec.context import wall_clock
from .index.builder import read_manifest
from .inference import REGISTRY
from .query.workload import WORKLOAD
from .serve import ReproServer, ServeConfig
from .service import EngineConfig, QueryRequest, WWTService

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WWT reproduction: table queries with column keywords",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_service_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.4,
                       help="corpus scale factor (default 0.4)")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--inference", default="table-centric",
                       choices=REGISTRY.names())
        p.add_argument("--config", metavar="PATH", default=None,
                       help="JSON EngineConfig file (overrides --inference)")
        p.add_argument("--index", metavar="DIR", default=None,
                       help="serve a persisted corpus directory "
                            "(see 'index build') instead of generating one")
        p.add_argument("--parallel-mode", default=None,
                       choices=("serial", "thread", "process"),
                       help="sharded scatter execution: 'serial', "
                            "'thread' (config default), or 'process' "
                            "(spawned workers, each mmap-ing its own "
                            "shard; needs a persisted corpus via "
                            "--index). Rankings are identical across "
                            "modes (see DESIGN.md)")

    query = sub.add_parser("query", help="answer a column-keyword query")
    query.add_argument("text", help='e.g. "country | currency"')
    add_service_options(query)
    query.add_argument("--rows", type=int, default=15,
                       help="answer rows to print (page size)")
    query.add_argument("--page", type=int, default=1,
                       help="1-based page of answer rows")
    query.add_argument("--explain", action="store_true",
                       help="print the probe/mapping explain payload")
    query.add_argument("--trace", action="store_true",
                       help="print the execution span tree (stage, ms, "
                            "degraded markers)")

    batch = sub.add_parser(
        "batch", help="answer many queries via the service (batch + cache)"
    )
    batch.add_argument("texts", nargs="+", metavar="QUERY",
                       help='queries, e.g. "country | currency" "dog breed"')
    add_service_options(batch)
    batch.add_argument("--repeat", type=int, default=1,
                       help="repeat the query list N times (cache demo)")
    batch.add_argument("--workers", type=int, default=None,
                       help="thread-pool width (default: config max_workers)")
    batch.add_argument("--deadline-ms", type=float, default=None,
                       help="per-query wall-clock budget in ms; queries "
                            "that exceed it return degraded partial "
                            "answers (see DESIGN.md, 'Execution engine')")

    index = sub.add_parser(
        "index", help="build / inspect a persisted (sharded) corpus"
    )
    isub = index.add_subparsers(dest="index_command", required=True)
    build = isub.add_parser(
        "build", help="generate, shard, and persist a corpus directory"
    )
    build.add_argument("--out", metavar="DIR", required=True,
                       help="output corpus directory")
    build.add_argument("--scale", type=float, default=1.0,
                       help="corpus scale factor (default 1.0)")
    build.add_argument("--seed", type=int, default=42)
    build.add_argument("--num-shards", type=int, default=None,
                       help="hash-partition across N shards "
                            "(default: monolithic single index)")
    build.add_argument("--format", choices=("json", "bin"), default="bin",
                       help="shard snapshot format: 'bin' (version-3 "
                            "binary columnar, mmap'd + lazily loaded; the "
                            "default) or 'json' (version-2 layout)")
    build.add_argument("--tables", type=int, default=None, metavar="N",
                       help="build from N fast synthetic tables (zipfian "
                            "sizes, domain mixing) streamed straight to "
                            "disk in O(shard) memory, instead of the "
                            "HTML-extraction corpus shaped by --scale")
    build.add_argument("--parallel-mode", default=None,
                       choices=("serial", "thread", "process"),
                       help="after the build, reopen the corpus in this "
                            "scatter mode and run a one-query smoke "
                            "probe (process = spawned per-shard workers)")
    build.add_argument("--stream", action="store_true",
                       help="stream the extraction corpus to disk in "
                            "O(shard) memory (implied by --tables)")
    add = isub.add_parser(
        "add", help="generate fresh tables and journal them into a corpus"
    )
    add.add_argument("path", metavar="DIR", help="corpus directory")
    add.add_argument("--scale", type=float, default=0.05,
                     help="scale of the freshly generated stream "
                          "(default 0.05)")
    add.add_argument("--seed", type=int, default=7)
    add.add_argument("--prefix", default="live-",
                     help="table-id prefix for the new tables; page ids "
                          "are deterministic, so a distinct prefix keeps "
                          "them from colliding with the built corpus "
                          "(default 'live-')")
    compact = isub.add_parser(
        "compact", help="fold the journal into fresh shard snapshots"
    )
    compact.add_argument("path", metavar="DIR", help="corpus directory")
    compact.add_argument("--format", choices=("json", "bin"), default="bin",
                         help="snapshot format to rewrite in (default "
                              "'bin'; compacting a version-2 directory "
                              "upgrades it)")
    info = isub.add_parser("info", help="describe a persisted corpus")
    info.add_argument("path", metavar="DIR", help="corpus directory")
    verify = isub.add_parser(
        "verify", help="offline scrub: checksum + decode every shard "
                       "(exit 1 on corruption)"
    )
    verify.add_argument("path", metavar="DIR", help="corpus directory")
    verify.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON")
    repair = isub.add_parser(
        "repair", help="re-derive corrupt index snapshots from each "
                       "shard's intact tables.jsonl"
    )
    repair.add_argument("path", metavar="DIR", help="corpus directory")
    repair.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON")

    corpus = sub.add_parser("corpus", help="generate a corpus, print census")
    corpus.add_argument("--scale", type=float, default=1.0)
    corpus.add_argument("--seed", type=int, default=42)
    corpus.add_argument("--save", metavar="PATH", default=None,
                        help="write the table store as JSON-lines")

    evaluate = sub.add_parser("eval", help="run methods over the workload")
    evaluate.add_argument("--methods", nargs="+", default=["basic", "wwt"],
                          choices=list(METHODS))
    evaluate.add_argument("--scale", type=float, default=1.0)
    evaluate.add_argument("--seed", type=int, default=42)

    sub.add_parser("workload", help="list the 59 workload queries")

    serve = sub.add_parser(
        "serve", help="serve queries over HTTP/JSON with admission control"
    )
    add_service_options(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default loopback)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 binds an ephemeral port")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads draining the request queue")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="bounded request-queue depth (full -> 429)")
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="per-client sustained rate in req/s "
                            "(default: no rate limiting)")
    serve.add_argument("--burst", type=int, default=10,
                       help="per-client token-bucket burst capacity")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline in ms; requests "
                            "over budget shed to degraded answers "
                            "(see DESIGN.md, 'Serving layer')")
    serve.add_argument("--execution-mode", default="thread",
                       choices=("thread", "async"),
                       help="queued-request execution: a pool of "
                            "--workers threads (default) or one asyncio "
                            "event loop running --workers concurrent "
                            "query tasks (pairs with --parallel-mode "
                            "process)")
    return parser


def _build_service(args: argparse.Namespace) -> WWTService:
    """Corpus + EngineConfig -> service, honoring --config/--inference/--index.

    Corpus precedence: ``--index DIR`` (persisted corpus), then the
    config's ``index_path``, then a freshly generated synthetic corpus.
    """
    if args.config:
        with open(args.config, encoding="utf-8") as fh:
            config = EngineConfig.from_dict(json.load(fh))
    else:
        config = EngineConfig(inference=args.inference)
    if getattr(args, "deadline_ms", None) is not None:
        config = config.replace(deadline_ms=args.deadline_ms)
    if getattr(args, "parallel_mode", None) is not None:
        config = config.replace(parallel_mode=args.parallel_mode)
        if args.parallel_mode == "process" and not (
            args.index or config.index_path
        ):
            raise ValueError(
                "--parallel-mode process needs a persisted corpus: pass "
                "--index DIR (see 'repro index build')"
            )
    def _warn_ignored_corpus_flags(source: str) -> None:
        # A persisted corpus has its scale/seed baked in; flags that shape
        # a generated corpus silently doing nothing would be a footgun.
        if args.scale != 0.4 or args.seed != 42:
            print(
                f"note: serving persisted corpus from {source}; "
                "--scale/--seed only affect generated corpora and were "
                "ignored",
                file=sys.stderr,
            )

    if args.index:
        _warn_ignored_corpus_flags(args.index)
        return WWTService(args.index, config)
    if config.index_path:
        _warn_ignored_corpus_flags(config.index_path)
        return WWTService(config=config)
    synthetic = generate_corpus(
        CorpusConfig(seed=args.seed, scale=args.scale),
        num_shards=config.num_shards,
        probe_workers=config.probe_workers,
    )
    return WWTService(synthetic.corpus, config)


def _cmd_query(args: argparse.Namespace, out: TextIO) -> int:
    service = _build_service(args)
    # Explain is always computed (it is cheap) so the summary line can show
    # candidate counts; the full payload prints only under --explain.
    request = QueryRequest.parse(
        args.text, page=args.page, page_size=args.rows, explain=True
    )
    response = service.answer(request)
    print(f"query: {response.query}", file=out)
    explain = response.explain or {}
    degraded = "  DEGRADED" if response.degraded else ""
    print(
        f"candidates: {explain.get('num_candidates', '?')}  "
        f"algorithm: {response.algorithm}  "
        f"time: {response.timing.total:.2f}s{degraded}",
        file=out,
    )
    if args.trace and response.trace is not None:
        print("\ntrace:", file=out)
        for line in response.trace.format_tree(indent=1):
            print(line, file=out)
        print("", file=out)
    header = response.header
    print(" | ".join(header), file=out)
    print("-" * (sum(len(h) for h in header) + 3 * len(header)), file=out)
    for row in response.rows:
        print(" | ".join(row.cells) + f"   (x{row.support})", file=out)
    print(
        f"page {response.page}/{response.num_pages} "
        f"({response.total_rows} rows total)",
        file=out,
    )
    if args.explain:
        print("\nexplain:", file=out)
        print(json.dumps(explain, indent=2, default=str), file=out)
    return 0


def _cmd_batch(args: argparse.Namespace, out: TextIO) -> int:
    service = _build_service(args)
    requests = [
        QueryRequest.parse(text)
        for _ in range(max(1, args.repeat))
        for text in args.texts
    ]
    responses = service.answer_batch(requests, max_workers=args.workers)
    for response in responses:
        marker = "cache" if response.cache_hit else f"{response.served_in:.3f}s"
        degraded = "  (degraded)" if response.degraded else ""
        print(
            f"[{marker:>8}] {str(response.query):<44} "
            f"{response.total_rows:>4} rows{degraded}",
            file=out,
        )
    stats = service.stats()
    cache = stats.result_cache
    print(
        f"\n{stats.queries} queries in {stats.total_time:.2f}s — "
        f"result cache: {cache.hits} hits / {cache.misses} misses "
        f"({cache.hit_rate:.0%})",
        file=out,
    )
    if args.deadline_ms is not None:
        print(
            f"deadline {args.deadline_ms:g}ms: "
            f"{stats.deadline_hits} deadline hits, "
            f"{stats.degraded_answers} degraded answers",
            file=out,
        )
    return 0


def _cmd_corpus(args: argparse.Namespace, out: TextIO) -> int:
    synthetic = generate_corpus(CorpusConfig(seed=args.seed, scale=args.scale))
    census = synthetic.census
    print(f"pages: {len(synthetic.pages)}", file=out)
    print(f"data tables: {synthetic.num_tables} "
          f"({census.yield_fraction:.0%} of table tags)", file=out)
    total = sum(census.header_row_histogram.values())
    for k in sorted(census.header_row_histogram):
        count = census.header_row_histogram[k]
        label = {0: "no header", 1: "1 header row", 2: "2 header rows",
                 3: ">2 header rows"}[k]
        print(f"  {label:<15} {count:>5}  ({count / total:.0%})", file=out)
    if args.save:
        synthetic.corpus.store.save(args.save)
        print(f"table store written to {args.save}", file=out)
    return 0


def _index_smoke_probe(path: str, mode: str, out: TextIO) -> None:
    """Reopen a freshly built corpus in scatter mode ``mode``, probe once.

    The probe terms come from the first table's own header, so the query
    is guaranteed to hit the index regardless of how the corpus was
    generated.  For ``mode="process"`` this also proves the persisted
    layout round-trips through spawned workers before anyone serves it.
    """
    from .index.sharded import load_corpus
    from .text.tokenize import tokenize

    with load_corpus(path, probe_workers=2, parallel_mode=mode) as corpus:
        ids = corpus.ids()
        if not ids:
            print("smoke probe skipped: empty corpus", file=out)
            return
        table = corpus.get_table(ids[0])
        terms: List[str] = []
        for row in table.header_rows():
            for cell in row:
                terms.extend(tokenize(cell.text))
        terms = list(dict.fromkeys(terms))[:3]
        if not terms:
            print("smoke probe skipped: first table has no header terms",
                  file=out)
            return
        t0 = wall_clock()
        hits = corpus.search(terms, limit=5)
        probe_ms = (wall_clock() - t0) * 1000.0
        print(
            f"smoke probe ({mode} scatter): {len(hits)} hits for "
            f"{' '.join(terms)!r} in {probe_ms:.1f}ms", file=out,
        )


def _cmd_index(args: argparse.Namespace, out: TextIO) -> int:
    if args.index_command == "build":
        kind = "monolithic" if args.num_shards is None else (
            f"{args.num_shards}-shard"
        )
        if args.tables is not None or args.stream:
            # Streaming build: tables go straight to the staged shard
            # files, one shard in memory at a time (build_corpus_stream);
            # counts come from the written manifest, not a reload.
            from .corpus.generator import iter_synthetic_tables, iter_tables
            from .index.builder import build_corpus_stream

            tables = (
                iter_synthetic_tables(args.tables, seed=args.seed)
                if args.tables is not None
                else iter_tables(CorpusConfig(seed=args.seed,
                                              scale=args.scale))
            )
            t0 = wall_clock()
            build_corpus_stream(
                tables, args.out, num_shards=args.num_shards,
                index_format=args.format,
            )
            build_s = wall_clock() - t0
            manifest = read_manifest(args.out)
            print(
                f"{manifest['num_tables']} tables -> {kind} corpus at "
                f"{args.out} (format {args.format}, streamed)", file=out,
            )
            print(f"stream+index+persist {build_s:.2f}s", file=out)
            if args.parallel_mode is not None:
                _index_smoke_probe(args.out, args.parallel_mode, out)
            return 0
        t0 = wall_clock()
        synthetic = generate_corpus(
            CorpusConfig(seed=args.seed, scale=args.scale),
            num_shards=args.num_shards,
        )
        corpus = synthetic.corpus
        generate_s = wall_clock() - t0
        t0 = wall_clock()
        corpus.save(args.out, index_format=args.format)
        persist_s = wall_clock() - t0
        print(f"{corpus.num_tables} tables -> {kind} corpus at {args.out}",
              file=out)
        if args.num_shards is not None:
            print(f"shard sizes: {corpus.shard_sizes()}", file=out)
        print(f"generate+index {generate_s:.2f}s, persist {persist_s:.2f}s",
              file=out)
        if args.parallel_mode is not None:
            _index_smoke_probe(args.out, args.parallel_mode, out)
        return 0

    if args.index_command == "add":
        from .corpus.generator import iter_tables
        from .index.sharded import load_corpus

        with load_corpus(args.path) as corpus:
            t0 = wall_clock()
            tables = list(iter_tables(
                CorpusConfig(seed=args.seed, scale=args.scale),
                id_prefix=args.prefix,
            ))
            generate_s = wall_clock() - t0
            t0 = wall_clock()
            corpus.add_tables(tables)
            append_s = wall_clock() - t0
            print(f"journaled {len(tables)} tables into {args.path} "
                  f"(generate {generate_s:.2f}s, append {append_s:.2f}s)",
                  file=out)
            print(f"num_tables: {corpus.num_tables}", file=out)
            print(f"journal_depth: {corpus.journal_depth}", file=out)
        return 0

    if args.index_command == "compact":
        from .index.sharded import load_corpus

        with load_corpus(args.path) as corpus:
            t0 = wall_clock()
            folded = corpus.compact(index_format=args.format)
            compact_s = wall_clock() - t0
            print(f"folded {folded} journal records into fresh snapshots "
                  f"at {args.path} in {compact_s:.2f}s", file=out)
            print(f"num_tables: {corpus.num_tables}", file=out)
            print(f"journal_depth: {corpus.journal_depth}", file=out)
        return 0

    if args.index_command in ("verify", "repair"):
        from .index.scrub import repair_corpus, verify_corpus

        if args.index_command == "verify":
            report = verify_corpus(args.path)
        else:
            report = repair_corpus(args.path)
        if args.as_json:
            print(json.dumps(report.to_dict(), indent=2), file=out)
        else:
            print(
                f"{args.path}: {report.shards_checked} shards checked",
                file=out,
            )
            for name in report.repaired:
                print(f"  repaired {name}: index snapshot re-derived from "
                      "tables.jsonl", file=out)
            for issue in report.issues:
                where = issue.shard or "corpus"
                flag = " [repairable]" if issue.repairable else ""
                print(f"  {where} {issue.kind}{flag}: {issue.message}",
                      file=out)
            if report.ok:
                print("  ok: every artifact verified", file=out)
        # Verify reports corruption through the exit code (scriptable);
        # repair fails only when unrepairable damage remains.
        return 0 if report.ok else 1

    # `index info` prints the on-disk spec's field names verbatim
    # (DESIGN.md, "On-disk corpus format, version 2") so the output can be
    # checked against the spec mechanically.
    from .index.journal import journal_depth_on_disk

    manifest = read_manifest(args.path)
    for key in ("format", "version", "kind", "num_shards", "num_tables",
                "journal_seq"):
        print(f"{key}: {manifest[key]}", file=out)
    print(f"journal_depth: {journal_depth_on_disk(args.path, manifest)}",
          file=out)
    print(f"boosts: {manifest['boosts']}", file=out)
    total_bytes = sum(
        f.stat().st_size for f in Path(args.path).rglob("*") if f.is_file()
    )
    for entry in manifest["shards"]:
        detail = ""
        if "index_bytes" in entry:
            detail = (
                f", index {entry['index_bytes']} bytes "
                f"(crc32 {entry['index_crc32']:#010x})"
            )
        print(f"  {entry['dir']}: {entry['num_tables']} tables{detail}",
              file=out)
    print(f"size on disk: {total_bytes / 1024:.0f} KiB", file=out)
    return 0


def _cmd_eval(args: argparse.Namespace, out: TextIO) -> int:
    env = build_environment(scale=args.scale, seed=args.seed)
    print(f"corpus: {env.synthetic.num_tables} tables; "
          f"{len(env.queries)} queries", file=out)
    for method in args.methods:
        run = run_method(env, method)
        print(f"{method:<18} mean F1 error {run.mean_error():6.2f}%", file=out)
    return 0


def _build_server(args: argparse.Namespace) -> ReproServer:
    """Service + ServeConfig -> an unstarted server (exposed for tests)."""
    service = _build_service(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate_limit=args.rate_limit,
        rate_burst=args.burst,
        default_deadline_ms=args.deadline_ms,
        execution_mode=args.execution_mode,
    )
    return ReproServer(service, config)


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    server = _build_server(args).start()
    try:
        # The real bound port (--port 0 binds an ephemeral one), flushed
        # eagerly so a parent process can scrape it and start talking.
        print(f"serving on http://{server.host}:{server.port}", file=out)
        out.flush()
        server.wait()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight work)", file=out)
    finally:
        server.shutdown()
    return 0


def _cmd_workload(args: argparse.Namespace, out: TextIO) -> int:
    print(f"{'query':<60} {'cols':>4} {'paper rel/total':>16}", file=out)
    for wq in WORKLOAD:
        print(
            f"{wq.query_id:<60} {wq.query.q:>4} "
            f"{wq.paper_relevant:>8}/{wq.paper_total}",
            file=out,
        )
    return 0


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """CLI entry point; returns an exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "batch": _cmd_batch,
        "corpus": _cmd_corpus,
        "index": _cmd_index,
        "eval": _cmd_eval,
        "workload": _cmd_workload,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args, out)
    except (ValueError, OSError) as exc:
        # Bad query text, invalid --page/--rows, unreadable/invalid
        # --config files, or a DeadlineExceeded under degraded_ok=False
        # (TimeoutError, which OSError already covers): a CLI error
        # line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
