"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query``    answer a column-keyword query against a generated corpus
``corpus``   generate a corpus and print its census / save the table store
``eval``     run one or more methods over the 59-query workload
``workload`` list the workload queries with their Table 1 statistics
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .corpus.generator import CorpusConfig, generate_corpus
from .evaluation.harness import METHODS, build_environment, run_method
from .pipeline.wwt import WWTEngine
from .query.model import Query
from .query.workload import WORKLOAD

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WWT reproduction: table queries with column keywords",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer a column-keyword query")
    query.add_argument("text", help='e.g. "country | currency"')
    query.add_argument("--scale", type=float, default=0.4,
                       help="corpus scale factor (default 0.4)")
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--rows", type=int, default=15,
                       help="answer rows to print")
    query.add_argument("--inference", default="table-centric",
                       choices=("none", "table-centric", "alpha-expansion",
                                "bp", "trws"))

    corpus = sub.add_parser("corpus", help="generate a corpus, print census")
    corpus.add_argument("--scale", type=float, default=1.0)
    corpus.add_argument("--seed", type=int, default=42)
    corpus.add_argument("--save", metavar="PATH", default=None,
                        help="write the table store as JSON-lines")

    evaluate = sub.add_parser("eval", help="run methods over the workload")
    evaluate.add_argument("--methods", nargs="+", default=["basic", "wwt"],
                          choices=list(METHODS))
    evaluate.add_argument("--scale", type=float, default=1.0)
    evaluate.add_argument("--seed", type=int, default=42)

    sub.add_parser("workload", help="list the 59 workload queries")
    return parser


def _cmd_query(args: argparse.Namespace, out) -> int:
    synthetic = generate_corpus(CorpusConfig(seed=args.seed, scale=args.scale))
    engine = WWTEngine(synthetic.corpus, inference=args.inference)
    query = Query.parse(args.text)
    result = engine.answer(query)
    print(f"query: {query}", file=out)
    print(
        f"candidates: {result.probe.num_candidates}  "
        f"relevant tables: {len(result.mapping.relevant_tables())}  "
        f"time: {result.timing.total:.2f}s",
        file=out,
    )
    header = result.answer.header()
    print(" | ".join(header), file=out)
    print("-" * (sum(len(h) for h in header) + 3 * len(header)), file=out)
    for row in result.answer.rows[: args.rows]:
        print(" | ".join(row.cells) + f"   (x{row.support})", file=out)
    return 0


def _cmd_corpus(args: argparse.Namespace, out) -> int:
    synthetic = generate_corpus(CorpusConfig(seed=args.seed, scale=args.scale))
    census = synthetic.census
    print(f"pages: {len(synthetic.pages)}", file=out)
    print(f"data tables: {synthetic.num_tables} "
          f"({census.yield_fraction:.0%} of table tags)", file=out)
    total = sum(census.header_row_histogram.values())
    for k in sorted(census.header_row_histogram):
        count = census.header_row_histogram[k]
        label = {0: "no header", 1: "1 header row", 2: "2 header rows",
                 3: ">2 header rows"}[k]
        print(f"  {label:<15} {count:>5}  ({count / total:.0%})", file=out)
    if args.save:
        synthetic.corpus.store.save(args.save)
        print(f"table store written to {args.save}", file=out)
    return 0


def _cmd_eval(args: argparse.Namespace, out) -> int:
    env = build_environment(scale=args.scale, seed=args.seed)
    print(f"corpus: {env.synthetic.num_tables} tables; "
          f"{len(env.queries)} queries", file=out)
    for method in args.methods:
        run = run_method(env, method)
        print(f"{method:<18} mean F1 error {run.mean_error():6.2f}%", file=out)
    return 0


def _cmd_workload(args: argparse.Namespace, out) -> int:
    print(f"{'query':<60} {'cols':>4} {'paper rel/total':>16}", file=out)
    for wq in WORKLOAD:
        print(
            f"{wq.query_id:<60} {wq.query.q:>4} "
            f"{wq.paper_relevant:>8}/{wq.paper_total}",
            file=out,
        )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns an exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "corpus": _cmd_corpus,
        "eval": _cmd_eval,
        "workload": _cmd_workload,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
