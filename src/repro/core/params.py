"""Model parameters (Section 3.4) and their grid training.

The objective has six trainable parameters: feature weights ``w1..w3``
(SegSim, Cover, PMI²), the irrelevance weight ``w4``, the negative bias
``w5``, and the edge weight ``w_e``.  The paper trains them by exhaustive
enumeration on a labeled workload ("since we had only six parameters, we
were able to find the best values through exhaustive enumeration") —
:func:`enumerate_grid` reproduces that procedure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Tuple

__all__ = ["ModelParams", "DEFAULT_PARAMS", "UNSEGMENTED_PARAMS", "enumerate_grid", "train_parameters"]


@dataclass(frozen=True)
class ModelParams:
    """The six weights of Eq. 3/4 plus feature-provider switches.

    Defaults are the grid-trained optimum on a training corpus generated
    with a different seed than the evaluation corpus (see
    ``repro.evaluation.tuning``), mirroring the paper's training procedure.
    """

    w1: float = 1.4  # SegSim weight
    w2: float = 0.3  # Cover weight
    w3: float = 0.0  # PMI² weight (WWT leaves PMI² off by default, §5.1)
    w4: float = 0.65  # nr (irrelevance) weight
    w5: float = -0.45  # bias against weak query-column matches
    we: float = 1.1  # edge weight
    #: Use the segmented similarity (False = the Fig. 8 unsegmented ablation).
    use_segmented: bool = True
    #: Confidence threshold for edge gating (Section 3.3).
    confidence_threshold: float = 0.6

    def with_values(self, **kwargs: Any) -> ModelParams:
        """Copy with some weights replaced."""
        return replace(self, **kwargs)


#: Defaults tuned by grid enumeration on the synthetic workload.
DEFAULT_PARAMS = ModelParams()

#: The unsegmented ablation re-trained for its similarity (Section 5.2).
UNSEGMENTED_PARAMS = ModelParams(
    use_segmented=False, w1=1.0, w2=0.45, w4=0.65, w5=-0.2, we=1.1
)


def enumerate_grid(
    w1_grid: Sequence[float] = (0.5, 1.0, 1.5),
    w2_grid: Sequence[float] = (0.0, 0.3, 0.6),
    w3_grid: Sequence[float] = (0.0,),
    w4_grid: Sequence[float] = (0.3, 0.6, 0.9),
    w5_grid: Sequence[float] = (-0.4, -0.25, -0.1),
    we_grid: Sequence[float] = (0.4, 0.8),
    base: ModelParams = DEFAULT_PARAMS,
) -> Iterator[ModelParams]:
    """Yield every parameter combination on the grid."""
    for w1, w2, w3, w4, w5, we in itertools.product(
        w1_grid, w2_grid, w3_grid, w4_grid, w5_grid, we_grid
    ):
        yield base.with_values(w1=w1, w2=w2, w3=w3, w4=w4, w5=w5, we=we)


def train_parameters(
    evaluate: Callable[[ModelParams], float],
    grid: Optional[Iterable[ModelParams]] = None,
) -> Tuple[ModelParams, float]:
    """Exhaustive-enumeration training.

    ``evaluate`` maps a parameter setting to a workload error (lower is
    better); returns the best setting and its error.  Deterministic: ties
    break toward the earlier grid point.
    """
    best_params: Optional[ModelParams] = None
    best_error = float("inf")
    for params in grid if grid is not None else enumerate_grid():
        error = evaluate(params)
        if error < best_error:
            best_error = error
            best_params = params
    if best_params is None:
        raise ValueError("empty parameter grid")
    return best_params, best_error
