"""Segmented similarity: SegSim and Cover (Sections 3.2.1-3.2.2, Eq. 1).

The paper's key similarity innovation.  Instead of matching the whole query
column string ``Q_l`` against each table field separately, ``Q_l`` is split
into a contiguous prefix and suffix; one part is pinned to a specific header
row of the column (``inSim``), the other gathers support from the rest of
the table (``outSim``): the title, the context, other header rows of the
column, other columns' headers in the same row, and frequent body tokens.

``outSim`` weighs matches by per-part reliabilities
``(p_T, p_C, p_Hc, p_Hr, p_B)`` and combines multi-part matches through a
noisy-OR (soft-max), so each extra match helps with exponentially decaying
influence.

``Cover`` is the same maximization with ``inSim`` replaced by the weighted
fraction of prefix tokens found in the header — the "query fraction matched"
feature.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from ..text.tokenize import tokenize

__all__ = [
    "Reliabilities", "DEFAULT_RELIABILITIES", "TablePartIndex",
    "segmented_similarity", "unsegmented_similarity",
]

#: Part keys, in the paper's order {T, C, Hc, Hr, B}.
_PARTS = ("T", "C", "Hc", "Hr", "B")


@dataclass(frozen=True)
class Reliabilities:
    """Per-part match reliabilities p_i of Section 3.2.1."""

    title: float = 1.0
    context: float = 0.9
    other_header_rows: float = 0.5
    other_columns: float = 1.0
    body: float = 0.8

    def of(self, part: str) -> float:
        """Reliability of a part key in {T, C, Hc, Hr, B}."""
        return {
            "T": self.title, "C": self.context, "Hc": self.other_header_rows,
            "Hr": self.other_columns, "B": self.body,
        }[part]


#: The values the paper estimated empirically on its workload.
DEFAULT_RELIABILITIES = Reliabilities()

#: A body token is "frequent content" when it appears in at least this
#: fraction of some column's body cells (and at least twice).
_BODY_FREQ_THRESHOLD = 0.25


class TablePartIndex:
    """Precomputed token sets of one table's parts, per (header row, column).

    Building the part sets once per table makes the max over all
    segmentations cheap; the index is reused across all q query columns.
    """

    def __init__(self, table: WebTable, stats: Optional[TermStatistics] = None) -> None:
        self.table = table
        self.stats = stats
        self.num_header_rows = table.num_header_rows
        self.num_cols = table.num_cols

        # header_tokens[r][c] -> token set of header cell (r, c)
        self.header_tokens: List[List[List[str]]] = [
            [tokenize(row[c].text) for c in range(self.num_cols)]
            for row in table.header_rows()
        ]
        self.title_tokens: Set[str] = set(tokenize(table.title_text()))
        self.title_tokens.update(tokenize(table.page_title))
        self.context_tokens: Set[str] = set(table.context_tokens())
        self.body_tokens: Set[str] = self._frequent_body_tokens(table)

    @staticmethod
    def _frequent_body_tokens(table: WebTable) -> Set[str]:
        """Tokens appearing frequently in the body of *some* column."""
        frequent: Set[str] = set()
        n_rows = max(table.num_body_rows, 1)
        for c in range(table.num_cols):
            counts: Counter = Counter()
            for row in table.body_rows():
                for tok in set(tokenize(row[c].text)):  # reprolint: disable=R003 -- integer increments commute; no float accumulation
                    counts[tok] += 1
            for tok, cnt in counts.items():
                if cnt >= 2 and cnt >= _BODY_FREQ_THRESHOLD * n_rows:
                    frequent.add(tok)
        return frequent

    def header_set(self, row: int, col: int) -> Set[str]:
        """Token set of header cell (row, col)."""
        return set(self.header_tokens[row][col])

    def out_parts(self, row: int, col: int) -> Dict[str, Set[str]]:
        """The five out-part token sets for a pinned (row, col) header."""
        other_rows: Set[str] = set()
        for r in range(self.num_header_rows):
            if r != row:
                other_rows.update(self.header_tokens[r][col])
        other_cols: Set[str] = set()
        for c in range(self.num_cols):
            if c != col:
                other_cols.update(self.header_tokens[row][c])
        return {
            "T": self.title_tokens,
            "C": self.context_tokens,
            "Hc": other_rows,
            "Hr": other_cols,
            "B": self.body_tokens,
        }


def _weights(tokens: Sequence[str], stats: Optional[TermStatistics]) -> List[float]:
    if stats is None:
        return [1.0] * len(tokens)
    return [stats.idf(t) for t in tokens]


def _cosine_to_set(
    tokens: Sequence[str],
    weights: Sequence[float],
    header: Set[str],
    header_tokens: Sequence[str],
    stats: Optional[TermStatistics],
) -> float:
    """TF-IDF cosine between a token sequence and a header token list."""
    if not tokens or not header_tokens:
        return 0.0
    # Proper TF-IDF vector norms: weight of term = tf * idf, so repeated
    # tokens contribute (count * idf)^2, not count * idf^2.
    q_counts = Counter(tokens)
    q_weight_by_tok = {t: w for t, w in zip(tokens, weights)}
    q_norm2 = sum(
        (cnt * q_weight_by_tok[t]) ** 2 for t, cnt in q_counts.items()  # reprolint: disable=R003 -- Counter insertion order is the query's token order, fixed by the input
    )
    h_counts = Counter(header_tokens)
    h_weight_by_tok = {
        t: w for t, w in zip(header_tokens, _weights(header_tokens, stats))
    }
    h_norm2 = sum(
        (cnt * h_weight_by_tok[t]) ** 2 for t, cnt in h_counts.items()  # reprolint: disable=R003 -- Counter insertion order is the header's token order, fixed by the input table
    )
    if q_norm2 <= 0 or h_norm2 <= 0:
        return 0.0
    dot = sum(
        (q_counts[t] * q_weight_by_tok[t]) * (h_counts[t] * h_weight_by_tok[t])
        for t in sorted(set(q_counts) & set(h_counts))
    )
    return dot / ((q_norm2**0.5) * (h_norm2**0.5))


@dataclass(frozen=True)
class SegScores:
    """Result of the segmented maximization for one (Q_l, tc) pair."""

    segsim: float
    cover: float


def segmented_similarity(
    query_tokens: Sequence[str],
    part_index: TablePartIndex,
    col: int,
    stats: Optional[TermStatistics] = None,
    reliabilities: Reliabilities = DEFAULT_RELIABILITIES,
) -> SegScores:
    """Compute SegSim and Cover for query column tokens vs table column.

    Maximizes Eq. 1 over all header rows ``r``, all contiguous prefix/suffix
    splits, and both orders (prefix->header or suffix->header), subject to
    the header part overlapping the pinned header cell.  Tables without
    header rows score zero (their support must come from PMI² or edges).
    """
    tokens = list(query_tokens)
    if not tokens or part_index.num_header_rows == 0:
        return SegScores(0.0, 0.0)

    weights = _weights(tokens, stats)
    total_norm2 = sum(w * w for w in weights)
    if total_norm2 <= 0:
        return SegScores(0.0, 0.0)

    m = len(tokens)
    best_seg = 0.0
    best_cover = 0.0

    for r in range(part_index.num_header_rows):
        header = part_index.header_set(r, col)
        if not header:
            continue
        header_tokens = part_index.header_tokens[r][col]
        parts = part_index.out_parts(r, col)

        # Enumerate contiguous splits; for split k either the length-k
        # prefix or the length-k suffix is pinned to the header and the
        # remainder scores against the rest of the table.
        for k in range(1, m + 1):
            for head, head_w, out, out_w in (
                (tokens[:k], weights[:k], tokens[k:], weights[k:]),
                (tokens[m - k:], weights[m - k:], tokens[: m - k], weights[: m - k]),
            ):
                if not set(head) & header:
                    continue
                head_norm2 = sum(w * w for w in head_w)
                out_norm2 = sum(w * w for w in out_w)

                in_sim = _cosine_to_set(head, head_w, header, header_tokens, stats)
                in_cover = (
                    sum(w * w for tok, w in zip(head, head_w) if tok in header)
                    / head_norm2
                    if head_norm2 > 0
                    else 0.0
                )

                out_sim = 0.0
                if out:
                    for tok, w in zip(out, out_w):
                        miss = 1.0
                        for part in _PARTS:
                            if tok in parts[part]:
                                miss *= 1.0 - reliabilities.of(part)
                        out_sim += (w * w / out_norm2) * (1.0 - miss)

                head_frac = head_norm2 / total_norm2
                out_frac = out_norm2 / total_norm2
                seg = head_frac * in_sim + out_frac * out_sim
                cov = head_frac * in_cover + out_frac * out_sim
                if seg > best_seg:
                    best_seg = seg
                if cov > best_cover:
                    best_cover = cov

    return SegScores(best_seg, best_cover)


def unsegmented_similarity(
    query_tokens: Sequence[str],
    part_index: TablePartIndex,
    col: int,
    stats: Optional[TermStatistics] = None,
) -> SegScores:
    """The baseline similarity of Section 5.2: plain cosine on the header.

    The whole of ``Q_l`` is matched against the column's concatenated header
    text; no segmentation, no out-of-header support.  Cover becomes the
    plain weighted coverage fraction.
    """
    tokens = list(query_tokens)
    if not tokens or part_index.num_header_rows == 0:
        return SegScores(0.0, 0.0)
    weights = _weights(tokens, stats)
    norm2 = sum(w * w for w in weights)
    header_tokens: List[str] = []
    for r in range(part_index.num_header_rows):
        header_tokens.extend(part_index.header_tokens[r][col])
    header = set(header_tokens)
    sim = _cosine_to_set(tokens, weights, header, header_tokens, stats)
    cover = (
        sum(w * w for tok, w in zip(tokens, weights) if tok in header) / norm2
        if norm2 > 0
        else 0.0
    )
    return SegScores(sim, cover)


def estimate_reliabilities(observations: Dict[str, Tuple[int, int]]) -> Reliabilities:
    """Re-estimate part reliabilities the way the paper describes.

    ``observations`` maps part key -> (correctly mapped columns with a match
    in that part, all columns with positive inSim and a match in that part).
    Parts with no observations keep their default.
    """
    values = {}
    defaults = DEFAULT_RELIABILITIES
    for part in _PARTS:
        correct, total = observations.get(part, (0, 0))
        values[part] = correct / total if total > 0 else defaults.of(part)
    return Reliabilities(
        title=values["T"],
        context=values["C"],
        other_header_rows=values["Hc"],
        other_columns=values["Hr"],
        body=values["B"],
    )
