"""The PMI² corpus co-occurrence feature (Section 3.2.3).

``PMI²(Q_l, tc)`` measures, averaged over the rows of table ``t``, how
strongly the corpus associates the query keywords with the *content* of
column ``c``:

    PMI²(Q_l, tc) = (1/#Rows) * sum_r |H(Q_l) ∩ B(cell(r,c))|² /
                                   (|H(Q_l)| * |B(cell(r,c))|)

where ``H(Q_l)`` is the set of corpus tables containing all of ``Q_l`` in
header or context, and ``B(cell)`` the set of tables matching the cell's
words in their content.  The paper found the signal noisy (overweighting
low-frequency cells) and expensive — WWT leaves it out by default; it exists
here to reproduce the PMI² baseline and the cost comparison of Section 5.1.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, Sequence, Set

from ..tables.table import WebTable
from ..text.tokenize import tokenize
from .features import PMI_B_CACHE_SIZE, PMI_H_CACHE_SIZE, BoundedCache

__all__ = ["PmiScorer"]


class ContainmentIndex(Protocol):
    """The slice of an index PMI² needs: the conjunctive containment probe.

    Both :class:`~repro.index.inverted.InvertedIndex` (the PMI baseline
    feeds one directly) and every :class:`~repro.index.protocol.
    CorpusProtocol` corpus satisfy it.
    """

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Ids of documents holding every term in one of ``fields``."""
        ...


class PmiScorer:
    """Computes PMI² scores against a corpus index, with caching.

    ``index`` is anything exposing ``docs_containing_all(terms, fields)`` —
    a bare :class:`~repro.index.inverted.InvertedIndex`, the monolithic
    :class:`~repro.index.IndexedCorpus`, or the scatter-gather
    :class:`~repro.index.ShardedCorpus` (whose union-over-shards
    conjunction returns the identical set).

    The ``H(Q_l)`` / ``B(cell)`` containment-probe results are cached in
    bounded, thread-safe corpus-level caches
    (:class:`~repro.core.features.BoundedCache`).  Pass ``h_cache`` /
    ``b_cache`` to share them across scorers — the serving facade keeps
    one pair per corpus so every query of an ``answer_batch`` (and every
    batch after it) reuses earlier probes; by default each scorer gets a
    private pair.  Eviction only ever costs a recomputed probe, never a
    different score.
    """

    def __init__(
        self,
        index: ContainmentIndex,
        max_rows: int = 30,
        h_cache: Optional[BoundedCache[str, frozenset[str]]] = None,
        b_cache: Optional[BoundedCache[str, frozenset[str]]] = None,
    ) -> None:
        self.index = index
        self.max_rows = max_rows
        self._h_cache = h_cache if h_cache is not None else BoundedCache(
            PMI_H_CACHE_SIZE
        )
        self._b_cache = b_cache if b_cache is not None else BoundedCache(
            PMI_B_CACHE_SIZE
        )

    def clear_caches(self) -> None:
        """Drop both probe caches (after the indexed corpus mutates)."""
        self._h_cache.clear()
        self._b_cache.clear()

    def _h_set(self, query_text: str) -> frozenset[str]:
        """H(Q_l): tables containing all query tokens in header or context."""
        cached = self._h_cache.get(query_text)
        if cached is None:
            tokens = tokenize(query_text)
            cached = frozenset(
                self.index.docs_containing_all(tokens, ("header", "context"))
            )
            self._h_cache.put(query_text, cached)
        return cached

    def _b_set(self, cell_text: str) -> frozenset[str]:
        """B(cell): tables matching the cell's words in their content."""
        cached = self._b_cache.get(cell_text)
        if cached is None:
            tokens = tokenize(cell_text)
            cached = frozenset(self.index.docs_containing_all(tokens, ("content",)))
            self._b_cache.put(cell_text, cached)
        return cached

    def score(self, query_text: str, table: WebTable, col: int) -> float:
        """PMI²(Q_l, tc); 0 when the query matches no table at all."""
        h_set = self._h_set(query_text)
        if not h_set:
            return 0.0
        values = table.column_values(col)[: self.max_rows]
        if not values:
            return 0.0
        total = 0.0
        for value in values:
            b_set = self._b_set(value)
            if not b_set:
                continue
            inter = len(h_set & b_set)
            total += (inter * inter) / (len(h_set) * len(b_set))
        return total / len(values)
