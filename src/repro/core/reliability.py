"""Empirical estimation of the out-part reliabilities (Section 3.2.1).

The paper sets the per-part reliabilities ``(p_T, p_C, p_Hc, p_Hr, p_B)``
empirically: "for each part i of all Q_l and relevant t, reliability p_i of
part i is the fraction of correctly matched columns from all columns c with
positive inSim and positive match with i."  This module reproduces that
estimation against a labeled workload environment, so the default values
(1.0, 0.9, 0.5, 1.0, 0.8) can be re-derived rather than taken on faith.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from ..tables.table import WebTable
from ..text.tfidf import TermStatistics

from ..corpus.groundtruth import GroundTruth
from ..query.model import WorkloadQuery
from ..text.tokenize import tokenize
from .segsim import Reliabilities, TablePartIndex, estimate_reliabilities

if TYPE_CHECKING:  # circular at runtime: evaluation imports repro.core
    from ..evaluation.harness import WorkloadEnvironment

__all__ = ["collect_part_observations", "estimate_from_environment"]

_PARTS = ("T", "C", "Hc", "Hr", "B")


def collect_part_observations(
    truth: GroundTruth,
    workload_query: WorkloadQuery,
    tables: Sequence[WebTable],
    stats: Optional[TermStatistics] = None,
) -> Dict[str, Tuple[int, int]]:
    """Per-part (correct, total) counts for one query's relevant tables.

    A column *participates* in part ``i`` when it has positive header
    overlap with some query column (positive inSim is possible) and some
    query token of that column appears in part ``i``.  It is counted
    *correct* when the gold mapping assigns it that query column.
    """
    observations = {part: [0, 0] for part in _PARTS}
    for table in tables:
        gold = truth.label(workload_query.query_id, table.table_id)
        if not gold.relevant:
            continue
        part_index = TablePartIndex(table, stats)
        if part_index.num_header_rows == 0:
            continue
        for ci in range(table.num_cols):
            header_tokens = set(table.column_header_tokens(ci))
            for l in range(workload_query.query.q):
                q_tokens = set(tokenize(workload_query.query.columns[l]))
                if not (q_tokens & header_tokens):
                    continue  # no positive inSim possible
                out_tokens = q_tokens - header_tokens
                if not out_tokens:
                    continue
                correct = gold.mapping.get(ci) == l + 1
                for r in range(part_index.num_header_rows):
                    if not (q_tokens & part_index.header_set(r, ci)):
                        continue
                    parts = part_index.out_parts(r, ci)
                    for part in _PARTS:
                        if out_tokens & parts[part]:
                            observations[part][1] += 1
                            if correct:
                                observations[part][0] += 1
                    break  # one header row per column suffices for counting
    return {part: (c, t) for part, (c, t) in observations.items()}


def estimate_from_environment(env: WorkloadEnvironment) -> Reliabilities:
    """Re-estimate reliabilities over a whole workload environment.

    ``env`` is a :class:`repro.evaluation.harness.WorkloadEnvironment`
    (typed loosely to avoid a circular import).
    """
    totals = {part: [0, 0] for part in _PARTS}
    for wq in env.queries:
        probe = env.candidates[wq.query_id]
        obs = collect_part_observations(
            env.truth, wq, probe.tables, env.synthetic.corpus.stats
        )
        for part, (correct, total) in obs.items():
            totals[part][0] += correct
            totals[part][1] += total
    return estimate_reliabilities(
        {part: (c, t) for part, (c, t) in totals.items()}
    )
