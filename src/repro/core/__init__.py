"""The paper's core contribution: the column mapper's graphical model."""

from .edges import MappingEdge, build_edges, column_pair_similarity
from .features import BoundedCache, FeatureCache, query_feature_key
from .labels import LabelSpace
from .model import ColumnFeatures, ColumnMappingProblem, build_problem
from .params import (
    DEFAULT_PARAMS,
    UNSEGMENTED_PARAMS,
    ModelParams,
    enumerate_grid,
    train_parameters,
)
from .pmi import PmiScorer
from .segsim import (
    DEFAULT_RELIABILITIES,
    Reliabilities,
    TablePartIndex,
    estimate_reliabilities,
    segmented_similarity,
    unsegmented_similarity,
)

__all__ = [
    "BoundedCache",
    "ColumnFeatures",
    "ColumnMappingProblem",
    "FeatureCache",
    "DEFAULT_PARAMS",
    "DEFAULT_RELIABILITIES",
    "LabelSpace",
    "MappingEdge",
    "ModelParams",
    "PmiScorer",
    "Reliabilities",
    "TablePartIndex",
    "UNSEGMENTED_PARAMS",
    "build_edges",
    "build_problem",
    "column_pair_similarity",
    "enumerate_grid",
    "estimate_reliabilities",
    "query_feature_key",
    "segmented_similarity",
    "train_parameters",
    "unsegmented_similarity",
]
