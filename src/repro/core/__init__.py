"""The paper's core contribution: the column mapper's graphical model."""

from .edges import MappingEdge, build_edges, column_pair_similarity
from .labels import LabelSpace
from .model import ColumnFeatures, ColumnMappingProblem, build_problem
from .params import (
    DEFAULT_PARAMS,
    UNSEGMENTED_PARAMS,
    ModelParams,
    enumerate_grid,
    train_parameters,
)
from .pmi import PmiScorer
from .segsim import (
    DEFAULT_RELIABILITIES,
    Reliabilities,
    TablePartIndex,
    estimate_reliabilities,
    segmented_similarity,
    unsegmented_similarity,
)

__all__ = [
    "ColumnFeatures",
    "ColumnMappingProblem",
    "DEFAULT_PARAMS",
    "DEFAULT_RELIABILITIES",
    "LabelSpace",
    "MappingEdge",
    "ModelParams",
    "PmiScorer",
    "Reliabilities",
    "TablePartIndex",
    "UNSEGMENTED_PARAMS",
    "build_edges",
    "build_problem",
    "column_pair_similarity",
    "enumerate_grid",
    "estimate_reliabilities",
    "segmented_similarity",
    "train_parameters",
    "unsegmented_similarity",
]
