"""Query-scoped feature memoization for the column-mapping hot path.

The pipeline evaluates :class:`~repro.core.model.ColumnFeatures` (SegSim,
Cover, PMI² per query column) twice for every stage-1 table of every query:
once inside ``two_stage_probe``'s confidence pass and again when the
serving facade assembles the full inference problem moments later.  The
features depend only on the query's analyzed keywords, the table's
content, and the corpus statistics — none of which change between the two
calls — so :class:`FeatureCache` memoizes them per ``(query, table)`` and
:func:`~repro.core.model.build_problem` consults it, turning the facade's
second assembly into an incremental extension that computes features for
stage-2 tables only.

**Invalidation** is by regime identity (see DESIGN.md, "Hot-path
engine"): a cache is valid for one ``(stats, reliabilities, pmi_scorer)``
triple, pinned by object identity on first use and auto-cleared whenever a
different triple arrives.  That rule is correct by construction for live
corpora served with the default exact statistics —
:class:`~repro.index.journal.JournaledCorpus` materializes a *new* merged
:class:`~repro.text.tfidf.TermStatistics` object whenever a stats refresh
folds journaled mutations, so the identity flip clears the cache exactly
when features could go stale.  One caveat inherits the journal's own
contract: under ``stats_staleness > 0`` the stats object (and therefore
this cache) may lag mutations by up to that bound — including a
delete-then-re-add of a table id with changed content inside the window —
so callers who mutate a corpus served with a positive bound must clear
the cache on mutation themselves.  The serving facade always does
(``WWTService.clear_caches`` runs on every ``add_tables``/
``delete_tables``), which is why serving is safe at any staleness
setting.

:class:`BoundedCache` is the underlying thread-safe LRU; it also backs the
corpus-level PMI² containment-probe caches
(:class:`~repro.core.pmi.PmiScorer`), which this module sizes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Generic, Hashable, Optional, Tuple, TypeVar, cast

from ..query.model import Query
from ..text.tokenize import tokenize

__all__ = [
    "BoundedCache",
    "FeatureCache",
    "PMI_B_CACHE_SIZE",
    "PMI_H_CACHE_SIZE",
    "STATS_CACHE_SIZE",
    "query_feature_key",
]

#: Default capacity of the corpus-level PMI² ``H(Q_l)`` cache (keyed by
#: query-column text — small key space, hit constantly within a query).
PMI_H_CACHE_SIZE = 1024
#: Default capacity of the corpus-level PMI² ``B(cell)`` cache (keyed by
#: cell text — the large key space that made the per-scorer dicts grow
#: without bound before they were promoted to bounded corpus-level caches).
PMI_B_CACHE_SIZE = 32768
#: Default capacity of the corpus-level IDF / document-frequency caches
#: (:class:`~repro.index.sharded.ShardedCorpus` and the journal's derived
#: ranking state) — keyed by term, so sized like the PMI ``B`` cache.
STATS_CACHE_SIZE = 65536

_MISS = object()

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class BoundedCache(Generic[K, V]):
    """Thread-safe bounded LRU map with hit/miss counters.

    The core-layer twin of the service LRU (``repro.core`` cannot import
    ``repro.service``): capacity 0 disables it, eviction drops the
    least-recently-used entry, and the counters feed cache-hit-rate
    reporting in ``WWTService.stats()`` and ``bench_hotpath``.  Eviction
    only ever costs recomputation — never correctness — so every consumer
    may size it freely.

    Generic in key and value (``BoundedCache[str, float]``): consumers
    declare what they store, so a cache wired to the wrong producer is a
    type error rather than a silent heterogeneous dict.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: K) -> Optional[V]:
        """The cached value for ``key``, or ``None``; a hit refreshes recency."""
        return self.lookup(key)[1]

    def lookup(self, key: K) -> Tuple[bool, Optional[V]]:
        """``(hit, value)`` — distinguishes a stored ``None`` from a miss.

        The service-layer adapter (`repro.service.cache.LRUCache`) is
        built on this form; :meth:`get` is the convenience collapse for
        consumers that never store ``None``.
        """
        with self._lock:
            value = self._data.get(key, cast("V", _MISS))
            if value is _MISS:
                self._misses += 1
                return False, None
            self._data.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        """Membership probe that counts as neither hit nor miss."""
        with self._lock:
            return key in self._data

    @property
    def hits(self) -> int:
        """Lookups served from the cache since construction."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that missed since construction."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """Plain-dict counter snapshot for logging and benchmark reports."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._data),
                "capacity": self.capacity,
                "hit_rate": round(self.hit_rate, 4),
            }


def query_feature_key(query: Query) -> str:
    """Canonical query component of a feature-cache key.

    Analyzer-normalized column keywords, so two surface forms that
    tokenize identically (case, punctuation, whitespace) share cache
    entries — the same normalization the service layer uses for its
    result and probe caches.
    """
    return " | ".join(" ".join(tokenize(column)) for column in query.columns)


class FeatureCache:
    """Bounded memo of per-``(query, table)`` column features.

    Stores ``(col_features, relevance)`` — the tuple of
    :class:`~repro.core.model.ColumnFeatures` for every column of one
    table against one query, plus the table-relevance ``R(Q, t)`` derived
    from them — keyed on the normalized query, the table id, and the
    feature-shape flags (``use_segmented``, whether PMI² was evaluated).
    Weights (``w1..w5``, ``we``) are deliberately *not* part of the key:
    they recombine cached features, they never change them (the same
    property ``ColumnMappingProblem.with_params`` exploits).

    One cache is valid for one ``(stats, reliabilities, pmi_scorer)``
    regime; :meth:`pin` enforces that by identity and auto-clears on
    change, so a cache accidentally shared across corpora degrades to a
    correct cold cache instead of serving stale features.

    Thread-safe — ``WWTService.answer_batch`` fans concurrent pipelines
    over one shared instance.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._cache: BoundedCache[Hashable, Any] = BoundedCache(capacity)
        self._regime: Optional[Tuple[Any, Any, Any]] = None
        self._regime_lock = threading.Lock()
        self._generation = 0

    def pin(self, stats: Any, reliabilities: Any, pmi_scorer: Any) -> int:
        """Bind the cache to one feature regime, clearing it on change.

        Identity (``is``) comparison on every element: a live corpus
        materializes a new ``stats`` object whenever mutations change the
        statistics, so a regime flip is exactly a potential feature
        change.

        Returns the current *generation* token.  A writer that computed
        features under this regime passes the token back to :meth:`put`,
        which drops the insert if the regime (or an explicit
        :meth:`clear`) has moved on in the meantime — otherwise a query
        racing a live mutation could park stale-stats features in the
        freshly cleared cache.
        """
        with self._regime_lock:
            regime = self._regime
            if (
                regime is not None
                and regime[0] is stats
                and regime[1] is reliabilities
                and regime[2] is pmi_scorer
            ):
                return self._generation
            if regime is not None:
                self._cache.clear()
                self._generation += 1
            self._regime = (stats, reliabilities, pmi_scorer)
            return self._generation

    def get(self, key: Hashable, generation: Optional[int] = None) -> Any:
        """The cached ``(col_features, relevance)`` for ``key``, or ``None``.

        ``generation`` (from :meth:`pin`) makes the read refuse entries
        from a *newer* regime: a reader still working under an old pin
        must recompute rather than consume features a concurrent query
        cached after an invalidation — the keys deliberately omit the
        regime, so the token is what keeps one problem's features on one
        stats vintage.  The stale read counts as neither hit nor miss.
        """
        with self._regime_lock:
            if generation is not None and generation != self._generation:
                return None
            return self._cache.get(key)

    def put(self, key: Hashable, value: Any, generation: Optional[int] = None) -> None:
        """Store one table's features under ``key``.

        ``generation`` (from :meth:`pin`) guards against the
        compute-during-invalidation race: an insert carrying a superseded
        token is silently dropped.
        """
        with self._regime_lock:
            if generation is not None and generation != self._generation:
                return
            self._cache.put(key, value)

    def clear(self) -> None:
        """Drop all entries and retire outstanding :meth:`pin` tokens
        (counters and the pinned regime itself are kept)."""
        with self._regime_lock:
            self._cache.clear()
            self._generation += 1

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def capacity(self) -> int:
        """Maximum number of (query, table) entries retained."""
        return self._cache.capacity

    @property
    def hits(self) -> int:
        """Lookups served from the cache since construction."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Lookups that missed since construction."""
        return self._cache.misses

    def stats(self) -> Dict[str, Any]:
        """Plain-dict counter snapshot (see :meth:`BoundedCache.stats`)."""
        return self._cache.stats()
