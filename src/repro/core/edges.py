"""Edge structure: content overlap across table columns (Section 3.3).

The paper's custom edge potential needs three ingredients computed here:

* **raw column similarity** — a weighted sum of content and header
  similarity between two columns of *different* tables;
* **max-matching edges** — per table pair, each column connects to at most
  one column of the other table, chosen by a maximum-weight one-to-one
  matching (robust when a table's own columns resemble each other);
* **normalized similarity** ``nsim(tc, t'c') = sim / (λ + Σ sim)`` with
  λ = 0.3, neighbors below 0.1 raw similarity ignored.

Column-pair candidates are *blocked* on shared normalized cell values, so
building edges over a hundred candidate tables stays fast.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from math import sqrt
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..flow.bipartite import BipartiteMatcher
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from ..text.tokenize import normalize_cell, tokenize

__all__ = ["SIM_FLOOR", "NSIM_LAMBDA", "ColumnProfile", "MappingEdge", "build_edges"]

#: Neighbors with raw similarity below this are ignored (Section 3.3).
SIM_FLOOR = 0.1
#: Smoothing constant λ in the nsim normalization (Section 3.3).
NSIM_LAMBDA = 0.3
#: Weight of content similarity vs header similarity in the matching.
CONTENT_WEIGHT = 0.8


@dataclass
class ColumnProfile:
    """Precomputed comparison data for one table column."""

    table_idx: int
    col_idx: int
    values: Set[str]
    token_counts: Counter
    token_norm: float
    header_counts: Counter
    header_norm: float

    @classmethod
    def build(
        cls,
        table_idx: int,
        col_idx: int,
        table: WebTable,
        stats: Optional[TermStatistics],
    ) -> ColumnProfile:
        values = {
            normalize_cell(v) for v in table.column_values(col_idx)
        } - {""}
        tokens: Counter = Counter()
        for v in table.column_values(col_idx):
            tokens.update(tokenize(v))
        header: Counter = Counter(table.column_header_tokens(col_idx))

        def weighted(counts: Counter) -> Tuple[Counter, float]:
            weighted_counts = (
                Counter(counts)
                if stats is None
                else Counter(
                    {t: c * stats.idf(t) for t, c in counts.items()}
                )
            )
            norm = sqrt(
                sum(w * w for w in weighted_counts.values())  # reprolint: disable=R003 -- Counter insertion order is the column's token order, fixed by the input table
            )
            return weighted_counts, norm

        token_counts, token_norm = weighted(tokens)
        header_counts, header_norm = weighted(header)
        return cls(
            table_idx=table_idx,
            col_idx=col_idx,
            values=values,
            token_counts=token_counts,
            token_norm=token_norm,
            header_counts=header_counts,
            header_norm=header_norm,
        )


def _cosine(a: Counter, an: float, b: Counter, bn: float) -> float:
    if an <= 0 or bn <= 0:
        return 0.0
    if len(b) < len(a):
        a, an, b, bn = b, bn, a, an
    dot = sum(
        w * b.get(t, 0.0) for t, w in a.items()  # reprolint: disable=R003 -- Counter insertion order is the column's token order, fixed by the input table
    )
    return dot / (an * bn)


def column_pair_similarity(a: ColumnProfile, b: ColumnProfile) -> float:
    """Weighted content + header similarity between two column profiles."""
    if a.values and b.values:
        inter = len(a.values & b.values)
        union = len(a.values | b.values)
        overlap = inter / union if union else 0.0
    else:
        overlap = 0.0
    content = 0.5 * (overlap + _cosine(a.token_counts, a.token_norm,
                                       b.token_counts, b.token_norm))
    header = _cosine(a.header_counts, a.header_norm,
                     b.header_counts, b.header_norm)
    return CONTENT_WEIGHT * content + (1.0 - CONTENT_WEIGHT) * header


@dataclass(frozen=True)
class MappingEdge:
    """A max-matching edge between columns of two tables."""

    a: Tuple[int, int]  # (table_idx, col_idx)
    b: Tuple[int, int]
    sim: float  # raw similarity
    nsim_ab: float  # normalized from a's perspective
    nsim_ba: float  # normalized from b's perspective


def all_similar_pairs(
    tables: Sequence[WebTable],
    stats: Optional[TermStatistics] = None,
    sim_floor: float = SIM_FLOOR,
) -> List[Tuple[Tuple[int, int], Tuple[int, int], float]]:
    """Every cross-table column pair above the similarity floor.

    This is the *unprotected* neighbor structure the NbrText baseline uses
    (Section 5): no max-matching, no normalization, no confidence gating —
    exactly the ad hoc variant the paper shows to be fragile.  Returns
    ``(a, b, sim)`` triples.
    """
    profiles: Dict[Tuple[int, int], ColumnProfile] = {}
    by_value: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
    for ti, table in enumerate(tables):
        for ci in range(table.num_cols):
            profile = ColumnProfile.build(ti, ci, table, stats)
            profiles[(ti, ci)] = profile
            for value in profile.values:
                by_value[value].append((ti, ci))

    shared: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = defaultdict(int)
    for _value, cols in by_value.items():
        if len(cols) > 60:
            continue
        for i in range(len(cols)):
            for j in range(i + 1, len(cols)):
                a, b = cols[i], cols[j]
                if a[0] == b[0]:
                    continue
                key = (a, b) if a < b else (b, a)
                shared[key] += 1

    out: List[Tuple[Tuple[int, int], Tuple[int, int], float]] = []
    for (a, b), cnt in shared.items():
        small = min(len(profiles[a].values), len(profiles[b].values)) < 4
        if cnt >= 2 or (small and cnt >= 1):
            sim = column_pair_similarity(profiles[a], profiles[b])
            if sim >= sim_floor:
                out.append((a, b, sim))
    out.sort()
    return out


def build_edges(
    tables: Sequence[WebTable],
    stats: Optional[TermStatistics] = None,
    sim_floor: float = SIM_FLOOR,
    nsim_lambda: float = NSIM_LAMBDA,
) -> List[MappingEdge]:
    """Build the cross-table neighbor structure.

    Returns max-matching edges with both directional nsim values filled in.
    """
    profiles: Dict[Tuple[int, int], ColumnProfile] = {}
    by_value: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
    for ti, table in enumerate(tables):
        for ci in range(table.num_cols):
            profile = ColumnProfile.build(ti, ci, table, stats)
            profiles[(ti, ci)] = profile
            for value in profile.values:
                by_value[value].append((ti, ci))

    # Blocking: column pairs (different tables) sharing >= 2 values, or 1
    # when either column is tiny.
    shared: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = defaultdict(int)
    for _value, cols in by_value.items():
        if len(cols) > 60:
            continue  # stop-value (e.g. "euro" everywhere) — too common to block on
        for i in range(len(cols)):
            for j in range(i + 1, len(cols)):
                a, b = cols[i], cols[j]
                if a[0] == b[0]:
                    continue
                key = (a, b) if a < b else (b, a)
                shared[key] += 1

    candidate_pairs: Dict[Tuple[int, int], List[Tuple[Tuple[int, int], Tuple[int, int]]]] = defaultdict(list)
    for (a, b), cnt in shared.items():
        small = min(len(profiles[a].values), len(profiles[b].values)) < 4
        if cnt >= 2 or (small and cnt >= 1):
            candidate_pairs[(a[0], b[0])].append((a, b))

    # Per table pair: maximum one-one matching over candidate column pairs.
    matched: List[Tuple[Tuple[int, int], Tuple[int, int], float]] = []
    for (ta, tb), pairs in candidate_pairs.items():
        cols_a = sorted({a[1] for a, _b in pairs})
        cols_b = sorted({b[1] for _a, b in pairs})
        sims: Dict[Tuple[int, int], float] = {}
        weights = [[0.0] * len(cols_b) for _ in cols_a]
        for a, b in pairs:
            sim = column_pair_similarity(profiles[a], profiles[b])
            if sim >= sim_floor:
                ia, ib = cols_a.index(a[1]), cols_b.index(b[1])
                weights[ia][ib] = sim
                sims[(ia, ib)] = sim
        if not sims:
            continue
        matcher = BipartiteMatcher(
            weights, [1] * len(cols_a), [1] * len(cols_b)
        )
        result = matcher.solve()
        for ia, ib in result.pairs:
            sim = weights[ia][ib]
            if sim >= sim_floor:
                matched.append(((ta, cols_a[ia]), (tb, cols_b[ib]), sim))

    # nsim normalization per column over its matched neighbors.
    sim_sums: Dict[Tuple[int, int], float] = defaultdict(float)
    for a, b, sim in matched:
        sim_sums[a] += sim
        sim_sums[b] += sim

    edges = [
        MappingEdge(
            a=a,
            b=b,
            sim=sim,
            nsim_ab=sim / (nsim_lambda + sim_sums[a]),
            nsim_ba=sim / (nsim_lambda + sim_sums[b]),
        )
        for a, b, sim in matched
    ]
    edges.sort(key=lambda e: (e.a, e.b))
    return edges
