"""Label space for the column mapping task (Section 3.1).

Each column variable ``tc`` takes one of ``q + 2`` labels: a query column
``1..q``, ``na`` (column of a relevant table that maps to no query column),
or ``nr`` (column of an irrelevant table).  Internally labels are dense
integers ``0..q+1``: query columns are ``0..q-1``, then ``na``, then ``nr``.
"""

from __future__ import annotations

from typing import List

__all__ = ["LabelSpace"]


class LabelSpace:
    """Dense integer encoding of the ``{1..q} ∪ {na, nr}`` label set."""

    __slots__ = ("q",)

    def __init__(self, q: int) -> None:
        if q < 1:
            raise ValueError("q must be at least 1")
        self.q = q

    @property
    def na(self) -> int:
        """Dense index of the na label."""
        return self.q

    @property
    def nr(self) -> int:
        """Dense index of the nr label."""
        return self.q + 1

    @property
    def size(self) -> int:
        """Total number of labels (q + 2)."""
        return self.q + 2

    def query_labels(self) -> range:
        """Dense indices of the query-column labels."""
        return range(self.q)

    def all_labels(self) -> range:
        """All dense label indices."""
        return range(self.size)

    def is_query(self, label: int) -> bool:
        """Is ``label`` one of the q query columns?"""
        return 0 <= label < self.q

    def to_query_column(self, label: int) -> int:
        """Dense label -> 1-based query column number."""
        if not self.is_query(label):
            raise ValueError(f"label {label} is not a query column")
        return label + 1

    def from_query_column(self, query_col: int) -> int:
        """1-based query column number -> dense label."""
        if not 1 <= query_col <= self.q:
            raise ValueError(f"query column {query_col} out of range")
        return query_col - 1

    def name(self, label: int) -> str:
        """Human-readable label name: '1'..'q', 'na', 'nr'."""
        if self.is_query(label):
            return str(label + 1)
        if label == self.na:
            return "na"
        if label == self.nr:
            return "nr"
        raise ValueError(f"label {label} out of range")

    def names(self) -> List[str]:
        """All label names in dense order."""
        return [self.name(l) for l in self.all_labels()]
