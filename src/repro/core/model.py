"""Graphical model assembly for the column mapping task (Section 3).

:class:`ColumnMappingProblem` bundles everything inference needs: one
variable per (table, column) with the ``q + 2`` label space, node potentials
(Eq. 3), the cross-table edge structure (Eq. 4's static part), and the four
hard table constraints (Eqs. 5-8).  :func:`build_problem` evaluates all
features; the labeling objective (Eq. 9) is exposed via :meth:`score` so
tests and algorithm comparisons can rank labelings exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..query.model import Query
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from .edges import MappingEdge, build_edges
from .features import FeatureCache, query_feature_key
from .labels import LabelSpace
from .params import DEFAULT_PARAMS, ModelParams
from .pmi import PmiScorer
from .segsim import (
    DEFAULT_RELIABILITIES,
    Reliabilities,
    TablePartIndex,
    segmented_similarity,
    unsegmented_similarity,
)

__all__ = ["ColumnFeatures", "ColumnMappingProblem", "build_problem"]

NEG_INF = float("-inf")


@dataclass(frozen=True)
class ColumnFeatures:
    """Raw feature values of one column against every query column."""

    segsim: Tuple[float, ...]
    cover: Tuple[float, ...]
    pmi: Tuple[float, ...]


class ColumnMappingProblem:
    """The assembled joint labeling problem for one query."""

    def __init__(
        self,
        query: Query,
        tables: Sequence[WebTable],
        params: ModelParams,
        node_potentials: Dict[Tuple[int, int], List[float]],
        features: Dict[Tuple[int, int], ColumnFeatures],
        table_relevance: List[float],
        edges: List[MappingEdge],
    ) -> None:
        self.query = query
        self.tables = list(tables)
        self.params = params
        self.labels = LabelSpace(query.q)
        self.node_potentials = node_potentials
        self.features = features
        self.table_relevance = table_relevance
        self.edges = edges
        self.neighbors: Dict[Tuple[int, int], List[Tuple[int, MappingEdge]]] = {}
        for idx, edge in enumerate(edges):
            self.neighbors.setdefault(edge.a, []).append((idx, edge))
            self.neighbors.setdefault(edge.b, []).append((idx, edge))

    # -- structure ---------------------------------------------------------------

    def columns(self) -> Iterator[Tuple[int, int]]:
        """Iterate all (table_idx, col_idx) variables."""
        for ti, table in enumerate(self.tables):
            for ci in range(table.num_cols):
                yield (ti, ci)

    @property
    def num_columns(self) -> int:
        """Total number of column variables."""
        return sum(t.num_cols for t in self.tables)

    def table_columns(self, ti: int) -> List[Tuple[int, int]]:
        """The column variables of one table."""
        return [(ti, ci) for ci in range(self.tables[ti].num_cols)]

    def min_match(self, ti: int) -> int:
        """The per-table min-match constant (clamped to the table width)."""
        return min(self.query.min_match(), self.tables[ti].num_cols, self.query.q)

    def node_potential(self, tc: Tuple[int, int], label: int) -> float:
        """θ(tc, label) of Eq. 3."""
        return self.node_potentials[tc][label]

    # -- objective (Eq. 9) ----------------------------------------------------------

    def constraints_satisfied(self, y: Mapping[Tuple[int, int], int]) -> bool:
        """Check mutex, all-Irr, must-match and min-match for labeling y."""
        labels = self.labels
        for ti in range(len(self.tables)):
            cols = self.table_columns(ti)
            assigned = [y[tc] for tc in cols]
            n_nr = sum(1 for l in assigned if l == labels.nr)
            if n_nr not in (0, len(assigned)):  # all-Irr
                return False
            if n_nr == len(assigned):
                continue  # irrelevant table: remaining constraints vacuous
            query_labels = [l for l in assigned if labels.is_query(l)]
            if len(set(query_labels)) != len(query_labels):  # mutex
                return False
            if 0 not in query_labels:  # must-match (first query column)
                return False
            if len(query_labels) < self.min_match(ti):  # min-match
                return False
        return True

    def edge_score(
        self,
        edge: MappingEdge,
        label_a: int,
        label_b: int,
        confident: Mapping[Tuple[int, int], bool],
    ) -> float:
        """θ(tc, l, t'c', l') of Eq. 4 for one edge."""
        if label_a != label_b or label_a == self.labels.nr:
            return 0.0
        score = 0.0
        if confident.get(edge.b, False):
            score += edge.nsim_ab
        if confident.get(edge.a, False):
            score += edge.nsim_ba
        return self.params.we * score

    def score(
        self,
        y: Mapping[Tuple[int, int], int],
        confident: Optional[Mapping[Tuple[int, int], bool]] = None,
    ) -> float:
        """Total objective of Eq. 9 (``-inf`` when constraints are violated).

        ``confident`` is the edge-gating map (Section 3.3); when omitted,
        all columns are treated as confident — the upper envelope used by
        tests that only care about relative labeling quality.
        """
        if not self.constraints_satisfied(y):
            return NEG_INF
        if confident is None:
            confident = {tc: True for tc in self.columns()}
        total = sum(self.node_potentials[tc][y[tc]] for tc in self.columns())
        for edge in self.edges:
            total += self.edge_score(edge, y[edge.a], y[edge.b], confident)
        return total

    def all_nr_labeling(self) -> Dict[Tuple[int, int], int]:
        """The labeling marking every table irrelevant."""
        return {tc: self.labels.nr for tc in self.columns()}

    def with_params(self, params: ModelParams) -> ColumnMappingProblem:
        """Re-weight node potentials without re-extracting features.

        Features (SegSim, Cover, PMI², R) and the edge structure do not
        depend on the weights, so grid training (Section 3.4) only needs to
        recombine them — this is what makes exhaustive enumeration cheap.
        """
        q = self.query.q
        node_potentials: Dict[Tuple[int, int], List[float]] = {}
        for ti, table in enumerate(self.tables):
            nt = table.num_cols
            nr_potential = (
                params.w4 * (min(q, nt) / nt) * (1.0 - self.table_relevance[ti])
            )
            for ci in range(nt):
                f = self.features[(ti, ci)]
                theta = [
                    params.w1 * f.segsim[l]
                    + params.w2 * f.cover[l]
                    + params.w3 * f.pmi[l]
                    + params.w5
                    for l in range(q)
                ]
                theta.append(0.0)
                theta.append(nr_potential)
                node_potentials[(ti, ci)] = theta
        return ColumnMappingProblem(
            query=self.query,
            tables=self.tables,
            params=params,
            node_potentials=node_potentials,
            features=self.features,
            table_relevance=self.table_relevance,
            edges=self.edges,
        )


def _clip(a: float, b: float) -> float:
    """The clip function of Eq. 2."""
    return 0.0 if a < b else a


def build_problem(
    query: Query,
    tables: Sequence[WebTable],
    stats: Optional[TermStatistics] = None,
    params: ModelParams = DEFAULT_PARAMS,
    pmi_scorer: Optional[PmiScorer] = None,
    reliabilities: Reliabilities = DEFAULT_RELIABILITIES,
    feature_cache: Optional[FeatureCache] = None,
    with_edges: bool = True,
) -> ColumnMappingProblem:
    """Evaluate all features and assemble the labeling problem.

    ``pmi_scorer`` is only consulted when ``params.w3`` is non-zero (PMI² is
    expensive — Section 5.1 measures a ~6x query slowdown with it on).

    ``with_edges=False`` skips the O(tables² x columns²) cross-table edge
    construction (Section 3.3) — for solvers that never read edges, e.g.
    the execution engine's non-collective degraded fallback, where edge
    assembly would dominate the post-deadline cost.

    ``feature_cache`` memoizes each table's :class:`ColumnFeatures` (and
    its relevance ``R(Q, t)``) per query, so re-assembling a problem over
    an overlapping table set — the probe's confidence pass followed by the
    facade's full inference — computes features only for tables not seen
    before; everything downstream of the features (node potentials, edges)
    is still evaluated fresh.  The cache is pinned to this call's
    ``(stats, reliabilities, pmi_scorer)`` regime and auto-clears if a
    different regime arrives (see
    :meth:`~repro.core.features.FeatureCache.pin`).
    """
    q = query.q
    query_tokens = [query.column_tokens(l) for l in range(q)]
    pmi_active = params.w3 != 0.0 and pmi_scorer is not None

    cache_prefix: Optional[Tuple] = None
    cache_generation = 0
    if feature_cache is not None:
        cache_generation = feature_cache.pin(
            stats, reliabilities, pmi_scorer if pmi_active else None
        )
        cache_prefix = (
            query_feature_key(query), params.use_segmented, pmi_active
        )

    node_potentials: Dict[Tuple[int, int], List[float]] = {}
    features: Dict[Tuple[int, int], ColumnFeatures] = {}
    table_relevance: List[float] = []

    for ti, table in enumerate(tables):
        nt = table.num_cols
        cached = (
            feature_cache.get(
                cache_prefix + (table.table_id,),
                generation=cache_generation,
            )
            if cache_prefix is not None else None
        )
        if cached is not None:
            col_features, relevance = cached
        else:
            part_index = TablePartIndex(table, stats)
            col_features = []
            for ci in range(nt):
                seg: List[float] = []
                cov: List[float] = []
                pmi: List[float] = []
                for l in range(q):
                    scores = (
                        segmented_similarity(
                            query_tokens[l], part_index, ci, stats,
                            reliabilities,
                        )
                        if params.use_segmented
                        else unsegmented_similarity(
                            query_tokens[l], part_index, ci, stats
                        )
                    )
                    seg.append(scores.segsim)
                    cov.append(scores.cover)
                    if pmi_active:
                        pmi.append(
                            pmi_scorer.score(query.columns[l], table, ci)
                        )
                    else:
                        pmi.append(0.0)
                col_features.append(
                    ColumnFeatures(tuple(seg), tuple(cov), tuple(pmi))
                )

            # Table relevance R(Q, t) of Eq. 2.
            cover_sum = sum(
                max(col_features[ci].cover[l] for ci in range(nt))
                for l in range(q)
            )
            relevance = _clip(cover_sum, min(q, 1.5)) / q
            if cache_prefix is not None:
                feature_cache.put(
                    cache_prefix + (table.table_id,),
                    (tuple(col_features), relevance),
                    generation=cache_generation,
                )
        table_relevance.append(relevance)

        nr_potential = params.w4 * (min(q, nt) / nt) * (1.0 - relevance)
        for ci in range(nt):
            theta = []
            for l in range(q):
                f = col_features[ci]
                theta.append(
                    params.w1 * f.segsim[l]
                    + params.w2 * f.cover[l]
                    + params.w3 * f.pmi[l]
                    + params.w5
                )
            theta.append(0.0)  # na
            theta.append(nr_potential)  # nr
            node_potentials[(ti, ci)] = theta
            features[(ti, ci)] = col_features[ci]

    edges = build_edges(tables, stats) if with_edges else []
    return ColumnMappingProblem(
        query=query,
        tables=tables,
        params=params,
        node_potentials=node_potentials,
        features=features,
        table_relevance=table_relevance,
        edges=edges,
    )
