"""Synthetic web corpus: the substitute for the paper's 25M-table crawl."""

from .domains import REGISTRY, Attribute, Domain, build_registry
from .generator import CorpusConfig, SyntheticCorpus, generate_corpus, iter_tables
from .groundtruth import GroundTruth, TableLabel, TableProvenance, label_table
from .pages import GeneratedPage, render_page

__all__ = [
    "Attribute",
    "CorpusConfig",
    "Domain",
    "GeneratedPage",
    "GroundTruth",
    "REGISTRY",
    "SyntheticCorpus",
    "TableLabel",
    "TableProvenance",
    "build_registry",
    "generate_corpus",
    "iter_tables",
    "label_table",
    "render_page",
]
