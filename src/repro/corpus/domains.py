"""Domain specifications for the synthetic web corpus.

A *domain* is one real-world relation (countries with their attributes, dog
breeds, explorers, ...) plus everything needed to author noisy web pages
about it: header variants per attribute (informative, partial, and
uninformative ones like "Name"), context sentence templates, and noise
profile overrides.  Distractor domains carry query keywords without the
queried relation — they are what makes relevance decisions hard
(Figure 1's "Forest Reserves" page is reproduced verbatim as one).

Queries in :mod:`repro.query.workload` reference domains by key and
attributes by attribute key; the generator derives exact ground truth from
that binding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import data_real as real
from .wordbanks import (
    ADJECTIVES, NOUNS, company_name, count, city_name, money, person_name,
    phrase, pick, picks, year,
)

__all__ = ["Attribute", "Domain", "REGISTRY", "build_registry"]


@dataclass(frozen=True)
class Attribute:
    """One column of a domain relation."""

    key: str
    headers: Tuple[str, ...]  # informative header variants
    vague_headers: Tuple[str, ...] = ()  # uninformative variants ("Name")
    presence: float = 1.0  # probability a domain page includes this column


@dataclass
class Domain:
    """A page-generating specification for one relation (or distractor)."""

    key: str
    page_title: str
    topic_phrase: str
    context_templates: Tuple[str, ...]
    attributes: Tuple[Attribute, ...]  # [0] is the subject column
    rows: Tuple[Tuple[str, ...], ...]
    num_pages: int
    # Noise profile (defaults mirror the paper's corpus statistics).
    headerless: float = 0.18
    two_header: float = 0.17
    multi_header: float = 0.05
    th_usage: float = 0.20
    title_row: float = 0.15
    vague_prob: float = 0.25
    verbose_context: float = 0.25
    is_distractor: bool = False

    def __post_init__(self) -> None:
        width = len(self.attributes)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    f"domain {self.key!r}: row width {len(row)} != {width}"
                )

    def attribute_index(self, attr_key: str) -> int:
        """Position of an attribute in the relation."""
        for i, attr in enumerate(self.attributes):
            if attr.key == attr_key:
                return i
        raise KeyError(f"domain {self.key!r} has no attribute {attr_key!r}")


def _attr(
    key: str,
    headers: Sequence[str],
    vague: Sequence[str] = (),
    presence: float = 1.0,
) -> Attribute:
    return Attribute(key, tuple(headers), tuple(vague), presence)


def _rows(*cols: Sequence[str]) -> Tuple[Tuple[str, ...], ...]:
    return tuple(zip(*cols))


# ---------------------------------------------------------------------------
# Small hand lists for domains where a handful of real values carry the term
# statistics (kept here rather than data_real to stay near their domain).
# ---------------------------------------------------------------------------

_FIFA = [
    ("Uruguay", "1930"), ("Italy", "1934"), ("Italy", "1938"),
    ("Uruguay", "1950"), ("West Germany", "1954"), ("Brazil", "1958"),
    ("Brazil", "1962"), ("England", "1966"), ("Brazil", "1970"),
    ("West Germany", "1974"), ("Argentina", "1978"), ("Italy", "1982"),
    ("Argentina", "1986"), ("West Germany", "1990"), ("Brazil", "1994"),
    ("France", "1998"), ("Brazil", "2002"), ("Italy", "2006"), ("Spain", "2010"),
]

_BUILDINGS = [
    ("Burj Khalifa", "828", "Dubai"), ("Taipei 101", "508", "Taipei"),
    ("Shanghai World Financial Center", "492", "Shanghai"),
    ("International Commerce Centre", "484", "Hong Kong"),
    ("Petronas Tower 1", "452", "Kuala Lumpur"),
    ("Petronas Tower 2", "452", "Kuala Lumpur"),
    ("Zifeng Tower", "450", "Nanjing"), ("Willis Tower", "442", "Chicago"),
    ("Kingkey 100", "442", "Shenzhen"), ("Guangzhou West Tower", "440", "Guangzhou"),
    ("Trump International Hotel", "423", "Chicago"), ("Jin Mao Building", "421", "Shanghai"),
    ("Princess Tower", "414", "Dubai"), ("Al Hamra Tower", "413", "Kuwait City"),
    ("Two International Finance Centre", "412", "Hong Kong"),
    ("23 Marina", "395", "Dubai"), ("CITIC Plaza", "390", "Guangzhou"),
    ("Shun Hing Square", "384", "Shenzhen"), ("Empire State Building", "381", "New York"),
    ("Central Plaza", "374", "Hong Kong"),
]

_ACADEMY_CATEGORIES = [
    "Best Picture", "Best Director", "Best Actor", "Best Actress",
    "Best Supporting Actor", "Best Supporting Actress",
    "Best Original Screenplay", "Best Adapted Screenplay",
    "Best Animated Feature", "Best Cinematography", "Best Film Editing",
    "Best Original Score", "Best Original Song", "Best Foreign Language Film",
    "Best Documentary Feature", "Best Visual Effects",
]

_DISCOVERIES = [
    ("Penicillin", "Alexander Fleming"), ("Gravity", "Isaac Newton"),
    ("Radioactivity", "Henri Becquerel"), ("Radium", "Marie Curie"),
    ("Electron", "J J Thomson"), ("Neutron", "James Chadwick"),
    ("DNA structure", "Watson and Crick"), ("Oxygen", "Joseph Priestley"),
    ("Vaccination", "Edward Jenner"), ("X-rays", "Wilhelm Roentgen"),
    ("Electromagnetic induction", "Michael Faraday"),
    ("Theory of relativity", "Albert Einstein"),
    ("Evolution by natural selection", "Charles Darwin"),
    ("Pasteurization", "Louis Pasteur"), ("Insulin", "Frederick Banting"),
    ("Blood circulation", "William Harvey"), ("Cell nucleus", "Robert Brown"),
    ("Electric battery", "Alessandro Volta"), ("Periodic law", "Dmitri Mendeleev"),
    ("Quantum theory", "Max Planck"), ("Superconductivity", "Heike Onnes"),
    ("Hydrogen", "Henry Cavendish"),
]

_PRESIDENT_LIBRARIES = [
    ("Herbert Hoover", "Hoover Presidential Library", "West Branch Iowa"),
    ("Franklin D. Roosevelt", "Roosevelt Presidential Library", "Hyde Park New York"),
    ("Harry S. Truman", "Truman Presidential Library", "Independence Missouri"),
    ("Dwight D. Eisenhower", "Eisenhower Presidential Library", "Abilene Kansas"),
    ("John F. Kennedy", "Kennedy Presidential Library", "Boston Massachusetts"),
    ("Lyndon B. Johnson", "Johnson Presidential Library", "Austin Texas"),
    ("Richard Nixon", "Nixon Presidential Library", "Yorba Linda California"),
    ("Gerald Ford", "Ford Presidential Library", "Ann Arbor Michigan"),
    ("Jimmy Carter", "Carter Presidential Library", "Atlanta Georgia"),
    ("Ronald Reagan", "Reagan Presidential Library", "Simi Valley California"),
    ("George Bush", "Bush Presidential Library", "College Station Texas"),
    ("Bill Clinton", "Clinton Presidential Library", "Little Rock Arkansas"),
]

_INTERNET_DOMAINS = [
    (".com", "Commercial organizations"), (".org", "Nonprofit organizations"),
    (".net", "Network infrastructure"), (".edu", "Educational institutions"),
    (".gov", "United States government"), (".mil", "United States military"),
    (".int", "International organizations"), (".info", "Information sites"),
    (".biz", "Business use"), (".name", "Individuals"),
    (".museum", "Museums"), (".aero", "Air transport industry"),
]

_METAL_GENRES = ["Black metal", "Black metal", "Death metal", "Doom metal",
                 "Thrash metal", "Power metal", "Black metal", "Folk metal"]

_NOBEL_FIELDS = ["Physics", "Chemistry", "Medicine", "Literature", "Peace", "Economics"]

_CAR_BRANDS = ["Bugatti", "Koenigsegg", "McLaren", "Ferrari", "Lamborghini",
               "Porsche", "Pagani", "Aston Martin", "Jaguar", "Chevrolet"]

_SHOE_BRANDS = ["Nike", "Adidas", "Asics", "Brooks", "Saucony", "New Balance",
                "Mizuno", "Reebok"]

_GUITAR_SERIES = ["RG series", "S series", "JEM series", "Artcore series",
                  "Iceman series", "Talman series", "SR series", "Prestige series"]


# ---------------------------------------------------------------------------
# Registry construction
# ---------------------------------------------------------------------------

def build_registry(seed: int = 7) -> Dict[str, Domain]:
    """Build all content and distractor domains deterministically."""
    rng = random.Random(seed)
    domains: List[Domain] = []

    def add(domain: Domain) -> None:
        domains.append(domain)

    # A shared pool of public figures: the same names appear as Wimbledon
    # champions, PGA players, award winners, Nobel laureates — exactly the
    # cross-domain entity-column overlap that makes naive header importing
    # (NbrText) fragile while WWT's confidence-gated edges stay safe.
    celebrities = [person_name(rng) for _ in range(64)]

    def celebrity(r: random.Random) -> str:
        return pick(r, celebrities)

    # -- content domains -----------------------------------------------------

    n = len(real.COUNTRIES)
    add(Domain(
        key="countries",
        page_title="List of countries - world statistics",
        topic_phrase="countries of the world",
        context_templates=(
            "Statistics for countries of the world including economic indicators.",
            "This page lists sovereign countries with key national data.",
            "World factbook style reference for every country and territory.",
        ),
        attributes=(
            _attr("name", ("Country", "Country name", "Nation"), ("Name",)),
            _attr("currency", ("Currency", "National currency", "Currency unit"),
                  ("Unit",), presence=0.85),
            _attr("gdp", ("GDP", "GDP millions USD", "Gross domestic product"),
                  ("Value",), presence=0.9),
            _attr("population", ("Population", "Population estimate", "Total population"),
                  ("Total",), presence=0.9),
            _attr("exchange_rate", ("US dollar exchange rate", "Exchange rate per USD",
                                    "Rate to US dollar"), ("Rate",), presence=0.75),
            _attr("fuel", ("Daily fuel consumption", "Fuel consumption barrels day",
                           "Oil consumption"), ("Consumption",), presence=0.28),
        ),
        rows=_rows(
            [c for c, _cur in real.COUNTRIES],
            [cur for _c, cur in real.COUNTRIES],
            [money(rng, 10_000, 15_000_000, "") for _ in range(n)],
            [count(rng, 300_000, 1_350_000_000) for _ in range(n)],
            [f"{rng.uniform(0.5, 120):.2f}" for _ in range(n)],
            [count(rng, 10_000, 19_000_000) for _ in range(n)],
        ),
        num_pages=35,
    ))

    add(Domain(
        key="us_states",
        page_title="List of U.S. states",
        topic_phrase="us states",
        context_templates=(
            "The fifty usa states with their capitals and population figures.",
            "Reference list of US states, state capitals and largest cities.",
        ),
        attributes=(
            _attr("name", ("State", "US state", "State name"), ("Name",)),
            _attr("capital", ("Capital", "State capital", "Capital city"),
                  ("City",), presence=0.7),
            _attr("largest_city", ("Largest city", "Biggest city", "Most populous city"),
                  ("City",), presence=0.6),
            _attr("population", ("Population", "Population 2010", "Residents"),
                  ("Total",), presence=0.8),
        ),
        rows=_rows(
            [s for s, _c, _l in real.US_STATES],
            [c for _s, c, _l in real.US_STATES],
            [l for _s, _c, l in real.US_STATES],
            [count(rng, 560_000, 37_000_000) for _ in real.US_STATES],
        ),
        num_pages=26,
    ))

    add(Domain(
        key="dogs",
        page_title="Dog breeds directory",
        topic_phrase="dog breed",
        context_templates=(
            "Complete directory of every recognized dog breed with origin.",
            "Find your dog breed: temperament, origin and group.",
        ),
        attributes=(
            _attr("breed", ("Dog breed", "Breed"), ("Name", "Dog")),
            _attr("origin", ("Country of origin", "Origin"), (), presence=0.8),
            _attr("group", ("Breed group", "Group"), (), presence=0.5),
        ),
        rows=tuple(
            (b, pick(rng, [c for c, _x in real.COUNTRIES]),
             pick(rng, ["Working", "Herding", "Toy", "Hound", "Terrier", "Sporting"]))
            for b in real.DOG_BREEDS
        ),
        num_pages=40,
        vague_prob=0.35,
    ))

    add(Domain(
        key="wrestlers",
        page_title="Professional wrestlers roster",
        topic_phrase="professional wrestlers",
        context_templates=(
            "Roster of professional wrestlers with ring names and debut years.",
            "Professional wrestling champions through the decades.",
        ),
        attributes=(
            _attr("wrestler", ("Wrestler", "Ring name", "Professional wrestler"), ("Name",)),
            _attr("real_name", ("Real name", "Birth name"), (), presence=0.6),
            _attr("debut", ("Debut year", "Debut"), (), presence=0.6),
        ),
        rows=tuple(
            (f"{pick(rng, ADJECTIVES)} {pick(rng, NOUNS)}", person_name(rng),
             year(rng, 1970, 2010))
            for _ in range(34)
        ),
        num_pages=30,
    ))

    add(Domain(
        key="moon_phases",
        page_title="Phases of the Moon explained",
        topic_phrase="phases of the moon",
        context_templates=(
            "The phases of the moon and their illumination percentages.",
            "Lunar calendar guide describing each moon phase.",
        ),
        attributes=(
            _attr("phase", ("Moon phase", "Phase", "Phase name"), ("Name",)),
            _attr("illumination", ("Illumination", "Percent illuminated"), (), presence=0.8),
        ),
        rows=tuple(real.MOON_PHASES),
        num_pages=10,
    ))

    add(Domain(
        key="pm_england",
        page_title="Prime Ministers of England and the United Kingdom",
        topic_phrase="prime ministers of england",
        context_templates=(
            "Chronological list of prime ministers of england and britain.",
        ),
        attributes=(
            _attr("pm", ("Prime Minister", "Prime ministers of England"), ("Name",)),
            _attr("term", ("Term of office", "Years"), (), presence=0.8),
            _attr("party", ("Party", "Political party"), (), presence=0.6),
        ),
        rows=tuple(
            (f"{person_name(rng)}", f"{1721 + 9 * i}-{1721 + 9 * i + rng.randint(2, 9)}",
             pick(rng, ["Whig", "Tory", "Conservative", "Labour", "Liberal"]))
            for i in range(28)
        ),
        num_pages=3,
    ))

    add(Domain(
        key="banks",
        page_title="Bank interest rates comparison",
        topic_phrase="banks interest rates",
        context_templates=(
            "Compare banks and their savings interest rates updated monthly.",
            "Current deposit interest rates across major banks.",
        ),
        attributes=(
            _attr("bank", ("Bank", "Bank name"), ("Name", "Institution")),
            _attr("rate", ("Interest rate", "Savings rate", "Rate percent"),
                  ("Rate",), presence=0.92),
            _attr("branches", ("Branches", "Branch count"), (), presence=0.4),
        ),
        rows=tuple(
            (f"{pick(rng, ['First', 'United', 'National', 'Pacific', 'Liberty', 'Summit', 'Pioneer', 'Capital'])} "
             f"{pick(rng, ['Trust', 'Savings', 'Federal', 'Commerce', 'Mutual'])} Bank",
             f"{rng.uniform(0.2, 6.5):.2f}%", count(rng, 5, 4000))
            for _ in range(26)
        ),
        num_pages=22,
    ))

    add(Domain(
        key="metal_bands",
        page_title="Metal bands encyclopedia",
        topic_phrase="black metal bands",
        context_templates=(
            "Encyclopedia of metal bands from around the world.",
            "Band listing with country and genre information.",
        ),
        attributes=(
            # The paper's body-evidence case: headers say "Band name", only
            # the genre column's *content* says "Black metal".
            _attr("band", ("Band name", "Band"), ("Name",)),
            _attr("country", ("Country", "Country of origin"), (), presence=0.9),
            _attr("genre", ("Genre", "Style"), (), presence=0.75),
        ),
        rows=tuple(
            (phrase(rng), pick(rng, ["Norway", "Sweden", "Finland", "United States",
                                     "Germany", "Poland", "United Kingdom", "Brazil"]),
             pick(rng, _METAL_GENRES))
            for _ in range(40)
        ),
        num_pages=13,
        headerless=0.25,
    ))

    add(Domain(
        key="books_us",
        page_title="Bestselling books in United States",
        topic_phrase="books in united states",
        context_templates=(
            "Bestselling books in United States bookstores this decade.",
        ),
        attributes=(
            _attr("book", ("Book title", "Title", "Books"), ("Name",)),
            _attr("author", ("Author", "Written by"), (), presence=0.95),
            _attr("year", ("Year", "Published"), (), presence=0.5),
        ),
        rows=tuple(
            (f"The {pick(rng, ADJECTIVES)} {pick(rng, NOUNS)}", person_name(rng),
             year(rng, 1980, 2011))
            for _ in range(24)
        ),
        num_pages=2,
    ))

    add(Domain(
        key="car_accidents",
        page_title="Major car accidents records",
        topic_phrase="car accidents location",
        context_templates=(
            "Records of major car accidents by location and year.",
            "Traffic accident statistics and crash locations.",
        ),
        attributes=(
            _attr("location", ("Accident location", "Location", "Crash site"), ("Place",)),
            _attr("year", ("Year", "Accident year"), (), presence=0.9),
            _attr("fatalities", ("Fatalities", "Deaths"), (), presence=0.5),
        ),
        rows=tuple(
            (f"{city_name(rng)} highway", year(rng, 1980, 2011), count(rng, 1, 90))
            for _ in range(26)
        ),
        num_pages=6,
    ))

    add(Domain(
        key="sun_composition",
        page_title="Composition of the Sun",
        topic_phrase="composition of the sun",
        context_templates=(
            "Chemical composition of the sun by mass percentage.",
            "What the sun is made of: element abundances.",
        ),
        attributes=(
            _attr("component", ("Element", "Component", "Composition"), ("Name",)),
            _attr("percentage", ("Percentage", "Percent by mass", "Abundance"),
                  ("Value",), presence=0.95),
        ),
        rows=tuple(real.SUN_COMPOSITION),
        num_pages=8,
    ))

    add(Domain(
        key="fifa",
        page_title="FIFA World Cup winners history",
        topic_phrase="fifa world cup winners",
        context_templates=(
            "Every fifa worlds cup winner since the first tournament.",
            "World cup champions by year.",
        ),
        attributes=(
            _attr("winner", ("World cup winner", "Winners", "Champion"), ("Country",)),
            _attr("year", ("Year", "Tournament year"), (), presence=0.95),
        ),
        rows=tuple(_FIFA),
        num_pages=7,
    ))

    add(Domain(
        key="golden_globe",
        page_title="Golden Globe award winners",
        topic_phrase="golden globe award winners",
        context_templates=(
            "Golden Globe award winners by ceremony year.",
        ),
        attributes=(
            _attr("winner", ("Golden Globe winner", "Award winner", "Winner"), ("Name",)),
            _attr("year", ("Year", "Ceremony year"), (), presence=0.9),
            _attr("film", ("Film", "Movie"), (), presence=0.6),
        ),
        rows=tuple(
            (celebrity(rng), year(rng, 1970, 2011), phrase(rng))
            for _ in range(30)
        ),
        num_pages=13,
    ))

    add(Domain(
        key="ibanez",
        page_title="Ibanez guitar catalog",
        topic_phrase="ibanez guitar series",
        context_templates=(
            "Catalog of Ibanez guitar series and their models.",
        ),
        attributes=(
            _attr("series", ("Guitar series", "Ibanez series", "Series"), ("Line",)),
            _attr("model", ("Models", "Model number"), (), presence=0.9),
        ),
        rows=tuple(
            (pick(rng, _GUITAR_SERIES),
             f"{pick(rng, ['RG', 'S', 'JEM', 'SR', 'AR'])}{rng.randint(100, 999)}")
            for _ in range(28)
        ),
        num_pages=3,
    ))

    add(Domain(
        key="internet_domains",
        page_title="Internet top-level domains",
        topic_phrase="internet domains",
        context_templates=(
            "Internet domains and the entity each one serves.",
        ),
        attributes=(
            _attr("domain", ("Internet domain", "Domain", "TLD"), ("Name",)),
            _attr("entity", ("Entity", "Intended use"), (), presence=0.95),
        ),
        rows=tuple(_INTERNET_DOMAINS),
        num_pages=4,
    ))

    add(Domain(
        key="bond_films",
        page_title="James Bond films list",
        topic_phrase="james bond films",
        context_templates=(
            "All james bond films in release order.",
        ),
        attributes=(
            _attr("film", ("James Bond film", "Film", "Film title"), ("Title",)),
            _attr("year", ("Year", "Release year"), (), presence=0.95),
        ),
        rows=tuple(real.JAMES_BOND_FILMS),
        num_pages=7,
    ))

    add(Domain(
        key="windows",
        page_title="Microsoft Windows release history",
        topic_phrase="microsoft windows products",
        context_templates=(
            "Microsoft Windows products and their release dates.",
        ),
        attributes=(
            _attr("product", ("Windows product", "Product", "Version"), ("Name",)),
            _attr("release_date", ("Release date", "Released"), (), presence=0.95),
        ),
        rows=tuple(real.WINDOWS_PRODUCTS),
        num_pages=8,
    ))

    add(Domain(
        key="mlb",
        page_title="MLB World Series results",
        topic_phrase="mlb world series winners",
        context_templates=(
            "MLB world series winners by season.",
        ),
        attributes=(
            _attr("winner", ("World series winner", "Winning team", "Champion"), ("Team",)),
            _attr("year", ("Year", "Season"), (), presence=0.95),
        ),
        rows=tuple(
            (f"{pick(rng, real.US_CITIES)} {pick(rng, NOUNS)}s", year(rng, 1950, 2011))
            for _ in range(30)
        ),
        num_pages=4,
    ))

    add(Domain(
        key="movies",
        page_title="Box office gross records",
        topic_phrase="movies gross collection",
        context_templates=(
            "Movies ranked by worldwide gross collection.",
            "Highest grossing films of all time.",
        ),
        attributes=(
            _attr("movie", ("Movie", "Film", "Movie title"), ("Title",)),
            _attr("gross", ("Gross collection", "Worldwide gross", "Box office"),
                  ("Total",), presence=0.95),
            _attr("year", ("Year",), (), presence=0.5),
        ),
        rows=tuple(
            (f"{pick(rng, ADJECTIVES)} {pick(rng, NOUNS)}",
             money(rng, 40_000_000, 2_000_000_000), year(rng, 1975, 2011))
            for _ in range(40)
        ),
        num_pages=34,
    ))

    add(Domain(
        key="parrots",
        page_title="Parrot species guide",
        topic_phrase="name of parrot",
        context_templates=(
            "Guide to parrot species with scientific names.",
        ),
        attributes=(
            _attr("parrot", ("Parrot", "Parrot name", "Common name"), ("Name",)),
            _attr("binomial", ("Binomial name", "Scientific name"), (), presence=0.9),
        ),
        rows=tuple(real.PARROTS),
        num_pages=6,
    ))

    add(Domain(
        key="mountains",
        page_title="Mountains of North America",
        topic_phrase="north american mountains",
        context_templates=(
            "The tallest north american mountains with elevations.",
            "Mountain peaks of North America ranked by height.",
        ),
        attributes=(
            _attr("mountain", ("Mountain", "Peak", "Mountain name"), ("Name",)),
            _attr("height", ("Height", "Elevation", "Height metres"), ("Value",),
                  presence=0.9),
            _attr("country", ("Country",), (), presence=0.5),
        ),
        rows=tuple((m, str(h), c) for m, h, c in real.MOUNTAINS),
        num_pages=17,
    ))

    add(Domain(
        key="painkillers",
        page_title="Pain relief medication reference",
        topic_phrase="pain killers",
        context_templates=(
            "Common pain killers and the company producing each.",
        ),
        attributes=(
            _attr("drug", ("Pain killer", "Medication", "Drug"), ("Name",)),
            _attr("company", ("Company", "Manufacturer"), (), presence=0.95),
            _attr("side_effects", ("Side effects",), (), presence=0.5),
        ),
        rows=tuple(
            (f"{pick(rng, ['Ibu', 'Para', 'Napro', 'Keto', 'Diclo', 'Aceta'])}"
             f"{pick(rng, ['profen', 'cetamol', 'xen', 'fenac', 'rolac', 'minophen'])}",
             company_name(rng), pick(rng, ["Nausea", "Dizziness", "Drowsiness", "Headache"]))
            for _ in range(16)
        ),
        num_pages=1,
    ))

    add(Domain(
        key="pga",
        page_title="PGA tour leaderboard archive",
        topic_phrase="pga players",
        context_templates=(
            "PGA players and total score from the championship leaderboard.",
        ),
        attributes=(
            _attr("player", ("PGA player", "Player", "Golfer"), ("Name",)),
            _attr("score", ("Total score", "Score", "Final score"), ("Total",),
                  presence=0.9),
            _attr("country", ("Country",), (), presence=0.4),
        ),
        rows=tuple(
            (celebrity(rng), f"{rng.randint(-18, 6):+d}",
             pick(rng, [c for c, _x in real.COUNTRIES[:20]]))
            for _ in range(32)
        ),
        num_pages=19,
    ))

    add(Domain(
        key="running_shoes",
        page_title="Running shoe reviews",
        topic_phrase="running shoes model",
        context_templates=(
            "Running shoes model comparison with brand companies.",
        ),
        attributes=(
            _attr("model", ("Shoe model", "Running shoe", "Model"), ("Name",)),
            _attr("company", ("Company", "Brand"), (), presence=0.9),
            _attr("price", ("Price",), (), presence=0.6),
        ),
        rows=tuple(
            (f"{pick(rng, _SHOE_BRANDS)} {pick(rng, NOUNS)} {rng.randint(2, 12)}",
             pick(rng, _SHOE_BRANDS), money(rng, 60, 180))
            for _ in range(24)
        ),
        num_pages=4,
    ))

    add(Domain(
        key="discoveries",
        page_title="Great science discoveries",
        topic_phrase="science discoveries",
        context_templates=(
            "Major science discoveries and their discoverers.",
            "Timeline of scientific discovery.",
        ),
        attributes=(
            _attr("discovery", ("Discovery", "Science discovery"), ("Name",)),
            _attr("discoverer", ("Discoverer", "Discovered by", "Scientist"),
                  (), presence=0.92),
            _attr("year", ("Year",), (), presence=0.5),
        ),
        rows=tuple(
            (d, p, year(rng, 1600, 1980)) for d, p in _DISCOVERIES
        ),
        num_pages=22,
    ))

    add(Domain(
        key="universities",
        page_title="University mottos",
        topic_phrase="university motto",
        context_templates=(
            "Universities and the motto each institution bears.",
        ),
        attributes=(
            _attr("university", ("University", "Institution"), ("Name",)),
            _attr("motto", ("Motto", "University motto"), (), presence=0.92),
        ),
        rows=tuple(
            (f"University of {pick(rng, real.US_CITIES)}",
             f"{pick(rng, ['Lux', 'Veritas', 'Scientia', 'Fides', 'Libertas'])} et "
             f"{pick(rng, ['veritas', 'labor', 'sapientia', 'virtus', 'humanitas'])}")
            for _ in range(18)
        ),
        num_pages=4,
    ))

    add(Domain(
        key="us_cities",
        page_title="US cities by population",
        topic_phrase="us cities",
        context_templates=(
            "Population figures for the largest us cities.",
        ),
        attributes=(
            _attr("city", ("US city", "City"), ("Name",)),
            _attr("population", ("Population", "Population 2010"), ("Total",),
                  presence=0.92),
            _attr("state", ("State",), (), presence=0.5),
        ),
        rows=tuple(
            (c, count(rng, 380_000, 8_200_000),
             pick(rng, [s for s, _c, _l in real.US_STATES]))
            for c in real.US_CITIES
        ),
        num_pages=21,
    ))

    add(Domain(
        key="pizza_stores",
        page_title="Pizza franchise business report",
        topic_phrase="us pizza store",
        context_templates=(
            "Annual sales figures for each us pizza store chain.",
        ),
        attributes=(
            _attr("store", ("Pizza store", "Pizza chain", "Store"), ("Name",)),
            _attr("sales", ("Annual sales", "Sales millions", "Yearly sales"),
                  ("Total",), presence=0.9),
        ),
        rows=tuple(
            (f"{pick(rng, ADJECTIVES)} Pizza {pick(rng, ['Kitchen', 'Express', 'House', 'Hut'])}",
             money(rng, 1_000_000, 900_000_000))
            for _ in range(18)
        ),
        num_pages=1,
    ))

    add(Domain(
        key="video_games",
        page_title="Video game releases database",
        topic_phrase="video games",
        context_templates=(
            "Database of video games with developer company and year.",
        ),
        attributes=(
            _attr("game", ("Video game", "Game title", "Game"), ("Title",)),
            _attr("company", ("Company", "Developer", "Publisher"), (), presence=0.9),
            _attr("year", ("Year",), (), presence=0.6),
        ),
        rows=tuple(
            (f"{pick(rng, ADJECTIVES)} {pick(rng, NOUNS)} {pick(rng, ['II', 'III', 'IV', 'Online', 'Zero', ''])}".strip(),
             company_name(rng), year(rng, 1985, 2011))
            for _ in range(36)
        ),
        num_pages=18,
    ))

    add(Domain(
        key="wimbledon",
        page_title="Wimbledon champions roll",
        topic_phrase="wimbledon champions",
        context_templates=(
            "Wimbledon champions year by year.",
        ),
        attributes=(
            _attr("champion", ("Wimbledon champion", "Champion", "Winner"), ("Name",)),
            _attr("year", ("Year",), (), presence=0.95),
            _attr("country", ("Country",), (), presence=0.4),
        ),
        rows=tuple(
            (celebrity(rng), str(1968 + i),
             pick(rng, [c for c, _x in real.COUNTRIES[:15]]))
            for i in range(42)
        ),
        num_pages=16,
    ))

    add(Domain(
        key="buildings",
        page_title="World's tallest buildings",
        topic_phrase="world tallest buildings",
        context_templates=(
            "The world tallest buildings ranked by structural height.",
        ),
        attributes=(
            _attr("building", ("Building", "Building name", "Tower"), ("Name",)),
            _attr("height", ("Height", "Height m", "Structural height"), ("Value",),
                  presence=0.9),
            _attr("city", ("City",), (), presence=0.6),
        ),
        rows=tuple(_BUILDINGS),
        num_pages=9,
    ))

    add(Domain(
        key="academy_awards",
        page_title="Academy Awards winners archive",
        topic_phrase="academy award category",
        context_templates=(
            "Academy award winners by category and ceremony year.",
        ),
        attributes=(
            _attr("category", ("Academy award category", "Award category", "Category"),
                  (), presence=1.0),
            _attr("winner", ("Winner", "Award winner"), ("Name",), presence=0.92),
            _attr("year", ("Year", "Ceremony"), (), presence=0.85),
        ),
        rows=tuple(
            (pick(rng, _ACADEMY_CATEGORIES), celebrity(rng), year(rng, 1960, 2011))
            for _ in range(40)
        ),
        num_pages=14,
    ))

    add(Domain(
        key="elements",
        page_title="Periodic table of the elements",
        topic_phrase="chemical element",
        context_templates=(
            "Periodic table listing each chemical element with atomic data.",
        ),
        attributes=(
            _attr("element", ("Chemical element", "Element", "Element name"), ("Name",)),
            _attr("atomic_number", ("Atomic number", "Number", "Z"), (), presence=0.9),
            _attr("atomic_weight", ("Atomic weight", "Atomic mass", "Weight"),
                  (), presence=0.85),
        ),
        rows=tuple((e, str(z), w) for e, z, w in real.ELEMENTS),
        num_pages=19,
    ))

    add(Domain(
        key="stocks",
        page_title="Stock market quotes",
        topic_phrase="company stock ticker",
        context_templates=(
            "Live company stock ticker symbols and share prices.",
        ),
        attributes=(
            _attr("company", ("Company", "Company name"), ("Name",)),
            _attr("ticker", ("Stock ticker", "Ticker", "Symbol"), (), presence=0.95),
            _attr("price", ("Price", "Share price", "Last price"), ("Value",),
                  presence=0.9),
        ),
        rows=tuple(
            (company_name(rng),
             "".join(picks(rng, list("ABCDEFGHIJKLMNOPQRSTUVWXYZ"), rng.randint(2, 4))),
             money(rng, 2, 900))
            for _ in range(40)
        ),
        num_pages=32,
    ))

    add(Domain(
        key="edu_exchange",
        page_title="International educational exchange report",
        topic_phrase="educational exchange discipline",
        context_templates=(
            "Educational exchange discipline enrollment in US universities.",
        ),
        attributes=(
            _attr("discipline", ("Discipline", "Field of study", "Exchange discipline"),
                  ("Name",)),
            _attr("students", ("Number of students", "Students", "Enrollment"),
                  ("Total",), presence=0.9),
            _attr("year", ("Year",), (), presence=0.85),
        ),
        rows=tuple(
            (d, count(rng, 500, 90_000), year(rng, 2000, 2011))
            for d in ["Engineering", "Business and Management", "Mathematics",
                      "Computer Science", "Physical Sciences", "Social Sciences",
                      "Fine Arts", "Health Professions", "Education", "Humanities",
                      "Agriculture", "Law"]
        ),
        num_pages=2,
    ))

    add(Domain(
        key="fast_cars",
        page_title="Fastest production cars",
        topic_phrase="fast cars",
        context_templates=(
            "The world's fast cars with manufacturer and top speed.",
        ),
        attributes=(
            _attr("car", ("Car", "Car model", "Fast car"), ("Name", "Model")),
            _attr("company", ("Company", "Manufacturer", "Maker"), (), presence=0.9),
            _attr("top_speed", ("Top speed", "Max speed", "Top speed kmh"), (),
                  presence=0.9),
        ),
        rows=tuple(
            (f"{pick(rng, _CAR_BRANDS)} {pick(rng, NOUNS)} {pick(rng, ['GT', 'SS', 'RS', 'Veloce'])}",
             pick(rng, _CAR_BRANDS), f"{rng.randint(290, 431)} km/h")
            for _ in range(30)
        ),
        num_pages=17,
    ))

    add(Domain(
        key="food_nutrition",
        page_title="Food nutrition facts",
        topic_phrase="food fat protein",
        context_templates=(
            "Nutrition facts: food items with fat and protein per 100 grams.",
        ),
        attributes=(
            _attr("food", ("Food", "Food item"), ("Name", "Item")),
            _attr("fat", ("Fat", "Fat g", "Total fat"), (), presence=0.9),
            _attr("protein", ("Protein", "Protein g"), (), presence=0.9),
        ),
        rows=tuple(real.FOODS),
        num_pages=26,
    ))

    add(Domain(
        key="ipods",
        page_title="iPod model history",
        topic_phrase="ipod models",
        context_templates=(
            "Every ipod model with release date and launch price.",
        ),
        attributes=(
            _attr("model", ("iPod model", "Model", "iPod"), ("Name",)),
            _attr("release_date", ("Release date", "Released"), (), presence=0.85),
            _attr("price", ("Price", "Launch price"), ("Value",), presence=0.8),
        ),
        rows=tuple(real.IPOD_MODELS),
        num_pages=11,
    ))

    add(Domain(
        key="explorers",
        page_title="List of explorers",
        topic_phrase="name of explorers",
        context_templates=(
            "This article lists the explorations in history with each explorer.",
            "Famous explorers, their nationality and the areas they explored.",
        ),
        attributes=(
            _attr("explorer", ("Name of Explorers", "Explorer", "Who explorer"),
                  ("Name",)),
            _attr("nationality", ("Nationality",), (), presence=0.85),
            _attr("areas", ("Areas Explored", "Main areas explored", "Exploration"),
                  (), presence=0.85),
        ),
        rows=tuple(real.EXPLORERS),
        num_pages=9,
        two_header=0.3,
    ))

    add(Domain(
        key="nba",
        page_title="NBA match results",
        topic_phrase="nba match",
        context_templates=(
            "NBA match results with date and winner.",
        ),
        attributes=(
            _attr("match", ("NBA match", "Match", "Game"), ("Name",)),
            _attr("date", ("Date", "Game date"), (), presence=0.9),
            _attr("winner", ("Winner", "Winning team"), (), presence=0.9),
        ),
        rows=tuple(
            (lambda a, b: (f"{a} vs {b}",
                           f"{pick(rng, ['Jan', 'Feb', 'Mar', 'Apr', 'Nov', 'Dec'])} "
                           f"{rng.randint(1, 28)}, {year(rng, 2005, 2011)}",
                           pick(rng, [a, b])))(
                f"{pick(rng, real.US_CITIES)} {pick(rng, NOUNS)}s",
                f"{pick(rng, real.US_CITIES)} {pick(rng, NOUNS)}s")
            for _ in range(36)
        ),
        num_pages=21,
    ))

    add(Domain(
        key="jedi_novels",
        page_title="New Jedi Order novels",
        topic_phrase="new jedi order novels",
        context_templates=(
            "The new jedi order novels with authors and release years.",
        ),
        attributes=(
            _attr("novel", ("Novel", "Novel title", "Jedi Order novel"), ("Title",)),
            _attr("author", ("Authors", "Author", "Written by"), (), presence=0.92),
            _attr("year", ("Year", "Published"), (), presence=0.85),
        ),
        rows=tuple(
            (f"{pick(rng, ['Vector', 'Dark', 'Edge', 'Star', 'Balance', 'Force'])} "
             f"{pick(rng, ['Prime', 'Tide', 'of Victory', 'Journey', 'Point', 'Heretic'])}",
             person_name(rng), year(rng, 1999, 2004))
            for _ in range(25)
        ),
        num_pages=15,
    ))

    add(Domain(
        key="nobel",
        page_title="Nobel laureates list",
        topic_phrase="nobel prize winners",
        context_templates=(
            "Nobel prize winners with field and award year.",
            "Laureates honored by the Nobel committee.",
        ),
        attributes=(
            # The split-header/context case: pages often label the column
            # just "Winner" and mention "Nobel prize" only in the context.
            _attr("winner", ("Winner", "Laureate", "Prize winner"), ("Name",)),
            _attr("field", ("Field", "Category"), (), presence=0.9),
            _attr("year", ("Year",), (), presence=0.9),
        ),
        rows=tuple(
            (celebrity(rng), pick(rng, _NOBEL_FIELDS), year(rng, 1950, 2011))
            for _ in range(34)
        ),
        num_pages=7,
    ))

    add(Domain(
        key="olympus",
        page_title="Olympus digital SLR lineup",
        topic_phrase="olympus digital slr models",
        context_templates=(
            "Olympus digital SLR models with sensor resolution and price.",
        ),
        attributes=(
            _attr("model", ("SLR model", "Camera model", "Olympus model"), ("Name",)),
            _attr("resolution", ("Resolution", "Megapixels"), (), presence=0.9),
            _attr("price", ("Price",), ("Value",), presence=0.85),
        ),
        rows=tuple(
            (f"Olympus E-{rng.randint(1, 620)}", f"{rng.randint(5, 16)} MP",
             money(rng, 350, 1800))
            for _ in range(16)
        ),
        num_pages=3,
    ))

    add(Domain(
        key="pres_library",
        page_title="Presidential libraries directory",
        topic_phrase="president library name",
        context_templates=(
            "Each president with library name and location.",
        ),
        attributes=(
            _attr("president", ("President", "US president"), ("Name",)),
            _attr("library", ("Library name", "Presidential library"), (), presence=0.9),
            _attr("location", ("Location", "City"), (), presence=0.9),
        ),
        rows=tuple(_PRESIDENT_LIBRARIES),
        num_pages=2,
    ))

    add(Domain(
        key="religions",
        page_title="World religions overview",
        topic_phrase="religion number of followers",
        context_templates=(
            "Major world religions with number of followers and origins.",
        ),
        attributes=(
            _attr("religion", ("Religion", "Faith"), ("Name",)),
            _attr("followers", ("Number of followers", "Followers", "Adherents"),
                  ("Total",), presence=0.9),
            _attr("origin", ("Country of origin", "Origin", "Birthplace"), (),
                  presence=0.85),
        ),
        rows=tuple(
            (r, count(rng, 1_000_000, 2_300_000_000), o)
            for r, o in real.RELIGIONS
        ),
        num_pages=20,
    ))

    add(Domain(
        key="star_trek",
        page_title="Star Trek novel releases",
        topic_phrase="star trek novels",
        context_templates=(
            "Star trek novels with authors and release dates.",
        ),
        attributes=(
            _attr("novel", ("Star Trek novel", "Novel", "Title"), ("Name",)),
            _attr("author", ("Authors", "Author"), (), presence=0.92),
            _attr("release_date", ("Release date", "Published"), (), presence=0.9),
        ),
        rows=tuple(
            (f"Star Trek {pick(rng, ['Destiny', 'Titan', 'Vanguard', 'Legacy', 'Frontier'])} "
             f"{pick(rng, NOUNS)}", person_name(rng), year(rng, 1985, 2011))
            for _ in range(22)
        ),
        num_pages=5,
    ))

    add(Domain(
        key="aus_cities",
        page_title="Australian cities statistical areas",
        topic_phrase="australian cities",
        context_templates=(
            "Australian cities with their greater statistical area.",
        ),
        attributes=(
            _attr("city", ("Australian city", "City"), ("Name",)),
            _attr("area", ("Area", "Area km2", "Land area"), ("Value",), presence=0.9),
        ),
        rows=tuple(real.AUSTRALIAN_CITIES),
        num_pages=4,
    ))

    # -- distractor domains ---------------------------------------------------
    # Pages that share query keywords without holding the queried relation.

    def keyword_distractor(
        key: str,
        title: str,
        topic: str,
        headers: Sequence[Sequence[str]],
        row_maker: Callable[[random.Random], Tuple[str, ...]],
        pages: int,
        templates: Optional[Sequence[str]] = None,
    ) -> Domain:
        rows = tuple(row_maker(rng) for _ in range(rng.randint(10, 22)))
        return Domain(
            key=key,
            page_title=title,
            topic_phrase=topic,
            context_templates=tuple(
                templates or (f"All about {topic} and related offers.",)
            ),
            attributes=tuple(
                _attr(f"col{i}", (h,), ()) for i, h in enumerate(headers)
            ),
            rows=rows,
            num_pages=pages,
            is_distractor=True,
        )

    add(keyword_distractor(
        "d_kings_africa", "King size beds sale - Africa imports",
        "kings of africa king size africa",
        ("Product", "Price"),
        lambda r: (f"King size {pick(r, ['bed', 'mattress', 'frame', 'duvet'])} "
                   f"{pick(r, ADJECTIVES)}", money(r, 150, 2200)),
        8,
    ))
    add(keyword_distractor(
        "d_safari", "African safari tour packages",
        "africa safari kings wildlife",
        ("Tour", "Cost"),
        lambda r: (f"{pick(r, ['Serengeti', 'Kruger', 'Masai Mara', 'Okavango'])} "
                   f"{pick(r, ['safari', 'lodge', 'camp'])}", money(r, 900, 9000)),
        8,
    ))
    add(keyword_distractor(
        "d_moon_project", "Project management phases guide",
        "phases of project moon shot",
        ("Phase", "Deadline"),
        lambda r: (f"{pick(r, ['Planning', 'Design', 'Build', 'Test', 'Launch'])} phase",
                   f"Q{r.randint(1, 4)} {year(r, 2005, 2011)}"),
        12,
    ))
    add(keyword_distractor(
        "d_moon_astrology", "Moon sign astrology tables",
        "moon sign astrology phases",
        ("Sign", "Dates"),
        lambda r: (pick(r, ["Aries", "Taurus", "Gemini", "Cancer", "Leo", "Virgo",
                            "Libra", "Scorpio"]),
                   f"{pick(r, ['Jan', 'Feb', 'Mar', 'Apr'])} {r.randint(1, 28)}"),
        12,
    ))
    add(keyword_distractor(
        "d_pm_football", "England football managers",
        "england managers prime form",
        ("Manager", "Club"),
        lambda r: (person_name(r), f"{city_name(r)} FC"),
        16,
    ))
    add(keyword_distractor(
        "d_olympics", "2008 Beijing Olympics news archive",
        "2008 beijing olympic events winners gold medal sports event",
        ("Article", "Date"),
        lambda r: (f"Olympic {pick(r, ['preview', 'recap', 'feature', 'interview'])}: "
                   f"{phrase(r)}", f"Aug {r.randint(8, 24)}, 2008"),
        18,
        templates=("News coverage of the 2008 beijing olympic events and winners.",),
    ))
    add(keyword_distractor(
        "d_clothing", "Clothing care symbols guide",
        "clothing sizes symbols care",
        ("Symbol", "Meaning"),
        lambda r: (f"{pick(r, ['Circle', 'Square', 'Triangle', 'Cross'])} "
                   f"{pick(r, ['icon', 'mark'])}",
                   pick(r, ["Dry clean", "No bleach", "Tumble dry", "Hand wash"])),
        12,
        templates=("Care label symbols explained for all clothing sizes.",),
    ))
    add(keyword_distractor(
        "d_banks_river", "River banks fishing spots",
        "river banks fishing rates",
        ("Spot", "Rating"),
        lambda r: (f"{city_name(r)} river bank", f"{r.randint(1, 5)} stars"),
        10,
    ))
    add(keyword_distractor(
        "d_car_rentals", "Car rental accident coverage",
        "car accidents insurance location",
        ("Plan", "Premium"),
        lambda r: (f"{pick(r, ADJECTIVES)} coverage plan", money(r, 9, 60)),
        20,
        templates=("Insurance plans covering car accidents at any location.",),
    ))
    add(keyword_distractor(
        "d_sun_horoscope", "Sun sign compatibility",
        "sun sign composition percentage",
        ("Sign", "Compatibility"),
        lambda r: (pick(r, ["Aries", "Leo", "Sagittarius", "Gemini", "Libra"]),
                   f"{r.randint(40, 99)}%"),
        22,
        templates=("Compatibility percentage for each sun sign pairing.",),
    ))
    add(keyword_distractor(
        "d_fifa_tickets", "FIFA world cup ticket resale",
        "fifa world cup tickets winners",
        ("Match", "Ticket price"),
        lambda r: (f"{pick(r, [c for c, _x in real.COUNTRIES[:20]])} vs "
                   f"{pick(r, [c for c, _x in real.COUNTRIES[:20]])}", money(r, 40, 900)),
        20,
        templates=("Buy fifa worlds cup tickets; winners announced weekly.",),
    ))
    add(keyword_distractor(
        "d_guitar_lessons", "Guitar lessons pricing",
        "ibanez guitar lessons series models",
        ("Lesson", "Fee"),
        lambda r: (f"{pick(r, ['Beginner', 'Blues', 'Metal', 'Jazz'])} guitar course",
                   money(r, 20, 90)),
        10,
    ))
    add(keyword_distractor(
        "d_ev_concepts", "Electric vehicle concept news",
        "pre-production electric vehicle release",
        ("Story", "Posted"),
        lambda r: (f"Concept EV {phrase(r)}", year(r, 2008, 2011)),
        3,
        templates=("Rumors on every pre-production electric vehicle release date.",),
    ))
    add(keyword_distractor(
        "d_cellphones", "Used cellphones buying guide",
        "used cellphones price guide",
        ("Tip", "Detail"),
        lambda r: (f"Check the {pick(r, ['battery', 'screen', 'charger', 'IMEI'])}",
                   pick(r, ["before buying", "at the store", "online"])),
        16,
        templates=("How to judge a used cellphones price before you buy.",),
    ))
    add(keyword_distractor(
        "d_pizza_recipes", "Pizza recipes collection",
        "pizza store style annual recipes",
        ("Recipe", "Bake time"),
        lambda r: (f"{pick(r, ['Neapolitan', 'Chicago', 'New York', 'Sicilian'])} pizza",
                   f"{r.randint(8, 25)} min"),
        18,
        templates=("Recipes inspired by every us pizza store style; sales of books annual.",),
    ))
    add(keyword_distractor(
        "d_buildings_codes", "Building permit fee schedule",
        "building permits height fees world",
        ("Permit", "Fee"),
        lambda r: (f"{pick(r, ['Residential', 'Commercial', 'Industrial'])} permit "
                   f"class {r.randint(1, 5)}", money(r, 100, 4000)),
        20,
        templates=("Fee schedule by building height for the world permit office.",),
    ))
    add(keyword_distractor(
        "d_forest_reserves", "Other Formal Reserves 1.3 Forest Reserves",
        "forest reserves exploration mining areas",
        ("ID", "Name", "Area"),
        lambda r: (str(r.randint(1, 99)),
                   f"{pick(r, ['Shakespeare', 'Plains', 'Welcome', 'Harlequin', 'Maydena'])} "
                   f"{pick(r, ['Hills', 'Creek', 'Swamp', 'Ridge'])}",
                   str(r.randint(50, 4000))),
        4,
        templates=(
            "Other Formal Reserves 1.3 Forest Reserves under the Forestry Act 1920.",
            "All areas will be available for mineral exploration and mining.",
        ),
    ))
    add(keyword_distractor(
        "d_wrestling_moves", "Wrestling moves glossary",
        "wrestling moves professional holds",
        ("Move", "Type"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['suplex', 'slam', 'lock', 'drop'])}",
                   pick(r, ["Aerial", "Submission", "Strike", "Throw"])),
        2,
    ))
    add(keyword_distractor(
        "d_academy_schools", "Academy school admissions",
        "academy admissions category year",
        ("Program", "Seats"),
        lambda r: (f"{pick(r, ADJECTIVES)} academy {pick(r, ['science', 'arts'])} track",
                   str(r.randint(20, 200))),
        18,
        templates=("Admissions by award category for each academy year.",),
    ))
    add(keyword_distractor(
        "d_mountain_gear", "Mountain climbing gear shop",
        "mountains climbing gear height north",
        ("Gear", "Price"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['rope', 'harness', 'crampon', 'tent'])}",
                   money(r, 25, 700)),
        11,
        templates=("Gear for north american mountains expeditions at any height.",),
    ))
    add(keyword_distractor(
        "d_wimbledon_tickets", "Wimbledon hospitality packages",
        "wimbledon tickets champions hospitality",
        ("Package", "Price"),
        lambda r: (f"{pick(r, ['Centre Court', 'Court One', 'Debenture'])} package",
                   money(r, 200, 4000)),
        9,
        templates=("Hospitality near the wimbledon champions walk, year round.",),
    ))
    add(keyword_distractor(
        "d_golf_courses", "Golf course directory",
        "golf pga courses players score",
        ("Course", "Par"),
        lambda r: (f"{city_name(r)} golf club", str(r.randint(68, 73))),
        7,
        templates=("Courses where pga players post a total score daily.",),
    ))
    add(keyword_distractor(
        "d_ipod_accessories", "iPod accessories store",
        "ipod accessories price models",
        ("Accessory", "Price"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['case', 'dock', 'cable', 'charger'])}",
                   money(r, 5, 80)),
        15,
        templates=("Accessories fitting all ipod models at a fair price; new release date weekly.",),
    ))
    add(keyword_distractor(
        "d_camera_reviews", "Camera lens review blog",
        "camera lens olympus review price resolution",
        ("Lens", "Rating"),
        lambda r: (f"{r.randint(14, 300)}mm f/{pick(r, ['1.8', '2.8', '4.0'])} lens",
                   f"{r.randint(60, 99)}/100"),
        5,
        templates=("Reviews of lenses for olympus digital slr models and others.",),
    ))
    add(keyword_distractor(
        "d_books_clubs", "Book club reading lists",
        "books reading united states clubs author",
        ("Meeting", "Theme"),
        lambda r: (f"{pick(r, ['January', 'March', 'June', 'October'])} meeting",
                   phrase(r)),
        4,
        templates=("Book clubs across the united states pick an author monthly.",),
    ))
    add(keyword_distractor(
        "d_exchange_programs", "Student exchange visa forms",
        "educational exchange students visa year",
        ("Form", "Processing"),
        lambda r: (f"Form DS-{r.randint(100, 999)}", f"{r.randint(2, 12)} weeks"),
        8,
        templates=("Visa forms for educational exchange students filed by year.",),
    ))
    add(keyword_distractor(
        "d_presidents_trivia", "Presidents trivia quiz",
        "president trivia library location quiz",
        ("Question", "Points"),
        lambda r: (f"Which president {pick(r, ['signed', 'vetoed', 'founded'])} "
                   f"the {phrase(r)}?", str(r.randint(5, 50))),
        5,
        templates=("Trivia night at the public library; location varies by president themes.",),
    ))
    add(keyword_distractor(
        "d_windows_repair", "Window repair services",
        "windows repair products glass release",
        ("Service", "Cost"),
        lambda r: (f"{pick(r, ['Pane', 'Frame', 'Seal', 'Glass'])} replacement",
                   money(r, 40, 600)),
        8,
        templates=("Microsoft of window repair: products for every release date of glass.",),
    ))
    add(keyword_distractor(
        "d_nba_fantasy", "Fantasy basketball advice",
        "nba fantasy match winner date",
        ("Pick", "Confidence"),
        lambda r: (person_name(r), f"{r.randint(50, 99)}%"),
        6,
        templates=("Fantasy nba match picks: the winner by date every week.",),
    ))
    add(keyword_distractor(
        "d_currency_converter", "Currency converter widgets",
        "currency converter country exchange widgets",
        ("Widget", "Downloads"),
        lambda r: (f"{pick(r, ADJECTIVES)} converter v{r.randint(1, 9)}",
                   count(r, 100, 90_000)),
        6,
        templates=("Convert any country currency with a us dollar exchange rate widget.",),
    ))
    add(keyword_distractor(
        "d_metal_reviews", "Metal album reviews",
        "metal album reviews bands country black",
        ("Album", "Score"),
        lambda r: (f"{phrase(r)} LP", f"{r.randint(4, 10)}/10"),
        11,
        templates=("Reviews of black metal bands albums from every country.",),
    ))
    add(keyword_distractor(
        "d_shoes_coupons", "Shoe store coupon codes",
        "running shoes coupons model company",
        ("Coupon", "Discount"),
        lambda r: (f"{pick(r, ['SAVE', 'RUN', 'FLEX'])}{r.randint(10, 99)}",
                   f"{r.randint(5, 40)}% off"),
        4,
        templates=("Coupons for every running shoes model from any company.",),
    ))
    add(keyword_distractor(
        "d_food_recipes", "Low fat recipes blog",
        "food recipes fat protein low",
        ("Recipe", "Calories"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['salad', 'bowl', 'stew', 'bake'])}",
                   str(r.randint(150, 900))),
        3,
        templates=("Low fat high protein food recipes for the week.",),
    ))
    add(keyword_distractor(
        "d_movie_tickets", "Movie showtimes portal",
        "movies showtimes gross tickets",
        ("Showtime", "Screen"),
        lambda r: (f"{r.randint(1, 12)}:{pick(r, ['00', '15', '30', '45'])} PM",
                   f"Screen {r.randint(1, 16)}"),
        2,
        templates=("Movies showtimes; weekend gross collection reports monthly.",),
    ))
    add(keyword_distractor(
        "d_dog_food", "Dog food ratings",
        "dog food ratings breed",
        ("Brand", "Rating"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['Paw', 'Tail', 'Bone'])} kibble",
                   f"{r.randint(1, 5)} stars"),
        2,
        templates=("Best dog food by breed ratings.",),
    ))
    add(keyword_distractor(
        "d_games_forum", "Video game forum hot threads",
        "video games forum company threads",
        ("Thread", "Replies"),
        lambda r: (f"Is {phrase(r)} worth it?", count(r, 3, 4000)),
        2,
        templates=("Video games forum; which company wins this gen?",),
    ))
    add(keyword_distractor(
        "d_stocks_tips", "Penny stock newsletter",
        "stock tips ticker price company",
        ("Tip", "Target"),
        lambda r: (f"Watch {pick(r, ADJECTIVES)} sector", money(r, 1, 40)),
        2,
        templates=("Newsletter with company stock ticker price targets.",),
    ))
    add(keyword_distractor(
        "d_parrot_care", "Parrot care handbook",
        "parrot care name feeding",
        ("Topic", "Pages"),
        lambda r: (f"{pick(r, ['Feeding', 'Housing', 'Training'])} your parrot",
                   str(r.randint(2, 30))),
        2,
        templates=("Care handbook for any name of parrot; binomial feeding charts.",),
    ))
    add(keyword_distractor(
        "d_aus_travel", "Australia travel deals",
        "australian cities travel area deals",
        ("Deal", "Price"),
        lambda r: (f"{pick(r, ['Sydney', 'Melbourne', 'Perth', 'Cairns'])} getaway",
                   money(r, 200, 3000)),
        14,
        templates=("Travel deals across australian cities and the outback area.",),
    ))
    add(keyword_distractor(
        "d_religion_essays", "Comparative religion essays",
        "religion essays followers origin country",
        ("Essay", "Author"),
        lambda r: (f"On {pick(r, ['faith', 'ritual', 'doctrine', 'origin'])} and "
                   f"{pick(r, ['modernity', 'history', 'culture'])}", person_name(r)),
        4,
        templates=("Essays on each religion, its number of followers and country of origin.",),
    ))
    add(keyword_distractor(
        "d_uni_rankings", "University fee schedules",
        "university fees tuition motto",
        ("Fee", "Amount"),
        lambda r: (f"{pick(r, ['Tuition', 'Housing', 'Lab', 'Library'])} fee",
                   money(r, 200, 40_000)),
        1,
        templates=("University fee schedule; our motto is transparency.",),
    ))
    add(keyword_distractor(
        "d_city_guides", "US city visitor guides",
        "us cities visitor guides population",
        ("Guide", "Pages"),
        lambda r: (f"{pick(r, real.US_CITIES)} visitor guide", str(r.randint(8, 120))),
        2,
        templates=("Visitor guides for popular us cities; population of attractions inside.",),
    ))
    add(keyword_distractor(
        "d_states_quiz", "US states quiz night",
        "usa states quiz capitals population",
        ("Round", "Theme"),
        lambda r: (f"Round {r.randint(1, 8)}",
                   pick(r, ["Capitals", "Flags", "Borders", "Rivers"])),
        6,
        templates=("Quiz on usa states, capitals and largest cities; population bonus round.",),
    ))
    add(keyword_distractor(
        "d_bond_trivia", "James Bond gadget wiki",
        "james bond gadget films",
        ("Gadget", "Film appearance"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['watch', 'car', 'pen', 'laser'])}",
                   pick(r, [f for f, _y in real.JAMES_BOND_FILMS])),
        3,
        templates=("Gadgets from james bond films by year of appearance.",),
    ))
    add(keyword_distractor(
        "d_globe_travel", "Golden Globe travel agency",
        "golden globe travel award winning",
        ("Trip", "Price"),
        lambda r: (f"{pick(r, ['Bali', 'Paris', 'Tokyo', 'Cairo'])} escape",
                   money(r, 500, 8000)),
        3,
        templates=("Golden Globe travel: award winners of service year after year.",),
    ))
    add(keyword_distractor(
        "d_science_fair", "School science fair projects",
        "science fair projects discoveries",
        ("Project", "Grade"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['volcano', 'circuit', 'crystal'])}",
                   pick(r, ["A", "A-", "B+", "B"])),
        3,
        templates=("Science fair discoveries by young discoverers.",),
    ))
    add(keyword_distractor(
        "d_elements_design", "Elements of design course",
        "elements design atomic course",
        ("Module", "Hours"),
        lambda r: (f"{pick(r, ['Color', 'Line', 'Shape', 'Texture'])} module",
                   str(r.randint(2, 12))),
        2,
        templates=("Course on the chemical free elements of design; atomic layouts.",),
    ))
    add(keyword_distractor(
        "d_trek_conventions", "Sci-fi convention schedule",
        "star trek convention novels authors",
        ("Event", "Date"),
        lambda r: (f"{pick(r, ['Galaxy', 'Nebula', 'Warp'])} con {year(r, 2009, 2011)}",
                   f"{pick(r, ['Mar', 'Jul', 'Sep'])} {r.randint(1, 28)}"),
        1,
        templates=("Conventions where star trek novels authors sign; release date news.",),
    ))
    add(keyword_distractor(
        "d_jedi_fan", "Jedi fan fiction archive",
        "jedi order fan fiction novels",
        ("Story", "Chapters"),
        lambda r: (f"{pick(r, ADJECTIVES)} {pick(r, ['Padawan', 'Master', 'Order'])}",
                   str(r.randint(1, 40))),
        1,
        templates=("Fan fiction set after the new jedi order novels; authors wanted by year.",),
    ))
    add(keyword_distractor(
        "d_nobel_schools", "Nobel high school honor roll",
        "nobel school honor roll winners",
        ("Student", "GPA"),
        lambda r: (person_name(r), f"{r.uniform(3.0, 4.0):.2f}"),
        2,
        templates=("Nobel high school prize winners honor roll by field and year.",),
    ))
    add(keyword_distractor(
        "d_painkiller_forum", "Chronic pain support forum",
        "pain relief forum killers side",
        ("Thread", "Posts"),
        lambda r: (f"Coping with {pick(r, ['back', 'knee', 'joint'])} pain",
                   count(r, 2, 900)),
        1,
        templates=("Forum threads about pain killers and side effects; company news.",),
    ))

    registry = {}
    for domain in domains:
        if domain.key in registry:
            raise ValueError(f"duplicate domain key {domain.key!r}")
        registry[domain.key] = domain
    return registry


#: The default registry used by the generator and the query workload.
REGISTRY: Dict[str, Domain] = build_registry()
