"""Rendering domain specifications into noisy HTML pages.

Each page carries exactly one *data* table (the relation sample) plus the
junk real pages have — navigation tables, footers, verbose asides — which the
extractor must reject.  The noise profile reproduces the paper's corpus
statistics: ~18% of data tables get no header row, ~17% two header rows,
~5% more than two, ~20% use the ``<th>`` tag (the rest mark headers with
bold/background), and some pages carry a spanning title row.

The renderer records the attribute key of every emitted column so the
generator can derive exact ground truth after extraction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from html import escape
from typing import List, Sequence, Tuple

from .domains import Domain
from .wordbanks import ADJECTIVES, pick

__all__ = ["GeneratedPage", "render_page"]

_JUNK_SECOND_HEADERS = [
    "(Chronological order)", "(alphabetical)", "2010 data", "updated weekly",
    "(partial list)", "source: archive",
]

_FILLER_SENTENCES = [
    "Our editors update this resource every month with community submissions.",
    "Sign up for the newsletter to receive weekly highlights and offers.",
    "For the documentary series powered by Duracell, see the media section.",
    "This material is licensed for personal and classroom use only.",
    "Browse the archive for older revisions of this page and its sources.",
    "Advertisement: premium members browse without any banners.",
]


@dataclass
class GeneratedPage:
    """One synthetic web page plus its ground-truth provenance."""

    page_id: str
    html: str
    domain_key: str
    column_attrs: Tuple[str, ...]  # attribute key per table column, in order
    is_distractor: bool
    num_header_rows_written: int
    has_title_row: bool
    url: str = ""


def _choose_columns(domain: Domain, rng: random.Random) -> List[int]:
    """Pick attribute indices for this page's table (subject always kept)."""
    chosen = [0]
    for i, attr in enumerate(domain.attributes[1:], start=1):
        if rng.random() < attr.presence:
            chosen.append(i)
    if len(chosen) < 2:
        # Extractor rejects single-column tables; force one attribute in.
        extras = [i for i in range(1, len(domain.attributes)) if i not in chosen]
        if extras:
            chosen.append(pick(rng, extras))
    if rng.random() < 0.4 and len(chosen) > 1:
        # Subject is not always the first column on real pages.
        rng.shuffle(chosen)
    return chosen


def _header_text(domain: Domain, attr_idx: int, rng: random.Random) -> str:
    attr = domain.attributes[attr_idx]
    if attr.vague_headers and rng.random() < domain.vague_prob:
        return pick(rng, attr.vague_headers)
    # Real pages mostly use the canonical attribute name; synonyms are the
    # minority.  The first variant is the canonical one.
    if rng.random() < 0.6 or len(attr.headers) == 1:
        return attr.headers[0]
    return pick(rng, attr.headers[1:])


def _split_header(text: str, rng: random.Random) -> Tuple[str, str]:
    """Split a multi-word header across two rows ("Main areas" / "explored")."""
    words = text.split()
    if len(words) < 2:
        return text, ""
    cut = rng.randint(1, len(words) - 1)
    return " ".join(words[:cut]), " ".join(words[cut:])


def _render_header_rows(
    headers: Sequence[str], domain: Domain, rng: random.Random
) -> Tuple[List[str], int]:
    """Emit the header-row HTML; returns (rows, count)."""
    use_th = rng.random() < domain.th_usage
    style = "" if use_th else pick(
        rng, [' style="font-weight:bold"', ' bgcolor="#d8d8e8"', ' class="hdr"']
    )
    tag = "th" if use_th else "td"

    def cell(text: str) -> str:
        body = escape(text)
        if not use_th and "bold" in style:
            body = f"<b>{body}</b>"
        return f"<{tag}{style if tag == 'td' else ''}>{body}</{tag}>"

    roll = rng.random()
    rows: List[str] = []
    if roll < domain.multi_header:
        # Three header rows: split + junk annotation row.
        tops, bottoms = zip(*(_split_header(h, rng) for h in headers))
        rows.append("<tr>" + "".join(cell(t) for t in tops) + "</tr>")
        rows.append("<tr>" + "".join(cell(b) for b in bottoms) + "</tr>")
        junk = [pick(rng, _JUNK_SECOND_HEADERS)] + [""] * (len(headers) - 1)
        rng.shuffle(junk)
        rows.append("<tr>" + "".join(cell(j) for j in junk) + "</tr>")
    elif roll < domain.multi_header + domain.two_header:
        if rng.random() < 0.5:
            # True split headers (Figure 1, Table 1 style).
            tops, bottoms = zip(*(_split_header(h, rng) for h in headers))
            rows.append("<tr>" + "".join(cell(t) for t in tops) + "</tr>")
            rows.append("<tr>" + "".join(cell(b) for b in bottoms) + "</tr>")
        else:
            # Informative first row + junk second row (Figure 1, Table 2 style).
            rows.append("<tr>" + "".join(cell(h) for h in headers) + "</tr>")
            junk = [pick(rng, _JUNK_SECOND_HEADERS)] + [""] * (len(headers) - 1)
            rng.shuffle(junk)
            rows.append("<tr>" + "".join(cell(j) for j in junk) + "</tr>")
    else:
        rows.append("<tr>" + "".join(cell(h) for h in headers) + "</tr>")
    return rows, len(rows)


def _nav_junk_table(rng: random.Random) -> str:
    """A layout table the extractor must reject (single row of links)."""
    links = " ".join(
        f'<td><a href="/{w.lower()}">{w}</a></td>'
        for w in ("Home", "About", "Archive", "Contact")
    )
    return f'<table class="nav"><tr>{links}</tr></table>'


def _context_block(
    domain: Domain,
    headers: Sequence[str],
    rng: random.Random,
    related_topics: Sequence[str] = (),
    headerless: bool = False,
) -> str:
    # Some pages are "bare": no topical prose at all (forum dumps, data
    # exports).  Bare context correlates with missing headers — and a
    # headerless, bare table is unreachable by the keyword probe; only the
    # second, content-overlap probe finds it (Section 2.2.1's motivation).
    bare_prob = 0.55 if headerless else 0.12
    if rng.random() < bare_prob:
        return f"<p>{escape(pick(rng, _FILLER_SENTENCES))}</p>"
    parts = [f"<h2>{escape(domain.topic_phrase.title())}</h2>"]
    n_templates = min(len(domain.context_templates), rng.randint(1, 2))
    for template in rng.sample(list(domain.context_templates), n_templates):
        parts.append(f"<p>{escape(template)}</p>")
    # Web pages carry sidebars and "related articles" mentioning unrelated
    # topics — the "unrelated verbosity" the paper says misleads table-level
    # relevance decisions (Section 3).
    if related_topics and rng.random() < 0.6:
        picked = [pick(rng, related_topics) for _ in range(rng.randint(2, 4))]
        links = "; ".join(f"read about {t}" for t in picked)
        parts.append(f"<p>Related articles: {escape(links)}.</p>")
    # Real pages describe their tables: a page about fuel consumption says
    # "fuel consumption" in its prose.  This is what makes the paper's
    # split-header/context segmentation signal exist at all.
    if headers and rng.random() < 0.75:
        named = [h for h in headers if h][:3]
        if named:
            sentence = (
                f"The table below lists {', '.join(n.lower() for n in named)} "
                f"for each entry."
            )
            parts.append(f"<p>{escape(sentence)}</p>")
    if rng.random() < domain.verbose_context:
        noise = " ".join(
            pick(rng, _FILLER_SENTENCES) for _ in range(rng.randint(1, 3))
        )
        parts.append(f"<p>{escape(noise)}</p>")
    return "\n".join(parts)


_NUMERIC_RE = __import__("re").compile(r"^[\$]?[\d,]+(\.\d+)?%?$")


def _jitter_numeric(value: str, rng: random.Random) -> str:
    """Apply a small multiplicative drift to measurement-like numbers.

    Real pages snapshot figures (population, GDP, prices) at different
    times, so the same entity's numbers differ slightly across pages —
    which is why content overlap lives in *entity* columns, not numeric
    ones.  Years and small numbers are left alone (they are identities,
    not measurements).
    """
    if not _NUMERIC_RE.match(value.strip()):
        return value
    raw = value.strip()
    prefix = "$" if raw.startswith("$") else ""
    suffix = "%" if raw.endswith("%") else ""
    core = raw.strip("$%").replace(",", "")
    try:
        number = float(core)
    except ValueError:
        return value
    if number < 150 or 1800 <= number <= 2100:  # small values and years
        return value
    drifted = number * rng.uniform(0.97, 1.03)
    text = f"{drifted:,.2f}" if "." in core else f"{round(drifted):,}"
    return f"{prefix}{text}{suffix}"


def render_page(
    domain: Domain,
    page_idx: int,
    rng: random.Random,
    max_rows: int = 24,
    related_topics: Sequence[str] = (),
) -> GeneratedPage:
    """Render one noisy page for ``domain``.

    The page contains exactly one extractable data table; all other tables on
    the page are layout junk that :func:`repro.tables.extractor.is_data_table`
    rejects.  ``related_topics`` feeds the cross-topic sidebar noise.
    """
    col_indices = _choose_columns(domain, rng)
    headers = [_header_text(domain, i, rng) for i in col_indices]
    attrs = tuple(domain.attributes[i].key for i in col_indices)

    n_rows = rng.randint(min(6, len(domain.rows)), min(len(domain.rows), max_rows))
    row_pool = list(domain.rows)
    rng.shuffle(row_pool)
    data_rows = row_pool[:n_rows]

    headerless = rng.random() < domain.headerless

    table_rows: List[str] = []
    has_title = rng.random() < domain.title_row
    if has_title:
        title = pick(
            rng,
            [domain.topic_phrase.title(),
             f"{pick(rng, ADJECTIVES)} {domain.topic_phrase}",
             domain.page_title],
        )
        table_rows.append(
            f'<tr><td colspan="{len(col_indices)}"><b>{escape(title)}</b></td></tr>'
        )

    n_header_rows = 0
    if not headerless:
        header_html, n_header_rows = _render_header_rows(headers, domain, rng)
        table_rows.extend(header_html)

    for row in data_rows:
        cells = "".join(
            f"<td>{escape(_jitter_numeric(row[i], rng))}</td>"
            for i in col_indices
        )
        table_rows.append(f"<tr>{cells}</tr>")

    table_html = "<table>\n" + "\n".join(table_rows) + "\n</table>"

    after = pick(rng, _FILLER_SENTENCES)
    nav = _nav_junk_table(rng)
    # Attribute names reach the prose even for headerless tables — the
    # page still *describes* its table, which is exactly the case the
    # paper's out-of-header matching exploits.
    context = _context_block(domain, headers, rng, related_topics, headerless)
    html = (
        f"<html><head><title>{escape(domain.page_title)}</title></head><body>\n"
        f"{nav}\n{context}\n{table_html}\n<p>{escape(after)}</p>\n"
        "<div class='footer'><small>generated corpus page</small></div>\n"
        "</body></html>"
    )

    page_id = f"{domain.key}_p{page_idx}"
    return GeneratedPage(
        page_id=page_id,
        html=html,
        domain_key=domain.key,
        column_attrs=attrs,
        is_distractor=domain.is_distractor,
        num_header_rows_written=n_header_rows,
        has_title_row=has_title,
        url=f"http://corpus.example/{domain.key}/{page_idx}",
    )
