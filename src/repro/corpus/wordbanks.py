"""Word banks for the synthetic web corpus.

The paper's corpus is 25 million organically authored web tables.  We cannot
ship that, so the generator synthesizes pages whose *term statistics* behave
like real pages: entity names reuse a realistic vocabulary, numeric columns
look like real measurements, and boilerplate text shares words across
domains the way real web pages do.  These banks feed
:mod:`repro.corpus.domains`.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = [
    "FIRST_NAMES", "LAST_NAMES", "CITY_WORDS", "ADJECTIVES", "NOUNS",
    "COMPANY_SUFFIXES", "person_name", "company_name", "phrase",
    "year", "money", "count", "pick", "picks",
]

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Carlos", "Karen", "Christopher",
    "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
    "Marco", "Sandra", "Andre", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy",
    "Kevin", "Carol", "Brian", "Amanda", "George", "Melissa", "Edward",
    "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary",
    "Amy", "Nicholas", "Shirley", "Eric", "Angela", "Jonathan", "Helen",
    "Stephen", "Anna", "Larry", "Brenda", "Justin", "Pamela", "Scott",
    "Nicole", "Brandon", "Emma", "Benjamin", "Samantha", "Samuel", "Katherine",
    "Gregory", "Christine", "Frank", "Debra", "Alexander", "Rachel",
    "Raymond", "Catherine", "Patrick", "Carolyn", "Jack", "Janet", "Dennis",
    "Ruth", "Jerry", "Maria",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez",
]

CITY_WORDS = [
    "Spring", "River", "Lake", "Hill", "Oak", "Maple", "Cedar", "Pine",
    "Fair", "Green", "Clear", "Stone", "Bridge", "Mill", "Forest", "Glen",
    "North", "South", "East", "West", "Grand", "High", "Silver", "Golden",
]
CITY_SUFFIXES = ["field", "ton", "ville", "burg", "port", "wood", "dale", "view", "ford", "haven"]

ADJECTIVES = [
    "Crimson", "Silent", "Eternal", "Frozen", "Burning", "Shadow", "Iron",
    "Golden", "Wild", "Ancient", "Dark", "Bright", "Savage", "Mystic",
    "Thunder", "Velvet", "Broken", "Electric", "Hollow", "Rising",
]
NOUNS = [
    "Throne", "Ember", "Horizon", "Serpent", "Raven", "Tempest", "Citadel",
    "Echo", "Phantom", "Forge", "Abyss", "Crown", "Voyage", "Omen",
    "Monolith", "Specter", "Reckoning", "Dominion", "Requiem", "Vanguard",
]

COMPANY_SUFFIXES = ["Corp", "Inc", "Industries", "Systems", "Group", "Labs", "Holdings", "Works"]


def pick(rng: random.Random, items: Sequence[str]) -> str:
    """One uniform choice."""
    return items[rng.randrange(len(items))]


def picks(rng: random.Random, items: Sequence[str], n: int) -> List[str]:
    """``n`` distinct choices (or all items when fewer)."""
    pool = list(items)
    rng.shuffle(pool)
    return pool[: min(n, len(pool))]


def person_name(rng: random.Random) -> str:
    """A synthetic person name."""
    return f"{pick(rng, FIRST_NAMES)} {pick(rng, LAST_NAMES)}"


def company_name(rng: random.Random) -> str:
    """A synthetic company name."""
    return f"{pick(rng, ADJECTIVES)}{pick(rng, NOUNS).lower()} {pick(rng, COMPANY_SUFFIXES)}"


def city_name(rng: random.Random) -> str:
    """A synthetic town name."""
    return f"{pick(rng, CITY_WORDS)}{pick(rng, CITY_SUFFIXES)}"


def phrase(rng: random.Random, n_words: int = 2) -> str:
    """An adjective-noun phrase (band names, novel titles, ...)."""
    words = [pick(rng, ADJECTIVES)]
    for _ in range(n_words - 1):
        words.append(pick(rng, NOUNS))
    return " ".join(words)


def year(rng: random.Random, lo: int = 1950, hi: int = 2011) -> str:
    """A year within [lo, hi] — the corpus predates the paper (2012)."""
    return str(rng.randint(lo, hi))


def money(rng: random.Random, lo: float, hi: float, unit: str = "$") -> str:
    """A currency amount with thousands separators."""
    value = rng.uniform(lo, hi)
    if value >= 100:
        return f"{unit}{value:,.0f}"
    return f"{unit}{value:,.2f}"


def count(rng: random.Random, lo: int, hi: int) -> str:
    """An integer count with separators."""
    return f"{rng.randint(lo, hi):,}"
