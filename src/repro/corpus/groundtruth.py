"""Ground-truth labels derived from generator provenance.

The paper hand-labeled 1906 retrieved web tables (each reviewed by two
labelers).  Our corpus is synthesized, so labels are exact by construction:
the generator knows which domain each table came from and which attribute
each column holds.

Labeling semantics mirror the paper's task definition plus its hard
constraints: a table is *relevant* to a query iff it comes from the query's
domain, contains the first query column (must-match), and contains at least
``min(2, q)`` of the query columns (min-match).  For relevant tables each
column holding a queried attribute is labeled with that query column
(1-based); remaining columns are ``na``.  Irrelevant tables have all columns
``nr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["TableProvenance", "TableLabel", "label_table", "GroundTruth"]


@dataclass(frozen=True)
class TableProvenance:
    """What the generator knows about one emitted table."""

    table_id: str
    domain_key: str
    column_attrs: Tuple[str, ...]
    is_distractor: bool


@dataclass(frozen=True)
class TableLabel:
    """Gold labeling of one table for one query."""

    relevant: bool
    #: table column index -> query column number (1-based); only for columns
    #: mapped to a query column.  Unmapped columns of relevant tables are na.
    mapping: Dict[int, int] = field(default_factory=dict)

    def label_of(self, col: int, num_cols: int) -> str:
        """The gold label of column ``col``: '1'..'q', 'na' or 'nr'."""
        if not self.relevant:
            return "nr"
        if col in self.mapping:
            return str(self.mapping[col])
        return "na"


def label_table(
    provenance: TableProvenance,
    query_domain: Optional[str],
    query_attrs: Sequence[str],
) -> TableLabel:
    """Compute the gold label of one table for one query binding.

    ``query_domain`` is None for queries with no relevant domain in the
    corpus (the paper has several with zero relevant tables).
    """
    if (
        query_domain is None
        or provenance.is_distractor
        or provenance.domain_key != query_domain
    ):
        return TableLabel(relevant=False)

    mapping: Dict[int, int] = {}
    for query_col, attr in enumerate(query_attrs, start=1):
        for table_col, col_attr in enumerate(provenance.column_attrs):
            if col_attr == attr:
                mapping[table_col] = query_col
                break

    q = len(query_attrs)
    has_first = any(lbl == 1 for lbl in mapping.values())
    min_match = min(2, q)
    if not has_first or len(mapping) < min_match:
        return TableLabel(relevant=False)
    return TableLabel(relevant=True, mapping=mapping)


class GroundTruth:
    """Gold labels for every (query, table) pair in a corpus."""

    def __init__(self) -> None:
        self._labels: Dict[str, Dict[str, TableLabel]] = {}

    def set_label(self, query_id: str, table_id: str, label: TableLabel) -> None:
        """Record one gold label."""
        self._labels.setdefault(query_id, {})[table_id] = label

    def label(self, query_id: str, table_id: str) -> TableLabel:
        """Gold label (irrelevant if never recorded)."""
        return self._labels.get(query_id, {}).get(table_id, TableLabel(False))

    def labels_for_query(self, query_id: str) -> Mapping[str, TableLabel]:
        """All recorded labels for one query."""
        return self._labels.get(query_id, {})

    def relevant_tables(self, query_id: str) -> Tuple[str, ...]:
        """Ids of tables relevant to the query."""
        return tuple(
            tid
            for tid, lbl in self._labels.get(query_id, {}).items()
            if lbl.relevant
        )

    @classmethod
    def from_provenance(
        cls,
        provenance: Mapping[str, TableProvenance],
        query_bindings: Mapping[str, Tuple[Optional[str], Sequence[str]]],
    ) -> GroundTruth:
        """Build the full gold standard.

        ``query_bindings`` maps query_id -> (domain_key or None, attr keys).
        """
        truth = cls()
        for query_id, (domain_key, attrs) in query_bindings.items():
            for table_id, prov in provenance.items():
                truth.set_label(query_id, table_id, label_table(prov, domain_key, attrs))
        return truth
