"""Corpus generation: domains -> pages -> extraction -> indexed corpus.

This is the substitute for the paper's 500M-page crawl (see DESIGN.md).  The
generated HTML is pushed through the *real* offline pipeline — the HTML
parser, data-table heuristics, header detection, and context extraction of
Section 2.1 — so every downstream component consumes tables with authentic
extraction noise, not hand-built fixtures.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..html.parser import parse_html
from ..index.builder import build_corpus_index
from ..index.protocol import CorpusProtocol
from ..tables.extractor import ExtractionCensus, extract_tables
from ..tables.table import ContextSnippet, WebTable
from .domains import REGISTRY, Domain
from .groundtruth import TableProvenance
from .pages import GeneratedPage, render_page

__all__ = [
    "CorpusConfig",
    "SyntheticCorpus",
    "generate_corpus",
    "iter_synthetic_tables",
    "iter_tables",
]


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus generation.

    ``scale`` multiplies every domain's page count — tests run at small
    scale, benchmarks at 1.0.
    """

    seed: int = 42
    scale: float = 1.0
    max_rows_per_table: int = 24
    domains: Optional[Tuple[str, ...]] = None  # restrict to these keys


@dataclass
class SyntheticCorpus:
    """The generated corpus bundle.

    ``corpus`` is an :class:`IndexedCorpus` by default, or a
    :class:`~repro.index.sharded.ShardedCorpus` when ``generate_corpus``
    was called with ``num_shards`` — callers that reach past the
    :class:`CorpusProtocol` surface (``.index`` / ``.store``) must build
    monolithic.
    """

    corpus: CorpusProtocol
    pages: List[GeneratedPage]
    provenance: Dict[str, TableProvenance]
    census: ExtractionCensus

    @property
    def num_tables(self) -> int:
        """Number of extracted data tables."""
        return self.corpus.num_tables


def _scaled_pages(domain: Domain, scale: float) -> int:
    if domain.num_pages <= 0:
        return 0
    return max(1, round(domain.num_pages * scale))


def _extracted_tables(
    config: CorpusConfig,
    registry: Dict[str, Domain],
    census: ExtractionCensus,
    id_prefix: str = "",
    pages_out: Optional[List[GeneratedPage]] = None,
    provenance_out: Optional[Dict[str, TableProvenance]] = None,
) -> Iterator[WebTable]:
    """Render, parse, and extract tables page by page (the streaming core).

    One generator shared by :func:`generate_corpus` (which collects
    everything) and :func:`iter_tables` (which streams) so both paths push
    the HTML through the identical extraction pipeline.
    """
    rng = random.Random(config.seed)
    keys = config.domains if config.domains is not None else tuple(sorted(registry))
    all_topics = tuple(
        registry[k].topic_phrase for k in sorted(registry) if not k.startswith("d_")
    )
    for key in keys:
        domain = registry[key]
        related = tuple(t for t in all_topics if t != domain.topic_phrase)
        for page_idx in range(_scaled_pages(domain, config.scale)):
            page = render_page(
                domain, page_idx, rng,
                max_rows=config.max_rows_per_table,
                related_topics=related,
            )
            if pages_out is not None:
                pages_out.append(page)
            root = parse_html(page.html)
            extracted = extract_tables(
                root,
                url=page.url,
                id_prefix=f"{id_prefix}{page.page_id}_t",
                census=census,
            )
            data_tables = [
                t for t in extracted if t.num_cols == len(page.column_attrs)
            ]
            if len(data_tables) != 1:
                raise RuntimeError(
                    f"page {page.page_id}: expected exactly one data table, "
                    f"got {len(data_tables)} (of {len(extracted)} extracted)"
                )
            table = data_tables[0]
            if provenance_out is not None:
                provenance_out[table.table_id] = TableProvenance(
                    table_id=table.table_id,
                    domain_key=page.domain_key,
                    column_attrs=page.column_attrs,
                    is_distractor=page.is_distractor,
                )
            yield table


def iter_tables(
    config: Optional[CorpusConfig] = None,
    registry: Optional[Dict[str, Domain]] = None,
    id_prefix: str = "",
) -> Iterator[WebTable]:
    """Stream freshly extracted tables without building an index.

    The ingestion path for incremental updates: generated pages go through
    the full real extraction pipeline, but the tables are *yielded* one by
    one instead of being indexed, ready for
    :meth:`~repro.index.journal.JournaledCorpus.add_tables`::

        corpus = load_corpus("corpus-dir")
        corpus.add_tables(iter_tables(CorpusConfig(scale=0.05),
                                      id_prefix="live-"))

    Page ids are deterministic functions of domain and page index, so
    ``id_prefix`` is how a stream destined for an existing corpus avoids
    colliding with the ids the original build already took.
    """
    config = config if config is not None else CorpusConfig()
    registry = registry if registry is not None else REGISTRY
    yield from _extracted_tables(
        config, registry, ExtractionCensus(), id_prefix=id_prefix
    )


def _zipf_cumweights(n: int, s: float) -> List[float]:
    """Cumulative Zipf(s) weights over ranks 1..n (for bisect sampling)."""
    acc = 0.0
    out: List[float] = []
    for rank in range(1, n + 1):
        acc += 1.0 / rank ** s
        out.append(acc)
    return out


def iter_synthetic_tables(
    num_tables: int,
    seed: int = 42,
    registry: Optional[Dict[str, Domain]] = None,
    id_prefix: str = "syn-",
    mix_prob: float = 0.12,
    zipf_s: float = 1.07,
    max_rows: int = 48,
) -> Iterator[WebTable]:
    """Stream ``num_tables`` synthetic tables at web-corpus scale.

    The HTML round-trip of :func:`iter_tables` makes every table cost a
    full render+parse+extract — right for fidelity, far too slow for the
    10^5–10^6 table range the paper's engine targets.  This path builds
    :class:`WebTable` objects directly from the same domain wordbanks,
    with the skew a crawl shows instead of the registry's hand-set page
    counts:

    - **Zipfian domain popularity** with exponent ``zipf_s`` over a
      seeded shuffle of the registry (a handful of head domains dominate,
      the tail thins out — mirroring content popularity on the web);
    - **Zipfian table sizes**: body row counts follow the same law,
      scaled into ``[2, max_rows]``, so most tables are short and a few
      are long;
    - **domain mixing**: with probability ``mix_prob`` a table's context
      sentence names a *different* domain's topic, the off-topic noise
      that makes relevance non-trivial.

    Tables stream one at a time — O(1) memory, ready for
    :func:`~repro.index.builder.build_corpus_stream`.  The stream is a
    pure function of its arguments (seeded ``random.Random``), so two
    runs produce identical corpora — which is what lets benchmarks
    compare formats on "the same" 10^5-table corpus without storing it.
    """
    if num_tables < 0:
        raise ValueError("num_tables must be >= 0")
    registry = registry if registry is not None else REGISTRY
    rng = random.Random(seed)
    domains = [registry[k] for k in sorted(registry)]
    rng.shuffle(domains)
    dom_cum = _zipf_cumweights(len(domains), zipf_s)
    dom_total = dom_cum[-1]
    size_cum = _zipf_cumweights(max(1, max_rows - 1), zipf_s)
    size_total = size_cum[-1]
    topics = [d.topic_phrase for d in domains]
    for i in range(num_tables):
        domain = domains[
            bisect.bisect_left(dom_cum, rng.random() * dom_total)
        ]
        num_rows = 2 + bisect.bisect_left(
            size_cum, rng.random() * size_total
        )
        picked = [
            (c, a) for c, a in enumerate(domain.attributes)
            if a.presence >= 1.0 or rng.random() < a.presence
        ]
        if not picked:
            picked = [(0, domain.attributes[0])]
        cols = [c for c, _ in picked]
        attrs = [a for _, a in picked]
        header = [
            rng.choice(a.vague_headers)
            if a.vague_headers and rng.random() < domain.vague_prob
            else rng.choice(a.headers)
            for a in attrs
        ]
        rows = [
            [domain.rows[rng.randrange(len(domain.rows))][c] for c in cols]
            for _ in range(num_rows)
        ]
        topic = domain.topic_phrase
        if len(topics) > 1 and rng.random() < mix_prob:
            other = rng.choice(topics)
            if other != domain.topic_phrase:
                topic = f"{topic} {other}"
        yield WebTable.from_rows(
            rows,
            header=header,
            table_id=f"{id_prefix}{i}",
            context=[ContextSnippet(topic)],
            page_title=domain.page_title,
            url=f"http://synth.example/{domain.key}/{i}",
        )


def generate_corpus(
    config: Optional[CorpusConfig] = None,
    registry: Optional[Dict[str, Domain]] = None,
    num_shards: Optional[int] = None,
    probe_workers: int = 1,
) -> SyntheticCorpus:
    """Generate, extract, and index the synthetic corpus.

    Returns a :class:`SyntheticCorpus` whose ``provenance`` maps every
    extracted table id to the generator's knowledge about it — the basis for
    exact ground truth.

    ``num_shards``/``probe_workers`` pass through to
    :func:`~repro.index.builder.build_corpus_index`, so a sharded corpus is
    indexed once here rather than generated monolithic and re-indexed.
    """
    config = config if config is not None else CorpusConfig()
    registry = registry if registry is not None else REGISTRY
    pages: List[GeneratedPage] = []
    provenance: Dict[str, TableProvenance] = {}
    census = ExtractionCensus()
    tables: List[WebTable] = list(_extracted_tables(
        config, registry, census,
        pages_out=pages, provenance_out=provenance,
    ))

    corpus = build_corpus_index(
        tables, num_shards=num_shards, probe_workers=probe_workers
    )
    return SyntheticCorpus(
        corpus=corpus, pages=pages, provenance=provenance, census=census
    )
