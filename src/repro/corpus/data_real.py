"""Hand-curated entity data for the high-signal domains.

The paper's queries hit real-world relations (countries, US states, chemical
elements, explorers, ...).  For the domains where entity identity matters to
the clues being tested — content overlap across tables, body evidence,
overlapping columns — we ship small real-world value lists.  Long-tail
domains use synthesized values from :mod:`repro.corpus.wordbanks` instead.
"""

from __future__ import annotations

__all__ = [
    "COUNTRIES", "US_STATES", "ELEMENTS", "EXPLORERS", "MOUNTAINS",
    "DOG_BREEDS", "US_CITIES", "MOON_PHASES", "RELIGIONS", "FOODS",
    "AUSTRALIAN_CITIES", "PARROTS", "JAMES_BOND_FILMS", "WINDOWS_PRODUCTS",
    "IPOD_MODELS", "SUN_COMPOSITION",
]

#: (name, currency) — gdp/population/fuel/exchange-rate are synthesized.
COUNTRIES = [
    ("United States", "US Dollar"), ("China", "Renminbi"), ("Japan", "Yen"),
    ("Germany", "Euro"), ("France", "Euro"), ("United Kingdom", "Pound Sterling"),
    ("Brazil", "Real"), ("Italy", "Euro"), ("India", "Rupee"),
    ("Canada", "Canadian Dollar"), ("Russia", "Ruble"), ("Spain", "Euro"),
    ("Australia", "Australian Dollar"), ("Mexico", "Peso"), ("South Korea", "Won"),
    ("Netherlands", "Euro"), ("Turkey", "Lira"), ("Indonesia", "Rupiah"),
    ("Switzerland", "Swiss Franc"), ("Poland", "Zloty"), ("Belgium", "Euro"),
    ("Sweden", "Krona"), ("Saudi Arabia", "Riyal"), ("Norway", "Krone"),
    ("Austria", "Euro"), ("Argentina", "Peso"), ("South Africa", "Rand"),
    ("Thailand", "Baht"), ("Denmark", "Krone"), ("Greece", "Euro"),
    ("Egypt", "Egyptian Pound"), ("Finland", "Euro"), ("Portugal", "Euro"),
    ("Ireland", "Euro"), ("Israel", "Shekel"), ("Malaysia", "Ringgit"),
    ("Singapore", "Singapore Dollar"), ("Chile", "Chilean Peso"),
    ("Nigeria", "Naira"), ("Philippines", "Philippine Peso"),
    ("Pakistan", "Pakistani Rupee"), ("Vietnam", "Dong"), ("Peru", "Sol"),
    ("Czech Republic", "Koruna"), ("Romania", "Leu"), ("New Zealand", "New Zealand Dollar"),
    ("Ukraine", "Hryvnia"), ("Hungary", "Forint"), ("Kenya", "Kenyan Shilling"),
    ("Morocco", "Dirham"),
]

#: (state, capital, largest city) — capital == largest city for 17 of them,
#: the overlap that breaks NbrText in Section 5.1.
US_STATES = [
    ("Alabama", "Montgomery", "Birmingham"), ("Alaska", "Juneau", "Anchorage"),
    ("Arizona", "Phoenix", "Phoenix"), ("Arkansas", "Little Rock", "Little Rock"),
    ("California", "Sacramento", "Los Angeles"), ("Colorado", "Denver", "Denver"),
    ("Connecticut", "Hartford", "Bridgeport"), ("Delaware", "Dover", "Wilmington"),
    ("Florida", "Tallahassee", "Jacksonville"), ("Georgia", "Atlanta", "Atlanta"),
    ("Hawaii", "Honolulu", "Honolulu"), ("Idaho", "Boise", "Boise"),
    ("Illinois", "Springfield", "Chicago"), ("Indiana", "Indianapolis", "Indianapolis"),
    ("Iowa", "Des Moines", "Des Moines"), ("Kansas", "Topeka", "Wichita"),
    ("Kentucky", "Frankfort", "Louisville"), ("Louisiana", "Baton Rouge", "New Orleans"),
    ("Maine", "Augusta", "Portland"), ("Maryland", "Annapolis", "Baltimore"),
    ("Massachusetts", "Boston", "Boston"), ("Michigan", "Lansing", "Detroit"),
    ("Minnesota", "Saint Paul", "Minneapolis"), ("Mississippi", "Jackson", "Jackson"),
    ("Missouri", "Jefferson City", "Kansas City"), ("Montana", "Helena", "Billings"),
    ("Nebraska", "Lincoln", "Omaha"), ("Nevada", "Carson City", "Las Vegas"),
    ("New Hampshire", "Concord", "Manchester"), ("New Jersey", "Trenton", "Newark"),
    ("New Mexico", "Santa Fe", "Albuquerque"), ("New York", "Albany", "New York City"),
    ("North Carolina", "Raleigh", "Charlotte"), ("North Dakota", "Bismarck", "Fargo"),
    ("Ohio", "Columbus", "Columbus"), ("Oklahoma", "Oklahoma City", "Oklahoma City"),
    ("Oregon", "Salem", "Portland"), ("Pennsylvania", "Harrisburg", "Philadelphia"),
    ("Rhode Island", "Providence", "Providence"), ("South Carolina", "Columbia", "Columbia"),
    ("South Dakota", "Pierre", "Sioux Falls"), ("Tennessee", "Nashville", "Memphis"),
    ("Texas", "Austin", "Houston"), ("Utah", "Salt Lake City", "Salt Lake City"),
    ("Vermont", "Montpelier", "Burlington"), ("Virginia", "Richmond", "Virginia Beach"),
    ("Washington", "Olympia", "Seattle"), ("West Virginia", "Charleston", "Charleston"),
    ("Wisconsin", "Madison", "Milwaukee"), ("Wyoming", "Cheyenne", "Cheyenne"),
]

#: (element, atomic number, atomic weight)
ELEMENTS = [
    ("Hydrogen", 1, "1.008"), ("Helium", 2, "4.003"), ("Lithium", 3, "6.941"),
    ("Beryllium", 4, "9.012"), ("Boron", 5, "10.811"), ("Carbon", 6, "12.011"),
    ("Nitrogen", 7, "14.007"), ("Oxygen", 8, "15.999"), ("Fluorine", 9, "18.998"),
    ("Neon", 10, "20.180"), ("Sodium", 11, "22.990"), ("Magnesium", 12, "24.305"),
    ("Aluminium", 13, "26.982"), ("Silicon", 14, "28.086"), ("Phosphorus", 15, "30.974"),
    ("Sulfur", 16, "32.065"), ("Chlorine", 17, "35.453"), ("Argon", 18, "39.948"),
    ("Potassium", 19, "39.098"), ("Calcium", 20, "40.078"), ("Scandium", 21, "44.956"),
    ("Titanium", 22, "47.867"), ("Vanadium", 23, "50.942"), ("Chromium", 24, "51.996"),
    ("Manganese", 25, "54.938"), ("Iron", 26, "55.845"), ("Cobalt", 27, "58.933"),
    ("Nickel", 28, "58.693"), ("Copper", 29, "63.546"), ("Zinc", 30, "65.38"),
    ("Gallium", 31, "69.723"), ("Germanium", 32, "72.64"), ("Arsenic", 33, "74.922"),
    ("Selenium", 34, "78.96"), ("Bromine", 35, "79.904"), ("Krypton", 36, "83.798"),
    ("Rubidium", 37, "85.468"), ("Strontium", 38, "87.62"), ("Yttrium", 39, "88.906"),
    ("Zirconium", 40, "91.224"),
]

#: (explorer, nationality, areas explored) — the Figure 1 scenario.
EXPLORERS = [
    ("Abel Tasman", "Dutch", "Oceania"),
    ("Vasco da Gama", "Portuguese", "Sea route to India"),
    ("Alexander Mackenzie", "British", "Canada"),
    ("Christopher Columbus", "Italian", "Caribbean"),
    ("Ferdinand Magellan", "Portuguese", "Pacific Ocean"),
    ("James Cook", "British", "Pacific and Australia"),
    ("Marco Polo", "Italian", "Asia and China"),
    ("Hernan Cortes", "Spanish", "Mexico"),
    ("Francisco Pizarro", "Spanish", "Peru"),
    ("Jacques Cartier", "French", "Saint Lawrence River"),
    ("Henry Hudson", "English", "Hudson Bay"),
    ("David Livingstone", "Scottish", "Central Africa"),
    ("Roald Amundsen", "Norwegian", "South Pole"),
    ("Ernest Shackleton", "Irish", "Antarctica"),
    ("Meriwether Lewis", "American", "Western United States"),
    ("William Clark", "American", "Missouri River"),
    ("John Cabot", "Italian", "North America coast"),
    ("Bartolomeu Dias", "Portuguese", "Cape of Good Hope"),
    ("Samuel de Champlain", "French", "New France"),
    ("Vitus Bering", "Danish", "Bering Strait"),
    ("Hernando de Soto", "Spanish", "Mississippi River"),
    ("Amerigo Vespucci", "Italian", "South America coast"),
    ("Juan Ponce de Leon", "Spanish", "Florida"),
    ("Zheng He", "Chinese", "Indian Ocean"),
    ("Ibn Battuta", "Moroccan", "Islamic world"),
]

#: (mountain, height in metres, country) — North American peaks.
MOUNTAINS = [
    ("Denali", 6190, "United States"), ("Mount Logan", 5959, "Canada"),
    ("Pico de Orizaba", 5636, "Mexico"), ("Mount Saint Elias", 5489, "United States"),
    ("Popocatepetl", 5426, "Mexico"), ("Mount Foraker", 5304, "United States"),
    ("Mount Lucania", 5226, "Canada"), ("Iztaccihuatl", 5230, "Mexico"),
    ("King Peak", 5173, "Canada"), ("Mount Bona", 5044, "United States"),
    ("Mount Steele", 5073, "Canada"), ("Mount Blackburn", 4996, "United States"),
    ("Mount Sanford", 4949, "United States"), ("Mount Wood", 4842, "Canada"),
    ("Mount Vancouver", 4812, "Canada"), ("Mount Churchill", 4766, "United States"),
    ("Mount Fairweather", 4671, "United States"), ("Mount Hubbard", 4577, "Canada"),
    ("Mount Bear", 4520, "United States"), ("Mount Walsh", 4507, "Canada"),
    ("Mount Hunter", 4442, "United States"), ("Mount Whitney", 4421, "United States"),
    ("Mount Elbert", 4401, "United States"), ("Mount Massive", 4398, "United States"),
    ("Mount Harvard", 4395, "United States"), ("Mount Rainier", 4392, "United States"),
    ("Mount Williamson", 4383, "United States"), ("Blanca Peak", 4374, "United States"),
    ("La Plata Peak", 4370, "United States"), ("Uncompahgre Peak", 4365, "United States"),
]

DOG_BREEDS = [
    "Labrador Retriever", "German Shepherd", "Golden Retriever", "Beagle",
    "Bulldog", "Yorkshire Terrier", "Boxer", "Poodle", "Rottweiler",
    "Dachshund", "Shih Tzu", "Doberman Pinscher", "Chihuahua", "Great Dane",
    "Miniature Schnauzer", "Siberian Husky", "Pomeranian", "French Bulldog",
    "Border Collie", "Boston Terrier", "Maltese", "Cocker Spaniel",
    "Pembroke Welsh Corgi", "Basset Hound", "English Springer Spaniel",
    "Mastiff", "Brittany", "West Highland White Terrier", "Bernese Mountain Dog",
    "Saint Bernard", "Bichon Frise", "Vizsla", "Bloodhound", "Akita",
    "Weimaraner", "Whippet", "Samoyed", "Dalmatian", "Airedale Terrier",
    "Scottish Terrier",
]

US_CITIES = [
    "New York", "Los Angeles", "Chicago", "Houston", "Phoenix",
    "Philadelphia", "San Antonio", "San Diego", "Dallas", "San Jose",
    "Austin", "Jacksonville", "Fort Worth", "Columbus", "Charlotte",
    "San Francisco", "Indianapolis", "Seattle", "Denver", "Washington",
    "Boston", "El Paso", "Nashville", "Detroit", "Oklahoma City",
    "Portland", "Las Vegas", "Memphis", "Louisville", "Baltimore",
    "Milwaukee", "Albuquerque", "Tucson", "Fresno", "Sacramento",
    "Kansas City", "Mesa", "Atlanta", "Omaha", "Colorado Springs",
]

MOON_PHASES = [
    ("New Moon", "0%"), ("Waxing Crescent", "25%"), ("First Quarter", "50%"),
    ("Waxing Gibbous", "75%"), ("Full Moon", "100%"), ("Waning Gibbous", "75%"),
    ("Last Quarter", "50%"), ("Waning Crescent", "25%"),
]

#: (religion, country/region of origin)
RELIGIONS = [
    ("Christianity", "Judea"), ("Islam", "Arabia"), ("Hinduism", "India"),
    ("Buddhism", "India"), ("Sikhism", "India"), ("Judaism", "Israel"),
    ("Bahai Faith", "Iran"), ("Jainism", "India"), ("Shinto", "Japan"),
    ("Taoism", "China"), ("Confucianism", "China"), ("Zoroastrianism", "Persia"),
    ("Shamanism", "Siberia"), ("Candomble", "Brazil"), ("Rastafari", "Jamaica"),
]

#: (food, fat g, protein g) per 100 g, approximate.
FOODS = [
    ("Chicken breast", "3.6", "31.0"), ("Salmon", "13.4", "20.4"),
    ("Brown rice", "0.9", "2.6"), ("Whole milk", "3.3", "3.2"),
    ("Cheddar cheese", "33.1", "24.9"), ("Eggs", "9.5", "12.6"),
    ("Almonds", "49.9", "21.2"), ("Peanut butter", "50.4", "25.1"),
    ("Broccoli", "0.4", "2.8"), ("Spinach", "0.4", "2.9"),
    ("Banana", "0.3", "1.1"), ("Apple", "0.2", "0.3"),
    ("Avocado", "14.7", "2.0"), ("Oatmeal", "6.9", "16.9"),
    ("Lentils", "0.4", "9.0"), ("Black beans", "0.5", "8.9"),
    ("Tofu", "4.8", "8.0"), ("Beef steak", "19.0", "25.0"),
    ("Pork chop", "14.0", "25.7"), ("Tuna", "1.0", "23.3"),
    ("Shrimp", "0.3", "24.0"), ("Greek yogurt", "0.4", "10.2"),
    ("Cottage cheese", "4.3", "11.1"), ("Quinoa", "1.9", "4.4"),
    ("Sweet potato", "0.1", "1.6"), ("White bread", "3.2", "8.9"),
    ("Pasta", "1.1", "5.8"), ("Potato chips", "34.6", "7.0"),
    ("Dark chocolate", "42.6", "7.8"), ("Olive oil", "100.0", "0.0"),
    ("Butter", "81.1", "0.9"), ("Walnuts", "65.2", "15.2"),
    ("Cashews", "43.8", "18.2"), ("Turkey breast", "1.0", "29.0"),
    ("Cod", "0.7", "17.8"), ("Mackerel", "13.9", "18.6"),
    ("Chickpeas", "2.6", "8.9"), ("Green peas", "0.4", "5.4"),
    ("Corn", "1.5", "3.3"), ("Mushrooms", "0.3", "3.1"),
]

#: (city, area km2)
AUSTRALIAN_CITIES = [
    ("Sydney", "12368"), ("Melbourne", "9993"), ("Brisbane", "15826"),
    ("Perth", "6418"), ("Adelaide", "3258"), ("Gold Coast", "1334"),
    ("Newcastle", "261"), ("Canberra", "814"), ("Wollongong", "684"),
    ("Hobart", "1696"), ("Geelong", "1329"), ("Townsville", "3736"),
    ("Cairns", "254"), ("Darwin", "112"), ("Toowoomba", "498"),
    ("Ballarat", "740"), ("Bendigo", "82"), ("Launceston", "178"),
]

#: (parrot, binomial name)
PARROTS = [
    ("African Grey Parrot", "Psittacus erithacus"),
    ("Scarlet Macaw", "Ara macao"),
    ("Blue and yellow Macaw", "Ara ararauna"),
    ("Cockatiel", "Nymphicus hollandicus"),
    ("Budgerigar", "Melopsittacus undulatus"),
    ("Sun Conure", "Aratinga solstitialis"),
    ("Eclectus Parrot", "Eclectus roratus"),
    ("Hyacinth Macaw", "Anodorhynchus hyacinthinus"),
    ("Galah", "Eolophus roseicapilla"),
    ("Kea", "Nestor notabilis"),
    ("Kakapo", "Strigops habroptilus"),
    ("Rainbow Lorikeet", "Trichoglossus moluccanus"),
    ("Monk Parakeet", "Myiopsitta monachus"),
    ("Senegal Parrot", "Poicephalus senegalus"),
    ("Amazon Parrot", "Amazona aestiva"),
]

#: (film, year)
JAMES_BOND_FILMS = [
    ("Dr. No", "1962"), ("From Russia with Love", "1963"), ("Goldfinger", "1964"),
    ("Thunderball", "1965"), ("You Only Live Twice", "1967"),
    ("On Her Majesty's Secret Service", "1969"), ("Diamonds Are Forever", "1971"),
    ("Live and Let Die", "1973"), ("The Man with the Golden Gun", "1974"),
    ("The Spy Who Loved Me", "1977"), ("Moonraker", "1979"),
    ("For Your Eyes Only", "1981"), ("Octopussy", "1983"),
    ("A View to a Kill", "1985"), ("The Living Daylights", "1987"),
    ("Licence to Kill", "1989"), ("GoldenEye", "1995"),
    ("Tomorrow Never Dies", "1997"), ("The World Is Not Enough", "1999"),
    ("Die Another Day", "2002"), ("Casino Royale", "2006"),
    ("Quantum of Solace", "2008"),
]

#: (product, release date)
WINDOWS_PRODUCTS = [
    ("Windows 1.0", "November 1985"), ("Windows 2.0", "December 1987"),
    ("Windows 3.0", "May 1990"), ("Windows 3.1", "April 1992"),
    ("Windows NT 3.1", "July 1993"), ("Windows 95", "August 1995"),
    ("Windows NT 4.0", "July 1996"), ("Windows 98", "June 1998"),
    ("Windows 2000", "February 2000"), ("Windows ME", "September 2000"),
    ("Windows XP", "October 2001"), ("Windows Server 2003", "April 2003"),
    ("Windows Vista", "January 2007"), ("Windows Server 2008", "February 2008"),
    ("Windows 7", "October 2009"), ("Windows Server 2008 R2", "October 2009"),
]

#: (model, release date, launch price)
IPOD_MODELS = [
    ("iPod Classic 1st generation", "October 2001", "$399"),
    ("iPod Classic 2nd generation", "July 2002", "$399"),
    ("iPod Classic 3rd generation", "April 2003", "$299"),
    ("iPod Mini", "January 2004", "$249"),
    ("iPod Classic 4th generation", "July 2004", "$299"),
    ("iPod Photo", "October 2004", "$499"),
    ("iPod Shuffle 1st generation", "January 2005", "$99"),
    ("iPod Nano 1st generation", "September 2005", "$199"),
    ("iPod Classic 5th generation", "October 2005", "$299"),
    ("iPod Nano 2nd generation", "September 2006", "$149"),
    ("iPod Shuffle 2nd generation", "September 2006", "$79"),
    ("iPod Classic 6th generation", "September 2007", "$249"),
    ("iPod Touch 1st generation", "September 2007", "$299"),
    ("iPod Nano 3rd generation", "September 2007", "$149"),
    ("iPod Nano 4th generation", "September 2008", "$149"),
    ("iPod Touch 2nd generation", "September 2008", "$229"),
    ("iPod Nano 5th generation", "September 2009", "$149"),
    ("iPod Touch 3rd generation", "September 2009", "$199"),
    ("iPod Shuffle 3rd generation", "March 2009", "$79"),
    ("iPod Nano 6th generation", "September 2010", "$149"),
    ("iPod Touch 4th generation", "September 2010", "$229"),
]

#: (component, percentage) of the solar photosphere.
SUN_COMPOSITION = [
    ("Hydrogen", "73.46"), ("Helium", "24.85"), ("Oxygen", "0.77"),
    ("Carbon", "0.29"), ("Iron", "0.16"), ("Neon", "0.12"),
    ("Nitrogen", "0.09"), ("Silicon", "0.07"), ("Magnesium", "0.05"),
    ("Sulfur", "0.04"),
]
