"""The Basic baseline (opening of Section 3).

The simple method WWT is measured against: (1) decide table relevance by
thresholding the TF-IDF similarity of the query's keywords to the table's
context + header text; (2) for relevant tables, match query columns to
table columns by thresholded cosine similarity of ``Q_l`` against each
column's header text, with a maximum bipartite matching enforcing
one-to-one assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.labels import LabelSpace
from ..flow.bipartite import BipartiteMatcher
from ..query.model import Query
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics, TfIdfVector
from ..text.tokenize import tokenize

__all__ = ["BasicParams", "BaselineResult", "basic_method", "column_header_similarity"]


@dataclass(frozen=True)
class BasicParams:
    """Thresholds of the Basic method (grid-tuned on the training corpus)."""

    relevance_threshold: float = 0.2
    column_threshold: float = 0.25


@dataclass
class BaselineResult:
    """A labeling produced by a baseline (mirrors MappingResult.labels)."""

    labels: Dict[Tuple[int, int], int]
    label_space: LabelSpace
    algorithm: str

    def is_relevant(self, ti: int, num_cols: int) -> bool:
        """Did the baseline mark table ``ti`` relevant?"""
        return any(
            self.labels[(ti, ci)] != self.label_space.nr for ci in range(num_cols)
        )


def column_header_similarity(
    query: Query,
    table: WebTable,
    col: int,
    stats: Optional[TermStatistics],
) -> List[float]:
    """Cosine of each query column against one column's full header text."""
    header_tokens = table.column_header_tokens(col)
    header_vec = TfIdfVector.from_tokens(header_tokens, stats)
    sims = []
    for l in range(query.q):
        q_vec = TfIdfVector.from_tokens(query.column_tokens(l), stats)
        sims.append(q_vec.cosine(header_vec))
    return sims


def table_relevance_similarity(
    query: Query, table: WebTable, stats: Optional[TermStatistics]
) -> float:
    """TF-IDF cosine of all query keywords vs context + header text."""
    doc_tokens = tokenize(table.field_text("header")) + tokenize(
        table.field_text("context")
    )
    doc_vec = TfIdfVector.from_tokens(doc_tokens, stats)
    q_vec = TfIdfVector.from_tokens(query.all_tokens(), stats)
    return q_vec.cosine(doc_vec)


def assign_columns(
    query: Query,
    similarities: Sequence[Sequence[float]],
    threshold: float,
    labels: LabelSpace,
) -> Dict[int, int]:
    """One-to-one column assignment from a similarity matrix.

    Returns {column index -> dense label} for columns passing the threshold;
    unassigned columns are implicitly na.
    """
    nt = len(similarities)
    if nt == 0:
        return {}
    matcher = BipartiteMatcher(
        [list(row) for row in similarities], [1] * nt, [1] * query.q
    )
    result = matcher.solve()
    out: Dict[int, int] = {}
    for ci, l in result.pairs:
        if similarities[ci][l] >= threshold:
            out[ci] = l
    return out


def basic_method(
    query: Query,
    tables: Sequence[WebTable],
    stats: Optional[TermStatistics] = None,
    params: Optional[BasicParams] = None,
    column_sims: Optional[Dict[int, List[List[float]]]] = None,
) -> BaselineResult:
    """Run the Basic method over candidate tables.

    ``column_sims`` lets variants (NbrText, PMI²) inject their own
    per-table column-similarity matrices while reusing the relevance
    decision and assignment logic.
    """
    if params is None:
        params = BasicParams()
    labels = LabelSpace(query.q)
    assignment: Dict[Tuple[int, int], int] = {}
    for ti, table in enumerate(tables):
        nt = table.num_cols
        relevance = table_relevance_similarity(query, table, stats)
        if relevance < params.relevance_threshold:
            for ci in range(nt):
                assignment[(ti, ci)] = labels.nr
            continue
        sims = (
            column_sims[ti]
            if column_sims is not None and ti in column_sims
            else [
                column_header_similarity(query, table, ci, stats)
                for ci in range(nt)
            ]
        )
        mapped = assign_columns(query, sims, params.column_threshold, labels)
        if not mapped:
            # No column matched at all: the table contributes nothing.
            for ci in range(nt):
                assignment[(ti, ci)] = labels.nr
            continue
        for ci in range(nt):
            assignment[(ti, ci)] = mapped.get(ci, labels.na)
    return BaselineResult(labels=assignment, label_space=labels, algorithm="basic")
