"""The PMI² baseline (Sections 3.2.3 / 5.1).

Basic augmented with corpus-wide PMI² co-occurrence scores added to the
column similarity, the relevance signal of Cafarella et al.'s Octopus [2]
adapted to column mapping.  The paper found it noisy (it helps some queries
and hurts as many) and expensive — our harness reproduces both findings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.pmi import PmiScorer
from ..index.inverted import InvertedIndex
from ..query.model import Query
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from .basic import BasicParams, BaselineResult, basic_method, column_header_similarity

__all__ = ["pmi_method"]

#: Weight mixing PMI² into the header similarity.  PMI² values live on a
#: much smaller scale than cosines; the multiplier rescales them.
PMI_WEIGHT = 0.3


def pmi_method(
    query: Query,
    tables: Sequence[WebTable],
    index: InvertedIndex,
    stats: Optional[TermStatistics] = None,
    params: Optional[BasicParams] = None,
    pmi_weight: float = PMI_WEIGHT,
) -> BaselineResult:
    """Run the PMI²-augmented variant of Basic."""
    if params is None:
        params = BasicParams()
    scorer = PmiScorer(index)
    sims: Dict[int, List[List[float]]] = {}
    for ti, table in enumerate(tables):
        rows: List[List[float]] = []
        for ci in range(table.num_cols):
            base = column_header_similarity(query, table, ci, stats)
            for l in range(query.q):
                base[l] += pmi_weight * scorer.score(query.columns[l], table, ci)
            rows.append(base)
        sims[ti] = rows
    result = basic_method(query, tables, stats, params, column_sims=sims)
    return BaselineResult(
        labels=result.labels, label_space=result.label_space, algorithm="pmi2"
    )
