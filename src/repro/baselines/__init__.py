"""Baseline methods compared against WWT in Section 5."""

from .basic import BasicParams, BaselineResult, basic_method
from .nbrtext import nbrtext_method
from .pmi_baseline import pmi_method

__all__ = [
    "BaselineResult",
    "BasicParams",
    "basic_method",
    "nbrtext_method",
    "pmi_method",
]
