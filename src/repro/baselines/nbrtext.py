"""The NbrText baseline (Section 5).

Basic augmented with header text *imported* from similar columns of other
tables:

    sim(Q_l, tc) = max(TI(Q_l, tc), max_{t'c'} sim(tc, t'c') * TI(Q_l, t'c'))

This is the ad hoc way to use content overlap that the paper shows to be
fragile — when columns within a table overlap (e.g. state capitals vs
largest cities), the wrong header gets imported and accuracy drops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.edges import all_similar_pairs
from ..query.model import Query
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from .basic import BasicParams, BaselineResult, column_header_similarity

__all__ = ["nbrtext_method"]


def nbrtext_method(
    query: Query,
    tables: Sequence[WebTable],
    stats: Optional[TermStatistics] = None,
    params: Optional[BasicParams] = None,
) -> BaselineResult:
    """Run the NbrText variant of Basic."""
    if params is None:
        params = BasicParams()
    base_sims: Dict[int, List[List[float]]] = {
        ti: [
            column_header_similarity(query, table, ci, stats)
            for ci in range(table.num_cols)
        ]
        for ti, table in enumerate(tables)
    }

    # Import neighbor header similarity from *every* similar column — no
    # max-matching, no normalization, no confidence gating.  This is the
    # ad hoc import the paper contrasts with WWT's robust edges; with
    # overlapping columns (capitals vs largest cities) it imports the wrong
    # header text.
    boosted: Dict[int, List[List[float]]] = {
        ti: [list(row) for row in rows] for ti, rows in base_sims.items()
    }
    for (ta, ca), (tb, cb), sim in all_similar_pairs(tables, stats):
        for l in range(query.q):
            import_a = sim * base_sims[tb][cb][l]
            import_b = sim * base_sims[ta][ca][l]
            if import_a > boosted[ta][ca][l]:
                boosted[ta][ca][l] = import_a
            if import_b > boosted[tb][cb][l]:
                boosted[tb][cb][l] = import_b

    # The imported text also drives the *relevance* decision: a table whose
    # columns look like a matching table's columns now looks relevant, even
    # when its own context says otherwise.  (This is why the method is
    # fragile: content look-alikes from other topics slip through.)
    from ..core.labels import LabelSpace
    from .basic import assign_columns, table_relevance_similarity

    labels = LabelSpace(query.q)
    assignment = {}
    for ti, table in enumerate(tables):
        nt = table.num_cols
        own_relevance = table_relevance_similarity(query, table, stats)
        mapped = assign_columns(query, boosted[ti], params.column_threshold, labels)
        # The gate bypass needs a *strong* imported match (2x the column
        # threshold) plus at least half the usual context evidence — weak
        # look-alikes alone do not make a table relevant.
        strong_import = (
            max((boosted[ti][ci][l] for ci, l in mapped.items()), default=0.0)
            >= 2.0 * params.column_threshold
        )
        relevant = bool(mapped) and (
            own_relevance >= params.relevance_threshold
            or (strong_import and own_relevance >= 0.5 * params.relevance_threshold)
        )
        if not relevant:
            for ci in range(nt):
                assignment[(ti, ci)] = labels.nr
            continue
        for ci in range(nt):
            assignment[(ti, ci)] = mapped.get(ci, labels.na)
    return BaselineResult(
        labels=assignment, label_space=labels, algorithm="nbrtext"
    )
