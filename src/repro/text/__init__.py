"""Text analysis substrate: tokenization, TF-IDF, and similarity measures."""

from .similarity import (
    column_content_similarity,
    column_similarity,
    header_similarity,
    jaccard,
    weighted_jaccard,
)
from .tfidf import TermStatistics, TfIdfVector, cosine
from .tokenize import (
    STOP_WORDS,
    ngrams,
    normalize_cell,
    tokenize,
    tokenize_keep_stopwords,
)

__all__ = [
    "STOP_WORDS",
    "TermStatistics",
    "TfIdfVector",
    "column_content_similarity",
    "column_similarity",
    "cosine",
    "header_similarity",
    "jaccard",
    "ngrams",
    "normalize_cell",
    "tokenize",
    "tokenize_keep_stopwords",
    "weighted_jaccard",
]
