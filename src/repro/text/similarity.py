"""Set- and column-level similarity measures.

The edge potentials of Section 3.3 need a similarity between the *contents*
of two table columns and between their headers.  The paper describes this as
"a weighted sum of their content and header similarity"; we implement content
similarity as the cosine between the columns' cell-value TF vectors plus a
value-overlap Jaccard component, which is the standard instantiation for
web-table column matching.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .tfidf import TermStatistics, cosine
from .tokenize import normalize_cell, tokenize

__all__ = [
    "jaccard",
    "weighted_jaccard",
    "column_content_similarity",
    "header_similarity",
    "column_similarity",
]


def jaccard(set_a: Iterable[str], set_b: Iterable[str]) -> float:
    """Plain Jaccard similarity between two sets (0 when both empty)."""
    sa, sb = set(set_a), set(set_b)
    if not sa and not sb:
        return 0.0
    inter = len(sa & sb)
    union = len(sa | sb)
    return inter / union if union else 0.0


def weighted_jaccard(
    values_a: Sequence[str],
    values_b: Sequence[str],
    stats: Optional[TermStatistics] = None,
) -> float:
    """Jaccard over normalized cell values, IDF-weighted when stats given.

    Weighting by IDF prevents columns full of common values ("yes"/"no",
    years) from looking identical to every other column.
    """
    norm_a = {normalize_cell(v) for v in values_a if normalize_cell(v)}
    norm_b = {normalize_cell(v) for v in values_b if normalize_cell(v)}
    if not norm_a or not norm_b:
        return 0.0
    if stats is None:
        return jaccard(norm_a, norm_b)

    def weight(value: str) -> float:
        toks = value.split()
        if not toks:
            return 0.0
        return sum(stats.idf(t) for t in toks) / len(toks)

    inter = sum(weight(v) for v in sorted(norm_a & norm_b))
    union = sum(weight(v) for v in sorted(norm_a | norm_b))
    return inter / union if union else 0.0


def column_content_similarity(
    values_a: Sequence[str],
    values_b: Sequence[str],
    stats: Optional[TermStatistics] = None,
) -> float:
    """Content similarity between two columns' cell values.

    Averages value-level Jaccard overlap with token-level TF-IDF cosine.  The
    Jaccard part rewards exact shared instances (e.g. the same explorer names)
    while the cosine part is robust to formatting differences.
    """
    overlap = weighted_jaccard(values_a, values_b, stats)
    tokens_a = [t for v in values_a for t in tokenize(v)]
    tokens_b = [t for v in values_b for t in tokenize(v)]
    cos = cosine(tokens_a, tokens_b, stats)
    return 0.5 * (overlap + cos)


def header_similarity(
    header_a: Sequence[str],
    header_b: Sequence[str],
    stats: Optional[TermStatistics] = None,
) -> float:
    """TF-IDF cosine between two columns' concatenated header tokens."""
    return cosine(list(header_a), list(header_b), stats)


def column_similarity(
    values_a: Sequence[str],
    values_b: Sequence[str],
    header_a: Sequence[str],
    header_b: Sequence[str],
    stats: Optional[TermStatistics] = None,
    content_weight: float = 0.8,
) -> float:
    """Weighted sum of content and header similarity (Section 3.3).

    Content dominates (default 0.8) because headers across the web are noisy
    and frequently absent; two columns listing the same entities should match
    even with disjoint header words.
    """
    if not 0.0 <= content_weight <= 1.0:
        raise ValueError("content_weight must lie in [0, 1]")
    content = column_content_similarity(values_a, values_b, stats)
    header = header_similarity(header_a, header_b, stats)
    return content_weight * content + (1.0 - content_weight) * header
