"""TF-IDF vector space used by every similarity in the paper.

The paper scores text matches with TF-IDF weighted cosine similarity
(``inSim`` of Eq. 1), with TF-IDF weighted coverage fractions (``Cover``,
Section 3.2.2) and with squared TF-IDF term weights inside ``outSim``.  All
of those need a single corpus-wide IDF table; :class:`TermStatistics`
provides it and :class:`TfIdfVector` implements the sparse vector algebra.

IDF uses the standard smoothed form ``idf(w) = ln(1 + N / (1 + df(w)))`` so
unseen terms still receive a positive weight (the paper matches query tokens
that may not occur in the indexed corpus at all).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

__all__ = ["TermStatistics", "TfIdfVector", "cosine"]


class TermStatistics:
    """Document-frequency table supplying IDF weights.

    A *document* here is whatever unit the caller chooses — when built from
    the web-table corpus we count each table once per distinct term
    (header + context + content), mirroring Lucene's per-document df.
    """

    __slots__ = ("_df", "_num_docs")

    def __init__(self) -> None:
        self._df: Counter = Counter()
        self._num_docs = 0

    @property
    def num_docs(self) -> int:
        """Number of documents folded into the statistics."""
        return self._num_docs

    def add_document(self, terms: Iterable[str]) -> None:
        """Count one document containing ``terms`` (duplicates ignored)."""
        self._num_docs += 1
        for term in sorted(set(terms)):
            self._df[term] += 1

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return self._df.get(term, 0)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        return math.log(1.0 + (self._num_docs + 1.0) / (1.0 + self._df.get(term, 0)))

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dict."""
        return {"num_docs": self._num_docs, "df": dict(self._df)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> TermStatistics:
        """Inverse of :meth:`to_dict`."""
        stats = cls()
        stats._num_docs = int(data["num_docs"])
        stats._df = Counter({str(k): int(v) for k, v in dict(data["df"]).items()})
        return stats


class TfIdfVector:
    """A sparse TF-IDF vector over a token multiset.

    Term weight is ``tf(w) * idf(w)`` with raw term frequency; the paper's
    ``TI(w)`` notation corresponds to :meth:`weight`.
    """

    __slots__ = ("_weights", "_norm")

    def __init__(self, weights: Mapping[str, float]) -> None:
        self._weights: Dict[str, float] = {t: w for t, w in weights.items() if w != 0.0}
        self._norm = math.sqrt(
            sum(w * w for w in self._weights.values())  # reprolint: disable=R003 -- insertion order is first-occurrence token order, fixed by the input sequence
        )

    @classmethod
    def from_tokens(
        cls, tokens: Sequence[str], stats: Optional[TermStatistics] = None
    ) -> TfIdfVector:
        """Build a vector from ``tokens``; without ``stats`` all idf = 1."""
        tf = Counter(tokens)
        if stats is None:
            return cls({t: float(c) for t, c in tf.items()})
        return cls({t: c * stats.idf(t) for t, c in tf.items()})

    @property
    def norm(self) -> float:
        """L2 norm — the paper's ``||P||`` over a token sequence P."""
        return self._norm

    @property
    def norm_squared(self) -> float:
        """Squared L2 norm, used in Eq. 1's segment weights."""
        return self._norm * self._norm

    def weight(self, term: str) -> float:
        """TF-IDF weight of ``term`` (0 if absent)."""
        return self._weights.get(term, 0.0)

    def terms(self) -> Iterable[str]:
        """Iterate over terms with non-zero weight."""
        return self._weights.keys()

    def items(self) -> Iterable[Tuple[str, float]]:
        """Iterate over ``(term, weight)`` pairs."""
        return self._weights.items()

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, term: str) -> bool:
        return term in self._weights

    def dot(self, other: TfIdfVector) -> float:
        """Sparse dot product."""
        if len(other) < len(self):
            return other.dot(self)
        return sum(
            w * other._weights.get(t, 0.0) for t, w in self._weights.items()  # reprolint: disable=R003 -- insertion order is first-occurrence token order, fixed by the input sequence
        )

    def cosine(self, other: TfIdfVector) -> float:
        """Cosine similarity; 0 when either vector is empty."""
        if self._norm == 0.0 or other._norm == 0.0:
            return 0.0
        return self.dot(other) / (self._norm * other._norm)


def cosine(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    stats: Optional[TermStatistics] = None,
) -> float:
    """TF-IDF cosine similarity between two token sequences."""
    va = TfIdfVector.from_tokens(tokens_a, stats)
    vb = TfIdfVector.from_tokens(tokens_b, stats)
    return va.cosine(vb)
