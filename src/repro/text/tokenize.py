"""Tokenization for web-table text.

WWT treats headers, contexts, cell contents, and query column descriptors as
bags of lower-cased word tokens.  The tokenizer here is deliberately simple
and deterministic: it lower-cases, splits on non-alphanumeric characters,
keeps digit runs (cell contents are frequently numeric), and drops a small
stop-word list that mirrors what a Lucene ``StandardAnalyzer`` would remove.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence

__all__ = [
    "STOP_WORDS",
    "tokenize",
    "tokenize_keep_stopwords",
    "ngrams",
    "normalize_cell",
]

#: Stop words removed from indexed and matched text.  The list matches the
#: classic Lucene English stop set, which the paper's Lucene index would have
#: used by default.
STOP_WORDS = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
        "in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
        "that", "the", "their", "then", "there", "these", "they", "this",
        "to", "was", "will", "with",
    }
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")
_WS_RE = re.compile(r"\s+")


def stem(token: str) -> str:
    """Light plural/suffix stemmer (an S-stemmer with -ie folding).

    Queries say "mountains", headers say "Mountain"; the paper's Lucene
    analyzer folds these together and every similarity in the system
    depends on it.  Rules: ``-ies``/``-ie`` -> ``-y`` (so "movies" and
    "movie" agree), ``-es`` after a sibilant digraph dropped, trailing
    ``-s`` dropped (but never ``-ss``/``-us``/``-is``).

    >>> [stem(w) for w in ("mountains", "phases", "countries", "glasses")]
    ['mountain', 'phase', 'country', 'glass']
    >>> stem("movies") == stem("movie")
    True
    """
    if len(token) > 4 and token.endswith("ies"):
        return token[:-3] + "y"
    if len(token) > 3 and token.endswith("ie"):
        return token[:-2] + "y"
    if len(token) > 4 and token.endswith(("sses", "xes", "zes", "ches", "shes")):
        return token[:-2]
    if (
        len(token) > 3
        and token.endswith("s")
        and not token.endswith(("ss", "us", "is"))
    ):
        return token[:-1]
    return token


def tokenize_keep_stopwords(text: str) -> List[str]:
    """Split ``text`` into lower-case alphanumeric tokens, keeping stop words.

    >>> tokenize_keep_stopwords("The Explorers of the Sea!")
    ['the', 'explorers', 'of', 'the', 'sea']
    """
    if not text:
        return []
    return _TOKEN_RE.findall(text.lower())


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lower-case, stemmed tokens, stop words removed.

    This is the analyzer applied uniformly to queries, headers, contexts and
    body cells so that term statistics are comparable across fields.

    >>> tokenize("Names of Explorers")
    ['name', 'explorer']
    """
    return [
        stem(tok)
        for tok in tokenize_keep_stopwords(text)
        if tok not in STOP_WORDS
    ]


def ngrams(tokens: Sequence[str], n: int) -> List[tuple]:
    """Return the list of ``n``-gram tuples over ``tokens``.

    Used by the duplicate-row resolver for fuzzy cell comparison.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def normalize_cell(text: str) -> str:
    """Normalize a cell value for duplicate detection.

    Lower-cases, collapses whitespace and strips punctuation so that
    ``"Vasco da Gama"`` and ``" vasco  da gama."`` compare equal.
    """
    return " ".join(tokenize_keep_stopwords(text))


def join_tokens(chunks: Iterable[str]) -> List[str]:
    """Tokenize and concatenate several text chunks into one token list."""
    out: List[str] = []
    for chunk in chunks:
        out.extend(tokenize(chunk))
    return out
