"""Table store: persistence for the extracted table corpus.

The offline pipeline extracts tables once and stores them on disk; query
time reads raw tables back by id (the "Table Read" slices of Figure 7).
Storage is JSON-lines — one table per line — which keeps the store
greppable and append-friendly.

Two store flavours share one contract:

- :class:`TableStore` holds parsed :class:`WebTable` objects in memory —
  the builder's working form, and what version-2 snapshots load into.
- :class:`LazyTableStore` fronts the *on-disk* ``tables.jsonl`` directly:
  it knows every row's byte offset (from the ``tables.offsets`` sidecar,
  or a newline scan of the mmap'd file) and parses a row's JSON only when
  that table is first read.  At 10^5 tables this turns shard
  materialization's eager parse — tens of seconds of ``json.loads`` —
  into an O(rows) offset load, with per-row cost deferred to first
  access (ROADMAP item 2's last cold-start cliff).
"""

from __future__ import annotations

import json
import mmap
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from ..faults.injection import POINT_STORE_GET, trip
from ..tables.table import WebTable

__all__ = [
    "TableStore",
    "LazyTableStore",
    "TABLES_OFFSETS_FILE",
    "scan_line_offsets",
    "write_offsets_sidecar",
    "read_offsets_sidecar",
]

#: Per-shard sidecar recording each ``tables.jsonl`` row's byte offset, so
#: a lazy open never touches the table file at all (see DESIGN.md).
TABLES_OFFSETS_FILE = "tables.offsets"

#: Sidecar magic + version; bumping the layout bumps the trailing byte.
_OFFSETS_MAGIC = b"RPOF\x00\x01"


class TableStore:
    """An id-addressable collection of :class:`WebTable` objects."""

    def __init__(self, tables: Optional[Iterable[WebTable]] = None) -> None:
        self._tables: Dict[str, WebTable] = {}
        for table in tables or ():
            self.add(table)

    def add(self, table: WebTable) -> None:
        """Add a table; ids must be unique."""
        if not table.table_id:
            raise ValueError("table must have a table_id")
        if table.table_id in self._tables:
            raise ValueError(f"duplicate table id {table.table_id!r}")
        self._tables[table.table_id] = table

    def get(self, table_id: str) -> WebTable:
        """Fetch a table by id (KeyError if absent)."""
        trip(POINT_STORE_GET, key=table_id)
        return self._tables[table_id]

    def remove(self, table_id: str) -> WebTable:
        """Remove and return a table by id (KeyError if absent).

        O(1); used by the journal's delta store when a journaled add is
        itself deleted.  Insertion order of the survivors is preserved.
        """
        return self._tables.pop(table_id)

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        return [self._tables[i] for i in table_ids if i in self._tables]

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[WebTable]:
        return iter(self._tables.values())

    def ids(self) -> List[str]:
        """All table ids in insertion order."""
        return list(self._tables)

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the store as JSON-lines, one table per line.

        Tables are written in insertion order, so ``load(save(s))``
        round-trips both contents and ordering (``ids()`` is stable).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for table in self._tables.values():
                fh.write(json.dumps(table.to_dict(), ensure_ascii=False))
                fh.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> TableStore:
        """Read a store written by :meth:`save`.

        Preserves the file's line order as insertion order.  Corrupt JSON
        and duplicate table ids raise ``ValueError`` naming the offending
        ``path:line`` so a bad corpus file is diagnosable at a glance.
        """
        path = Path(path)
        store = cls()
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: invalid table JSON: {exc}"
                    ) from exc
                table = WebTable.from_dict(data)
                if table.table_id in store._tables:
                    raise ValueError(
                        f"{path}:{lineno}: duplicate table id {table.table_id!r}"
                    )
                store.add(table)
        return store


# -- row-offset machinery ------------------------------------------------------


def scan_line_offsets(path: Union[str, Path]) -> List[int]:
    """Byte offsets of every non-empty line of ``path``, plus an end mark.

    The sidecar-less fallback: one pass over the mmap'd bytes looking for
    newlines — no JSON is parsed, which is the entire point.  Returns
    ``[start_0, start_1, ..., end_of_last_row]``; a row's bytes are
    ``data[offsets[i]:offsets[i + 1]]`` (trailing newline included).
    """
    path = Path(path)
    size = path.stat().st_size
    offsets: List[int] = []
    if size == 0:
        return [0]
    with path.open("rb") as fh:
        with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mm:
            pos = 0
            while pos < size:
                end = mm.find(b"\n", pos)
                if end == -1:
                    end = size - 1  # final line without a trailing newline
                if mm[pos:end + 1].strip():
                    offsets.append(pos)
                pos = end + 1
    offsets.append(size)
    return offsets


def write_offsets_sidecar(
    tables_path: Union[str, Path], sidecar_path: Optional[Path] = None
) -> Path:
    """Derive and write the ``tables.offsets`` sidecar for a tables file.

    Layout: magic, ``u64`` row count, ``count + 1`` little-endian ``i64``
    offsets (the last is the data size), then a ``u32`` CRC-32 of the
    offset bytes.  Every reader cross-checks the CRC, the row count, and
    the recorded data size against the actual file, and falls back to
    :func:`scan_line_offsets` on any mismatch — a stale or corrupt
    sidecar degrades to a slower open, never to wrong rows.
    """
    tables_path = Path(tables_path)
    if sidecar_path is None:
        sidecar_path = tables_path.parent / TABLES_OFFSETS_FILE
    offsets = scan_line_offsets(tables_path)
    payload = struct.pack("<Q", len(offsets) - 1)
    payload += struct.pack(f"<{len(offsets)}q", *offsets)
    blob = _OFFSETS_MAGIC + payload + struct.pack("<I", zlib.crc32(payload))
    sidecar_path.write_bytes(blob)
    return sidecar_path


def read_offsets_sidecar(
    sidecar_path: Union[str, Path],
    expected_rows: int,
    data_size: int,
) -> Optional[List[int]]:
    """Read a sidecar written by :func:`write_offsets_sidecar`.

    Returns ``None`` — "scan instead" — when the sidecar is missing,
    truncated, checksum-corrupt, or disagrees with the live tables file
    (row count or total size): a sidecar is a cache, and a cache that
    cannot prove itself fresh must not be believed.
    """
    sidecar_path = Path(sidecar_path)
    try:
        blob = sidecar_path.read_bytes()
    except OSError:  # reprolint: disable=R008 -- a missing/unreadable sidecar is the documented "scan instead" signal, not a failure: the caller falls back to the authoritative newline scan and LazyTableStore verifies every id on parse
        return None
    header_len = len(_OFFSETS_MAGIC) + 8
    if len(blob) < header_len + 4 or not blob.startswith(_OFFSETS_MAGIC):
        return None
    (count,) = struct.unpack_from("<Q", blob, len(_OFFSETS_MAGIC))
    body_end = header_len + (count + 1) * 8
    if count != expected_rows or len(blob) != body_end + 4:
        return None
    payload = blob[len(_OFFSETS_MAGIC):body_end]
    (crc,) = struct.unpack_from("<I", blob, body_end)
    if zlib.crc32(payload) != crc:
        return None
    offsets = list(struct.unpack_from(f"<{count + 1}q", blob, header_len))
    if offsets[-1] != data_size or any(
        offsets[i] >= offsets[i + 1] for i in range(count)
    ):
        return None
    return offsets


class LazyTableStore(TableStore):
    """A :class:`TableStore` whose rows parse from disk on first access.

    Construction records only the row ids (supplied by the caller — for a
    version-3 shard they are the decoded index's document names, whose
    insertion order *is* the ``tables.jsonl`` line order by the builder's
    single-analysis-path invariant) and each row's byte offsets; no JSON
    is parsed until a table is actually read.  Parsed rows are cached, so
    steady-state reads cost the same as the eager store.  The mutation
    surface (``add``/``remove``) and verbatim ``save`` keep the journal's
    compaction paths working unchanged over a lazy base store.
    """

    def __init__(
        self,
        path: Union[str, Path],
        table_ids: Sequence[str],
        offsets: Sequence[int],
    ) -> None:
        super().__init__()
        self._path = Path(path)
        self._line_ids: List[str] = [str(t) for t in table_ids]
        if len(offsets) != len(self._line_ids) + 1:
            raise ValueError(
                f"{self._path}: {len(self._line_ids)} table ids expected "
                f"but the table store holds {max(0, len(offsets) - 1)} rows "
                "(truncated or tampered tables file?)"
            )
        self._offsets: List[int] = [int(o) for o in offsets]
        self._line_of: Dict[str, int] = {
            tid: i for i, tid in enumerate(self._line_ids)
        }
        if len(self._line_of) != len(self._line_ids):
            raise ValueError(f"{self._path}: duplicate table ids in row order")
        self._removed: Set[str] = set()
        self._extra_order: List[str] = []
        self._load_lock = threading.Lock()
        self._mm: Optional[mmap.mmap] = None
        if self._line_ids:
            with self._path.open("rb") as fh:
                self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)

    @classmethod
    def open(
        cls, path: Union[str, Path], table_ids: Sequence[str]
    ) -> LazyTableStore:
        """Open a tables file lazily, preferring the offsets sidecar.

        ``table_ids`` supplies the row ids in line order (each parsed row
        is verified against its expected id, so a mismatched id list
        surfaces as a ``path:line`` ``ValueError`` at first read, not as
        a silently misrouted table).
        """
        path = Path(path)
        offsets = read_offsets_sidecar(
            path.parent / TABLES_OFFSETS_FILE,
            expected_rows=len(table_ids),
            data_size=path.stat().st_size,
        )
        if offsets is None:
            offsets = scan_line_offsets(path)
        return cls(path, table_ids, offsets)

    # -- lazy row parsing ------------------------------------------------------

    def _lineno(self, row: int) -> int:
        """1-based physical line number of ``row`` (error paths only)."""
        mm = self._mm
        if mm is None:
            return row + 1
        return bytes(mm[: self._offsets[row]]).count(b"\n") + 1

    def _parse_row(self, row: int) -> WebTable:
        """Parse row ``row``'s JSON line into its :class:`WebTable`."""
        mm = self._mm
        if mm is None:  # pragma: no cover - empty stores hold no rows
            raise KeyError(self._line_ids[row])
        raw = bytes(mm[self._offsets[row]: self._offsets[row + 1]]).strip()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{self._path}:{self._lineno(row)}: invalid table JSON: {exc}"
            ) from exc
        table = WebTable.from_dict(data)
        if table.table_id != self._line_ids[row]:
            raise ValueError(
                f"{self._path}:{self._lineno(row)}: row holds table id "
                f"{table.table_id!r} but {self._line_ids[row]!r} was expected "
                "(tables file and index snapshot disagree)"
            )
        return table

    def _fetch(self, table_id: str) -> WebTable:
        """Cached-or-parsed row lookup (KeyError when absent/removed)."""
        cached = self._tables.get(table_id)
        if cached is not None:
            return cached
        row = self._line_of.get(table_id)
        if row is None or table_id in self._removed:
            raise KeyError(table_id)
        with self._load_lock:
            cached = self._tables.get(table_id)
            if cached is None:
                cached = self._parse_row(row)
                self._tables[table_id] = cached
        return cached

    # -- TableStore contract ---------------------------------------------------

    def add(self, table: WebTable) -> None:
        """Add a table (journal compaction's in-place append path)."""
        if not table.table_id:
            raise ValueError("table must have a table_id")
        if (
            table.table_id in self._line_of
            and table.table_id not in self._removed
        ):
            raise ValueError(f"duplicate table id {table.table_id!r}")
        if table.table_id in self._extra_order:
            raise ValueError(f"duplicate table id {table.table_id!r}")
        with self._load_lock:
            self._tables[table.table_id] = table
            self._extra_order.append(table.table_id)

    def get(self, table_id: str) -> WebTable:
        """Fetch a table by id, parsing its row on first access."""
        trip(POINT_STORE_GET, key=table_id)
        return self._fetch(table_id)

    def remove(self, table_id: str) -> WebTable:
        """Remove and return a table by id (KeyError if absent)."""
        with self._load_lock:
            if table_id in self._extra_order:
                self._extra_order.remove(table_id)
                return self._tables.pop(table_id)
        if table_id in self._removed or table_id not in self._line_of:
            raise KeyError(table_id)
        table = self._fetch(table_id)
        with self._load_lock:
            self._removed.add(table_id)
            self._tables.pop(table_id, None)
        return table

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        return [self._fetch(t) for t in table_ids if t in self]

    def __contains__(self, table_id: str) -> bool:
        if table_id in self._tables:
            return True
        return table_id in self._line_of and table_id not in self._removed

    def __len__(self) -> int:
        return (
            len(self._line_ids) - len(self._removed) + len(self._extra_order)
        )

    def __iter__(self) -> Iterator[WebTable]:
        for tid in self.ids():
            yield self._fetch(tid)

    def ids(self) -> List[str]:
        """All table ids: file row order first, then journal appends."""
        kept = [t for t in self._line_ids if t not in self._removed]
        return kept + list(self._extra_order)

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the store as JSON-lines, copying unparsed rows verbatim.

        Surviving on-disk rows are copied byte-for-byte (no parse +
        re-serialize round trip — a saved lazy store is bit-identical to
        its source rows), then journal-appended tables serialize after
        them, matching the eager store's insertion-order contract.  All
        source bytes are gathered *before* the target opens, so saving
        over the store's own backing file is safe.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        mm = self._mm
        chunks: List[bytes] = []
        for i, tid in enumerate(self._line_ids):
            if tid in self._removed or mm is None:
                continue
            raw = bytes(mm[self._offsets[i]: self._offsets[i + 1]])
            chunks.append(raw if raw.endswith(b"\n") else raw + b"\n")
        for tid in self._extra_order:
            line = json.dumps(self._tables[tid].to_dict(), ensure_ascii=False)
            chunks.append(line.encode("utf-8") + b"\n")
        with path.open("wb") as fh:
            for chunk in chunks:
                fh.write(chunk)

    def close(self) -> None:
        """Release the mmap handle (idempotent; parsed rows stay served)."""
        mm = self._mm
        self._mm = None
        if mm is not None:
            mm.close()
