"""Table store: persistence for the extracted table corpus.

The offline pipeline extracts tables once and stores them on disk; query
time reads raw tables back by id (the "Table Read" slices of Figure 7).
Storage is JSON-lines — one table per line — which keeps the store
greppable and append-friendly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..faults.injection import POINT_STORE_GET, trip
from ..tables.table import WebTable

__all__ = ["TableStore"]


class TableStore:
    """An id-addressable collection of :class:`WebTable` objects."""

    def __init__(self, tables: Optional[Iterable[WebTable]] = None) -> None:
        self._tables: Dict[str, WebTable] = {}
        for table in tables or ():
            self.add(table)

    def add(self, table: WebTable) -> None:
        """Add a table; ids must be unique."""
        if not table.table_id:
            raise ValueError("table must have a table_id")
        if table.table_id in self._tables:
            raise ValueError(f"duplicate table id {table.table_id!r}")
        self._tables[table.table_id] = table

    def get(self, table_id: str) -> WebTable:
        """Fetch a table by id (KeyError if absent)."""
        trip(POINT_STORE_GET, key=table_id)
        return self._tables[table_id]

    def remove(self, table_id: str) -> WebTable:
        """Remove and return a table by id (KeyError if absent).

        O(1); used by the journal's delta store when a journaled add is
        itself deleted.  Insertion order of the survivors is preserved.
        """
        return self._tables.pop(table_id)

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        return [self._tables[i] for i in table_ids if i in self._tables]

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[WebTable]:
        return iter(self._tables.values())

    def ids(self) -> List[str]:
        """All table ids in insertion order."""
        return list(self._tables)

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the store as JSON-lines, one table per line.

        Tables are written in insertion order, so ``load(save(s))``
        round-trips both contents and ordering (``ids()`` is stable).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for table in self._tables.values():
                fh.write(json.dumps(table.to_dict(), ensure_ascii=False))
                fh.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> TableStore:
        """Read a store written by :meth:`save`.

        Preserves the file's line order as insertion order.  Corrupt JSON
        and duplicate table ids raise ``ValueError`` naming the offending
        ``path:line`` so a bad corpus file is diagnosable at a glance.
        """
        path = Path(path)
        store = cls()
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: invalid table JSON: {exc}"
                    ) from exc
                table = WebTable.from_dict(data)
                if table.table_id in store._tables:
                    raise ValueError(
                        f"{path}:{lineno}: duplicate table id {table.table_id!r}"
                    )
                store.add(table)
        return store
