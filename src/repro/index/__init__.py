"""Index substrate: fielded inverted index, table store, corpus builder."""

from .builder import IndexedCorpus, build_corpus_index
from .inverted import FIELD_BOOSTS, InvertedIndex, SearchHit
from .store import TableStore

__all__ = [
    "FIELD_BOOSTS",
    "IndexedCorpus",
    "InvertedIndex",
    "SearchHit",
    "TableStore",
    "build_corpus_index",
]
