"""Index substrate: fielded inverted index, table store, corpus builders.

Two interchangeable backends implement :class:`CorpusProtocol`:
:class:`IndexedCorpus` (one in-memory index) and :class:`ShardedCorpus`
(hash-partitioned scatter-gather over N of them, with directory
persistence via ``save``/:func:`load_corpus`).  :class:`JournaledCorpus`
wraps either with a crash-safe write-ahead journal for live
``add_tables``/``delete_tables`` mutation and ``compact()`` folding —
:func:`load_corpus` returns one for any persisted directory.

Persisted shard snapshots come in two formats: the version-3 binary
columnar layout of :mod:`repro.index.binfmt` (the default — mmap'd,
checksummed, lazily materialized per shard) and the version-2 JSON
layout (still read and written; select with ``index_format="json"``).
:func:`build_corpus_stream` builds a persisted corpus from a table
stream in O(shard) memory.
"""

from .binfmt import LazyShard, read_index_bin, write_index_bin
from .builder import (
    DEFAULT_INDEX_FORMAT,
    IndexedCorpus,
    analyze_table,
    build_corpus_index,
    build_corpus_stream,
)
from .inverted import FIELD_BOOSTS, InvertedIndex, NaiveScorer, SearchHit
from .journal import JournaledCorpus
from .protocol import CorpusProtocol, ShardProtocol
from .sharded import ShardedCorpus, build_sharded_corpus, load_corpus, shard_of
from .store import TableStore

__all__ = [
    "CorpusProtocol",
    "DEFAULT_INDEX_FORMAT",
    "FIELD_BOOSTS",
    "IndexedCorpus",
    "InvertedIndex",
    "JournaledCorpus",
    "LazyShard",
    "NaiveScorer",
    "SearchHit",
    "ShardProtocol",
    "ShardedCorpus",
    "TableStore",
    "analyze_table",
    "build_corpus_index",
    "build_corpus_stream",
    "build_sharded_corpus",
    "load_corpus",
    "read_index_bin",
    "shard_of",
    "write_index_bin",
]
