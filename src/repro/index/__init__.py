"""Index substrate: fielded inverted index, table store, corpus builders.

Two interchangeable backends implement :class:`CorpusProtocol`:
:class:`IndexedCorpus` (one in-memory index) and :class:`ShardedCorpus`
(hash-partitioned scatter-gather over N of them, with directory
persistence via ``save``/:func:`load_corpus`).
"""

from .builder import IndexedCorpus, build_corpus_index
from .inverted import FIELD_BOOSTS, InvertedIndex, SearchHit
from .protocol import CorpusProtocol
from .sharded import ShardedCorpus, build_sharded_corpus, load_corpus, shard_of
from .store import TableStore

__all__ = [
    "CorpusProtocol",
    "FIELD_BOOSTS",
    "IndexedCorpus",
    "InvertedIndex",
    "SearchHit",
    "ShardedCorpus",
    "TableStore",
    "build_corpus_index",
    "build_sharded_corpus",
    "load_corpus",
    "shard_of",
]
