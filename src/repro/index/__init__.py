"""Index substrate: fielded inverted index, table store, corpus builders.

Two interchangeable backends implement :class:`CorpusProtocol`:
:class:`IndexedCorpus` (one in-memory index) and :class:`ShardedCorpus`
(hash-partitioned scatter-gather over N of them, with directory
persistence via ``save``/:func:`load_corpus`).  :class:`JournaledCorpus`
wraps either with a crash-safe write-ahead journal for live
``add_tables``/``delete_tables`` mutation and ``compact()`` folding —
:func:`load_corpus` returns one for any persisted directory.
"""

from .builder import IndexedCorpus, analyze_table, build_corpus_index
from .inverted import FIELD_BOOSTS, InvertedIndex, NaiveScorer, SearchHit
from .journal import JournaledCorpus
from .protocol import CorpusProtocol
from .sharded import ShardedCorpus, build_sharded_corpus, load_corpus, shard_of
from .store import TableStore

__all__ = [
    "CorpusProtocol",
    "FIELD_BOOSTS",
    "IndexedCorpus",
    "InvertedIndex",
    "JournaledCorpus",
    "NaiveScorer",
    "SearchHit",
    "ShardedCorpus",
    "TableStore",
    "analyze_table",
    "build_corpus_index",
    "build_sharded_corpus",
    "load_corpus",
    "shard_of",
]
