"""Offline corpus scrubbing: ``repro index verify`` and ``repro index repair``.

A persisted corpus directory carries enough redundancy to detect — and
often to undo — at-rest corruption without any backup:

- the manifest records every version-3 shard snapshot's byte length and
  CRC-32, and the snapshot itself checksums every section internally;
- the table store (``tables.jsonl``) is the *source* data the snapshot
  was compiled from, so a corrupt ``index.bin`` over an intact
  ``tables.jsonl`` can be re-derived exactly (the builder's
  :func:`~repro.index.builder.analyze_table` path is deterministic).

:func:`verify_corpus` is the read-only scrub: it walks the manifest,
checks every shard's snapshot against the recorded length/CRC, decodes
it, loads the table store, cross-checks the three against each other,
and parses any write-ahead journal — reporting every defect as a
structured :class:`ScrubIssue` instead of stopping at the first.

:func:`repair_corpus` re-derives each *repairable* defect (a broken
index snapshot whose ``tables.jsonl`` still verifies) by rebuilding the
shard's index from its tables and atomically replacing ``index.bin``
(write to a temp sibling, ``os.replace``).  If the rebuilt bytes differ
from what the manifest recorded, the manifest is rewritten atomically
too — the snapshot and its checksum move together or not at all.
Defects in the source data itself (a corrupt ``tables.jsonl``, a table
count that contradicts the manifest) are *not* repairable from within
the directory and are reported as such, never guessed at.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from .binfmt import SHARD_BIN_FILE, read_index_bin, write_index_bin
from .builder import (
    INDEX_VERSION,
    MANIFEST_FILE,
    SHARD_INDEX_FILE,
    SHARD_TABLES_FILE,
    _load_shard,
    analyze_table,
    read_manifest,
)
from .inverted import InvertedIndex
from .journal import JOURNAL_FILE, read_journal
from .store import TableStore

__all__ = ["ScrubIssue", "ScrubReport", "verify_corpus", "repair_corpus"]


@dataclass(frozen=True)
class ScrubIssue:
    """One defect the scrub found.

    ``repairable`` means :func:`repair_corpus` can re-derive the damaged
    artifact from data that still verifies (a broken index snapshot over
    an intact table store); everything else needs a rebuild from the
    original table source.
    """

    #: Shard directory name, or ``""`` for corpus-level defects.
    shard: str
    #: Defect class: ``missing`` / ``size`` / ``checksum`` / ``decode`` /
    #: ``tables`` / ``cross`` / ``journal`` / ``manifest``.
    kind: str
    message: str
    repairable: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON output."""
        return {
            "shard": self.shard,
            "kind": self.kind,
            "message": self.message,
            "repairable": self.repairable,
        }


@dataclass
class ScrubReport:
    """Everything one scrub (or repair) pass found and did."""

    path: str
    shards_checked: int = 0
    issues: List[ScrubIssue] = field(default_factory=list)
    #: Shard directory names whose snapshots were re-derived (repair only).
    repaired: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did every artifact verify?"""
        return not self.issues

    @property
    def repairable(self) -> bool:
        """Would :func:`repair_corpus` fix every issue found?"""
        return bool(self.issues) and all(i.repairable for i in self.issues)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON output."""
        return {
            "path": self.path,
            "ok": self.ok,
            "shards_checked": self.shards_checked,
            "issues": [i.to_dict() for i in self.issues],
            "repaired": list(self.repaired),
        }


def _verify_tables(shard_dir: Path, entry: Dict[str, Any], record_issue: Any) -> bool:
    """Check one shard's table store; returns True when it verifies."""
    tables_path = shard_dir / SHARD_TABLES_FILE
    if not tables_path.is_file():
        record_issue(
            shard_dir.name, "missing", f"{tables_path} is missing"
        )
        return False
    try:
        store = TableStore.load(tables_path)
    except ValueError as exc:  # reprolint: disable=R008 -- the corrupt store IS the scrub finding; record_issue reports it and verification of this shard continues with the snapshot checks
        record_issue(shard_dir.name, "tables", str(exc))
        return False
    if len(store) != int(entry["num_tables"]):
        record_issue(
            shard_dir.name,
            "cross",
            f"{tables_path} holds {len(store)} tables but the manifest "
            f"records {entry['num_tables']}",
        )
        return False
    return True


def _verify_journal(shard_dir: Path, record_issue: Any) -> None:
    """Parse one shard's write-ahead journal, if present and non-empty."""
    journal_path = shard_dir / JOURNAL_FILE
    if not journal_path.is_file() or journal_path.stat().st_size == 0:
        return
    try:
        read_journal(journal_path)
    except ValueError as exc:  # reprolint: disable=R008 -- the unreadable journal IS the scrub finding; record_issue reports it (load-time repair_journal owns the fix)
        record_issue(shard_dir.name, "journal", str(exc))


def verify_corpus(path: Union[str, Path]) -> ScrubReport:
    """Read-only scrub of a persisted corpus directory.

    Walks the manifest and checks, per shard: the snapshot file's size
    and whole-file CRC-32 against the manifest's record, a full decode
    (every internal section checksum), the table store, the
    snapshot/store/manifest cross-invariants, and the write-ahead
    journal's parseability.  Never modifies anything; collects *every*
    defect rather than stopping at the first, so one pass sizes the
    damage.
    """
    path = Path(path)
    report = ScrubReport(path=str(path))

    def record_issue(
        shard: str, kind: str, message: str, repairable: bool = False
    ) -> None:
        report.issues.append(ScrubIssue(shard, kind, message, repairable))

    try:
        manifest = read_manifest(path)
    except ValueError as exc:  # reprolint: disable=R008 -- an unreadable manifest IS the scrub finding; record_issue reports it and the scrub ends (nothing else is walkable without it)
        record_issue("", "manifest", str(exc))
        return report

    for entry in manifest["shards"]:
        shard_dir = path / entry["dir"]
        report.shards_checked += 1
        if not shard_dir.is_dir():
            record_issue(entry["dir"], "missing", f"{shard_dir} is missing")
            continue
        tables_ok = _verify_tables(shard_dir, entry, record_issue)
        _verify_journal(shard_dir, record_issue)

        if manifest["version"] != INDEX_VERSION:
            # Version 2 has no recorded checksums: a full load is the
            # strongest available check.
            try:
                _load_shard(shard_dir, version=manifest["version"], entry=entry)
            except ValueError as exc:  # reprolint: disable=R008 -- the corrupt v2 snapshot IS the scrub finding; record_issue reports it (repairable: index.json re-derives from the verified tables.jsonl)
                record_issue(
                    entry["dir"], "decode", str(exc), repairable=tables_ok
                )
            continue

        bin_path = shard_dir / SHARD_BIN_FILE
        if not bin_path.is_file():
            record_issue(
                entry["dir"],
                "missing",
                f"{bin_path} is missing",
                repairable=tables_ok,
            )
            continue
        size = bin_path.stat().st_size
        if size != int(entry["index_bytes"]):
            record_issue(
                entry["dir"],
                "size",
                f"{bin_path} is {size} bytes but the manifest records "
                f"{entry['index_bytes']}",
                repairable=tables_ok,
            )
            continue
        crc = zlib.crc32(bin_path.read_bytes())
        if crc != int(entry["index_crc32"]):
            record_issue(
                entry["dir"],
                "checksum",
                f"{bin_path} checksum {crc:#010x} does not match the "
                f"manifest's {int(entry['index_crc32']):#010x}",
                repairable=tables_ok,
            )
            continue
        try:
            index = read_index_bin(
                bin_path,
                expected_bytes=int(entry["index_bytes"]),
                expected_crc32=int(entry["index_crc32"]),
            )
        except ValueError as exc:  # reprolint: disable=R008 -- the undecodable snapshot IS the scrub finding; record_issue reports it with the decoder's path:offset detail
            record_issue(
                entry["dir"], "decode", str(exc), repairable=tables_ok
            )
            continue
        if not tables_ok:
            continue  # cross-checks need both sides intact
        store = TableStore.load(shard_dir / SHARD_TABLES_FILE)
        if index.num_docs != len(store):
            record_issue(
                entry["dir"],
                "cross",
                f"{bin_path} indexes {index.num_docs} documents but "
                f"{SHARD_TABLES_FILE} holds {len(store)}",
            )
        elif [n for n in index._doc_names if n is not None] != store.ids():
            record_issue(
                entry["dir"],
                "cross",
                f"{bin_path} document ids do not match "
                f"{SHARD_TABLES_FILE} (same count, different ids/order)",
            )
    return report


def _rebuild_index(shard_dir: Path, boosts: Dict[str, float]) -> InvertedIndex:
    """Re-derive one shard's index from its (verified) table store.

    Mirrors the builder exactly — same :func:`analyze_table` fields, same
    insertion order as the store — so a shard originally written by the
    builder re-encodes to bit-identical snapshot bytes.
    """
    store = TableStore.load(shard_dir / SHARD_TABLES_FILE)
    index = InvertedIndex(boosts=boosts)
    for table in store:
        index.add_document(table.table_id, analyze_table(table))
    return index


def repair_corpus(path: Union[str, Path]) -> ScrubReport:
    """Re-derive every repairable defect :func:`verify_corpus` finds.

    For each shard whose index snapshot is damaged but whose
    ``tables.jsonl`` verifies, the index is rebuilt from the tables
    (bit-identical to the builder's output), written to a temp sibling,
    and atomically swapped over ``index.bin``; the manifest is rewritten
    (atomically, last) when the recorded length/CRC changed.  The
    returned report lists what was repaired and carries only the issues
    that *remain* — unrepairable ones, plus journal defects (owned by
    load-time ``repair_journal``).  ``report.ok`` after a repair means a
    subsequent :func:`verify_corpus` would be clean except for those.
    """
    path = Path(path)
    found = verify_corpus(path)
    report = ScrubReport(
        path=str(path), shards_checked=found.shards_checked
    )
    report.issues = [i for i in found.issues if not i.repairable]
    broken = {i.shard for i in found.issues if i.repairable}
    if not broken:
        return report

    manifest = read_manifest(path)
    boosts = {str(f): float(b) for f, b in manifest["boosts"].items()}
    manifest_dirty = False
    for entry in manifest["shards"]:
        if entry["dir"] not in broken:
            continue
        shard_dir = path / entry["dir"]
        index = _rebuild_index(shard_dir, boosts)
        if manifest["version"] == INDEX_VERSION:
            bin_path = shard_dir / SHARD_BIN_FILE
            tmp_path = shard_dir / f".{SHARD_BIN_FILE}.repairing"
            nbytes, crc = write_index_bin(tmp_path, index)
            os.replace(tmp_path, bin_path)
            if (
                nbytes != int(entry["index_bytes"])
                or crc != int(entry["index_crc32"])
            ):
                entry["index_bytes"] = nbytes
                entry["index_crc32"] = crc
                manifest_dirty = True
        else:
            index_path = shard_dir / SHARD_INDEX_FILE
            tmp_path = shard_dir / f".{SHARD_INDEX_FILE}.repairing"
            tmp_path.write_text(json.dumps(index.to_dict()), encoding="utf-8")
            os.replace(tmp_path, index_path)
        report.repaired.append(entry["dir"])
    if manifest_dirty:
        manifest_path = path / MANIFEST_FILE
        tmp_manifest = path / f".{MANIFEST_FILE}.repairing"
        tmp_manifest.write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        os.replace(tmp_manifest, manifest_path)
    return report
