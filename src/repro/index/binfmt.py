"""``repro.index.binfmt`` — version-3 binary columnar index snapshots.

Version 2 persisted each shard's posting structure as one JSON document
(``index.json``), which makes load time O(parse the whole corpus) — fine at
hundreds of tables, hopeless at the 10^5–10^6 scale the paper's workload
implies.  This module serializes the *compiled* posting layout of
:class:`~repro.index.inverted.InvertedIndex` (interned doc ids, parallel
``array`` columns of doc numbers / raw tfs / precomputed weights, dense norm
tables, df counters) directly, so loading is a handful of bulk
``array.frombytes`` copies out of an ``mmap`` view instead of a JSON parse
plus recompilation — and, crucially, it can be deferred per shard:
:class:`LazyShard` materializes a shard's arrays on first probe, so opening
a corpus is O(manifest).

**On-disk layout** (normative spec: DESIGN.md, "On-disk corpus format,
version 3").  Everything is little-endian; integers are signed 64-bit
(matching ``array('q')``), floats IEEE-754 binary64 (``array('d')``):

- header ``<8sIIQ``: magic ``b"RPRIDX3\\0"``, version ``3``, section count,
  total file bytes;
- section table, one ``<4sQQI`` entry per section: tag, absolute byte
  offset, byte length, CRC-32 of the section payload;
- ``<I`` CRC-32 over the header + section table;
- the section payloads, contiguous and tiling the rest of the file exactly,
  in fixed order ``STRT`` (string table), ``DOCS`` (document ids), ``FLDS``
  (per-field boosts, sparse token lengths, dense norms), ``PSTG`` (posting
  lists), ``DFCT`` (document-frequency counters).

Weights and norms are stored as the exact float64 values the in-memory
index computed, so a loaded index scores **bit-identically** to the
instance that was saved — no recomputation happens on load.

**Failure contract.**  The decoder never crashes and never silently
misloads: every defect — truncation, a flipped byte (every byte is covered
by a checksum), a bad magic/version, an over-length string entry, an
out-of-range reference — raises ``ValueError`` naming ``path:offset``
(byte offset), mirroring :class:`~repro.index.store.TableStore`'s
``path:line`` contract.  ``tests/test_binfmt.py`` tortures exactly this.
"""

from __future__ import annotations

import mmap
import struct
import sys
import threading
import zlib
from array import array
from collections import Counter
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    NoReturn,
    Optional,
    Set,
    Tuple,
    Union,
    cast,
)

from ..faults.injection import POINT_SHARD_MATERIALIZE, trip
from ..text.tfidf import TermStatistics
from .inverted import InvertedIndex, _PostingList
from .store import LazyTableStore, TableStore

__all__ = [
    "BIN_MAGIC",
    "BIN_VERSION",
    "SHARD_BIN_FILE",
    "LazyShard",
    "encode_index",
    "read_index_bin",
    "write_index_bin",
]

#: First 8 bytes of every v3 snapshot.
BIN_MAGIC = b"RPRIDX3\x00"
#: Binary layout version; matches the manifest ``version`` that selects it.
BIN_VERSION = 3
#: File name of the binary index snapshot inside a shard directory.
SHARD_BIN_FILE = "index.bin"

_HEADER = struct.Struct("<8sIIQ")  # magic, version, section count, file bytes
_SECTION = struct.Struct("<4sQQI")  # tag, offset, length, payload crc32
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: The five sections, in their mandatory file order.
_SECTION_ORDER = (b"STRT", b"DOCS", b"FLDS", b"PSTG", b"DFCT")


def _le_bytes(values: Union["array[int]", "array[float]"]) -> bytes:
    """Raw little-endian bytes of an array (byte-swapping on BE hosts)."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        swapped = array(values.typecode, values)
        swapped.byteswap()
        return swapped.tobytes()
    return values.tobytes()


class _StringTable:
    """Interns strings to dense refs in first-use order (the writer side)."""

    def __init__(self) -> None:
        self._refs: Dict[str, int] = {}
        self.entries: List[str] = []

    def ref(self, value: str) -> int:
        """Return the dense table index of ``value``, interning it if new."""
        got = self._refs.get(value)
        if got is None:
            got = self._refs[value] = len(self.entries)
            self.entries.append(value)
        return got


# -- encoding ------------------------------------------------------------------


def encode_index(index: InvertedIndex) -> bytes:
    """Serialize an in-memory index to the v3 binary snapshot bytes.

    The index must be removal-free (every interned doc number still names a
    live document) — which every persisted snapshot is by construction:
    base shards are append-only and deletions are folded at compaction.
    A delta index carrying removals is rejected with ``ValueError``.
    """
    doc_names: List[str] = []
    for num, name in enumerate(index._doc_names):
        if name is None:
            raise ValueError(
                f"index holds a removed document (doc number {num}); only "
                "compacted, removal-free indexes can be written as binary "
                "snapshots"
            )
        doc_names.append(name)

    strings = _StringTable()
    doc_refs = array("q", (strings.ref(name) for name in doc_names))
    docs = bytearray()
    docs += _I64.pack(len(doc_names))
    docs += _le_bytes(doc_refs)

    fields = list(index._postings)
    flds = bytearray()
    flds += _I64.pack(len(fields))
    for field in fields:
        lengths = index._lengths[field]
        flds += _I64.pack(strings.ref(field))
        flds += _F64.pack(index.boosts.get(field, 1.0))
        flds += _I64.pack(len(lengths))
        flds += _le_bytes(array("q", lengths.keys()))
        flds += _le_bytes(array("q", lengths.values()))
        flds += _le_bytes(array("d", index._norms[field]))

    pstg = bytearray()
    pstg += _I64.pack(len(fields))
    for field in fields:
        postings = index._postings[field]
        pstg += _I64.pack(strings.ref(field))
        pstg += _I64.pack(len(postings))
        for term, plist in postings.items():
            pstg += _I64.pack(strings.ref(term))
            pstg += _I64.pack(len(plist))
            pstg += _le_bytes(plist.doc_nums)
            pstg += _le_bytes(plist.tfs)
            pstg += _le_bytes(plist.weights)

    dfct = bytearray()
    dfct += _I64.pack(len(index._df))
    for term, count in index._df.items():
        dfct += _I64.pack(strings.ref(term))
        dfct += _I64.pack(count)

    # The string table is written first in the file but assembled last:
    # refs are handed out while the other sections serialize.
    strt = bytearray()
    strt += _I64.pack(len(strings.entries))
    for value in strings.entries:
        raw = value.encode("utf-8")
        strt += _I64.pack(len(raw))
        strt += raw

    sections: List[Tuple[bytes, bytes]] = [
        (b"STRT", bytes(strt)),
        (b"DOCS", bytes(docs)),
        (b"FLDS", bytes(flds)),
        (b"PSTG", bytes(pstg)),
        (b"DFCT", bytes(dfct)),
    ]
    header_bytes = _HEADER.size + _SECTION.size * len(sections) + _U32.size
    total = header_bytes + sum(len(payload) for _, payload in sections)
    head = bytearray()
    head += _HEADER.pack(BIN_MAGIC, BIN_VERSION, len(sections), total)
    offset = header_bytes
    for tag, payload in sections:
        head += _SECTION.pack(tag, offset, len(payload), zlib.crc32(payload))
        offset += len(payload)
    head += _U32.pack(zlib.crc32(bytes(head)))
    return bytes(head) + b"".join(payload for _, payload in sections)


def write_index_bin(
    path: Union[str, Path], index: InvertedIndex
) -> Tuple[int, int]:
    """Write one index as a v3 binary snapshot file.

    Returns ``(byte_length, crc32)`` of the written file — the pair the
    corpus manifest records per shard so a later lazy load can verify the
    snapshot it is about to materialize.
    """
    data = encode_index(index)
    Path(path).write_bytes(data)
    return len(data), zlib.crc32(data)


# -- decoding ------------------------------------------------------------------


class _Reader:
    """A bounds-checked cursor over one byte range of a snapshot view.

    Every read states what it is reading; any read past ``end`` — the
    signature of truncation or a corrupt length field — raises
    ``ValueError`` naming the file and the absolute byte offset.
    """

    __slots__ = ("_view", "_path", "pos", "end")

    def __init__(
        self, view: memoryview, path: Path, start: int, end: int
    ) -> None:
        self._view = view
        self._path = path
        self.pos = start
        self.end = end

    def fail(self, offset: int, message: str) -> NoReturn:
        """Raise the decoder's uniform ``path:offset`` ValueError."""
        raise ValueError(f"{self._path}:{offset}: {message}")

    def take(self, nbytes: int, what: str) -> int:
        """Advance past ``nbytes``, returning their start offset."""
        start = self.pos
        if self.end - start < nbytes:
            self.fail(
                start,
                f"truncated {what}: need {nbytes} bytes, "
                f"{self.end - start} left",
            )
        self.pos = start + nbytes
        return start

    def done(self, what: str) -> None:
        """Assert the cursor consumed its range exactly."""
        if self.pos != self.end:
            self.fail(
                self.pos, f"{self.end - self.pos} trailing bytes in {what}"
            )

    def i64(self, what: str) -> int:
        """One signed little-endian 64-bit integer."""
        start = self.take(8, what)
        value: int = _I64.unpack_from(self._view, start)[0]
        return value

    def count(self, what: str) -> int:
        """One i64 that must be non-negative (an element count)."""
        start = self.pos
        value = self.i64(what)
        if value < 0:
            self.fail(start, f"negative {what} ({value})")
        return value

    def f64(self, what: str) -> float:
        """One little-endian IEEE-754 binary64 float."""
        start = self.take(8, what)
        value: float = _F64.unpack_from(self._view, start)[0]
        return value

    def i64_array(self, n: int, what: str) -> "array[int]":
        """``n`` consecutive i64 values as an ``array('q')`` (bulk copy)."""
        start = self.take(8 * n, what)
        out = array("q")
        out.frombytes(self._view[start : start + 8 * n])
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            out.byteswap()
        return out

    def f64_array(self, n: int, what: str) -> "array[float]":
        """``n`` consecutive f64 values as an ``array('d')`` (bulk copy)."""
        start = self.take(8 * n, what)
        out = array("d")
        out.frombytes(self._view[start : start + 8 * n])
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            out.byteswap()
        return out

    def text(self, what: str) -> str:
        """One length-prefixed UTF-8 string."""
        length = self.count(f"{what} length")
        start = self.take(length, what)
        try:
            return str(self._view[start : start + length], "utf-8")
        except UnicodeDecodeError as exc:
            self.fail(start, f"{what} is not valid UTF-8: {exc}")


def read_index_bin(
    path: Union[str, Path],
    expected_bytes: Optional[int] = None,
    expected_crc32: Optional[int] = None,
) -> InvertedIndex:
    """Load a v3 binary snapshot written by :func:`write_index_bin`.

    The file is mapped read-only and decoded with bulk array copies; the
    returned index is fully materialized (the map is released before
    returning).  ``expected_bytes``/``expected_crc32`` are the manifest's
    recorded size and checksum — when given, a mismatch is rejected before
    any decoding, catching a snapshot/manifest pair that drifted apart.

    Every defect raises ``ValueError`` naming ``path:offset``; no corrupt
    input crashes the decoder or yields a silently wrong index (see the
    module docstring for the contract and DESIGN.md for the layout spec).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        fh.seek(0, 2)
        size = fh.tell()
        if size == 0:
            raise ValueError(f"{path}:0: empty snapshot file")
        if expected_bytes is not None and size != expected_bytes:
            raise ValueError(
                f"{path}:0: snapshot is {size} bytes but the manifest "
                f"records {expected_bytes} (truncated or replaced file?)"
            )
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        view = memoryview(mapped)
        try:
            if expected_crc32 is not None:
                actual = zlib.crc32(view)
                if actual != expected_crc32:
                    raise ValueError(
                        f"{path}:0: snapshot checksum {actual:#010x} does "
                        f"not match the manifest's {expected_crc32:#010x}"
                    )
            return _decode(view, path, size)
        finally:
            view.release()
    finally:
        mapped.close()


def _decode(view: memoryview, path: Path, size: int) -> InvertedIndex:
    """Decode one validated byte view into an :class:`InvertedIndex`."""
    head = _Reader(view, path, 0, size)
    at = head.take(_HEADER.size, "header")
    magic, version, section_count, file_bytes = _HEADER.unpack_from(view, at)
    if magic != BIN_MAGIC:
        head.fail(0, f"bad magic {bytes(magic)!r} (expected {BIN_MAGIC!r})")
    if version != BIN_VERSION:
        head.fail(
            8,
            f"unsupported binary version {version} "
            f"(this build reads version {BIN_VERSION})",
        )
    if section_count != len(_SECTION_ORDER):
        head.fail(
            12,
            f"header records {section_count} sections "
            f"(expected {len(_SECTION_ORDER)})",
        )
    if file_bytes != size:
        head.fail(
            16,
            f"snapshot is {size} bytes but the header records {file_bytes} "
            "(truncated write?)",
        )
    entries: List[Tuple[int, bytes, int, int, int]] = []
    for _ in range(section_count):
        at = head.take(_SECTION.size, "section table")
        tag, offset, length, crc = _SECTION.unpack_from(view, at)
        entries.append((at, bytes(tag), offset, length, crc))
    crc_at = head.take(_U32.size, "header checksum")
    stored: int = _U32.unpack_from(view, crc_at)[0]
    computed = zlib.crc32(view[:crc_at])
    if stored != computed:
        head.fail(
            crc_at,
            f"header checksum mismatch (stored {stored:#010x}, "
            f"computed {computed:#010x})",
        )

    readers: Dict[bytes, _Reader] = {}
    expected_offset = head.pos
    for (at, tag, offset, length, crc), want in zip(entries, _SECTION_ORDER):
        if tag != want:
            head.fail(at, f"section {want!r} expected, found {tag!r}")
        if offset != expected_offset:
            head.fail(
                at,
                f"section {tag!r} starts at {offset}, "
                f"expected {expected_offset}",
            )
        if length > size - offset:
            head.fail(at, f"section {tag!r} overruns the file")
        computed = zlib.crc32(view[offset : offset + length])
        if computed != crc:
            head.fail(
                offset,
                f"section {tag!r} checksum mismatch "
                f"(stored {crc:#010x}, computed {computed:#010x})",
            )
        readers[tag] = _Reader(view, path, offset, offset + length)
        expected_offset = offset + length
    if expected_offset != size:
        head.fail(
            expected_offset,
            f"{size - expected_offset} trailing bytes after the last section",
        )

    # STRT -- the string table every other section references into.
    r = readers[b"STRT"]
    num_strings = r.count("string count")
    strings: List[str] = []
    for _ in range(num_strings):
        strings.append(r.text("string-table entry"))
    r.done("string table")

    def str_ref(r: _Reader, what: str) -> str:
        at = r.pos
        i = r.i64(f"{what} ref")
        if not 0 <= i < len(strings):
            r.fail(
                at,
                f"{what} ref {i} out of range "
                f"(string table holds {len(strings)})",
            )
        return strings[i]

    # DOCS -- interned document ids, in doc-number order.
    r = readers[b"DOCS"]
    num_docs = r.count("document count")
    doc_ids: List[str] = []
    seen_docs: Set[str] = set()
    for _ in range(num_docs):
        at = r.pos
        doc_id = str_ref(r, "document id")
        if doc_id in seen_docs:
            r.fail(at, f"duplicate document id {doc_id!r}")
        seen_docs.add(doc_id)
        doc_ids.append(doc_id)
    r.done("document table")

    # FLDS -- per-field boost, sparse token lengths, dense norms.
    r = readers[b"FLDS"]
    num_fields = r.count("field count")
    boosts: Dict[str, float] = {}
    field_rows: List[
        Tuple[str, "array[int]", "array[int]", "array[float]"]
    ] = []
    for _ in range(num_fields):
        at = r.pos
        name = str_ref(r, "field name")
        if name in boosts:
            r.fail(at, f"duplicate field {name!r}")
        boosts[name] = r.f64("field boost")
        sparse = r.count("field length count")
        length_docs = r.i64_array(sparse, "field length doc numbers")
        length_vals = r.i64_array(sparse, "field token lengths")
        norms = r.f64_array(num_docs, "field norms")
        if sparse:
            if min(length_docs) < 0 or max(length_docs) >= num_docs:
                r.fail(
                    at,
                    f"field {name!r} has a length entry with a doc number "
                    f"out of range (corpus holds {num_docs} documents)",
                )
            if min(length_vals) < 0:
                r.fail(at, f"field {name!r} has a negative token length")
        field_rows.append((name, length_docs, length_vals, norms))
    r.done("field table")

    # PSTG -- posting lists, parallel columns per (field, term).
    r = readers[b"PSTG"]
    num_posting_fields = r.count("posting field count")
    if num_posting_fields != len(field_rows):
        r.fail(
            r.pos,
            f"posting section lists {num_posting_fields} fields, "
            f"field table lists {len(field_rows)}",
        )
    posting_rows: List[Tuple[str, List[Tuple[str, _PostingList]]]] = []
    for name, _, _, _ in field_rows:
        at = r.pos
        posting_field = str_ref(r, "posting field name")
        if posting_field != name:
            r.fail(
                at,
                f"posting section field {posting_field!r} does not follow "
                f"the field table order ({name!r} expected)",
            )
        num_terms = r.count("term count")
        terms: List[Tuple[str, _PostingList]] = []
        seen_terms: Set[str] = set()
        for _ in range(num_terms):
            at = r.pos
            term = str_ref(r, "posting term")
            if term in seen_terms:
                r.fail(
                    at,
                    f"duplicate posting term {term!r} in field {name!r}",
                )
            seen_terms.add(term)
            n = r.count("posting length")
            if n == 0:
                r.fail(at, f"empty posting list for term {term!r}")
            plist = _PostingList()
            plist.doc_nums = r.i64_array(n, "posting doc numbers")
            plist.tfs = r.i64_array(n, "posting term frequencies")
            plist.weights = r.f64_array(n, "posting weights")
            if min(plist.doc_nums) < 0 or max(plist.doc_nums) >= num_docs:
                r.fail(
                    at,
                    f"posting list for term {term!r} references a doc "
                    f"number out of range (corpus holds {num_docs} "
                    "documents)",
                )
            if min(plist.tfs) < 1:
                r.fail(
                    at,
                    f"non-positive term frequency in posting list for "
                    f"term {term!r}",
                )
            terms.append((term, plist))
        posting_rows.append((name, terms))
    r.done("posting lists")

    # DFCT -- incremental per-term document frequencies.
    r = readers[b"DFCT"]
    num_df = r.count("df entry count")
    df: "Counter[str]" = Counter()
    for _ in range(num_df):
        at = r.pos
        term = str_ref(r, "df term")
        if term in df:
            r.fail(at, f"duplicate df entry for term {term!r}")
        count = r.count("df count")
        if count == 0:
            r.fail(at, f"zero document frequency recorded for {term!r}")
        df[term] = count
    r.done("df counters")

    index = InvertedIndex(boosts=boosts)
    index._doc_names = list(doc_ids)
    index._doc_nums = {doc_id: i for i, doc_id in enumerate(doc_ids)}
    index._num_docs = num_docs
    for name, length_docs, length_vals, norms in field_rows:
        index._lengths[name] = dict(zip(length_docs, length_vals))
        index._norms[name] = norms.tolist()
    for name, terms in posting_rows:
        postings = index._postings[name]
        for term, plist in terms:
            postings[term] = plist
    index._df = df
    return index


# -- lazy shard handles --------------------------------------------------------


class LazyShard:
    """One persisted v3 shard, materialized on first index/store access.

    Loading a v3 corpus builds these from the manifest alone — O(manifest),
    no snapshot bytes touched.  The cheap surface (:attr:`num_tables`,
    :attr:`boosts`, the shared ``stats``) answers from manifest data;
    touching :attr:`index` or :attr:`store` decodes the shard's
    ``index.bin`` (verified against the manifest's recorded byte length and
    CRC-32) and ``tables.jsonl`` exactly once, under a lock so concurrent
    first probes materialize it a single time.
    """

    def __init__(
        self,
        shard_dir: Union[str, Path],
        entry: Mapping[str, Any],
        stats: TermStatistics,
        boosts: Mapping[str, float],
    ) -> None:
        self._dir = Path(shard_dir)
        self._num_tables = int(entry["num_tables"])
        self._expected_bytes = int(entry["index_bytes"])
        self._expected_crc32 = int(entry["index_crc32"])
        self.stats = stats
        self._boosts = {str(f): float(b) for f, b in boosts.items()}
        self._lock = threading.Lock()
        self._pair: Optional[Tuple[InvertedIndex, TableStore]] = None

    @property
    def num_tables(self) -> int:
        """Table count, answered from the manifest (never materializes)."""
        return self._num_tables

    @property
    def boosts(self) -> Dict[str, float]:
        """Field boosts, answered from the manifest (never materializes)."""
        return dict(self._boosts)

    @property
    def materialized(self) -> bool:
        """Has this shard's snapshot been decoded yet?"""
        with self._lock:
            return self._pair is not None

    def _load(self) -> Tuple[InvertedIndex, TableStore]:
        with self._lock:
            pair = self._pair
            if pair is None:
                trip(POINT_SHARD_MATERIALIZE, key=self._dir.name)
                index = read_index_bin(
                    self._dir / SHARD_BIN_FILE,
                    expected_bytes=self._expected_bytes,
                    expected_crc32=self._expected_crc32,
                )
                # Lazy store: the decoded index's doc-name order *is* the
                # tables.jsonl line order (both follow build insertion
                # order), so no id sidecar is needed — rows parse on
                # first get(), erasing the eager-JSON cold-start cliff.
                # A decoded snapshot is removal-free (the encoder rejects
                # None doc names), hence the cast.
                # The lazy open itself enforces index-vs-store row-count
                # agreement: a tables.jsonl with more or fewer rows than
                # the decoded index has documents fails construction with
                # a "table store holds N rows" ValueError.
                store: TableStore = LazyTableStore.open(
                    self._dir / "tables.jsonl",
                    cast(List[str], index._doc_names),
                )
                if len(store) != self._num_tables:
                    raise ValueError(
                        f"{self._dir}: shard holds {len(store)} tables but "
                        f"the manifest records {self._num_tables}"
                    )
                if index.boosts != self._boosts:
                    raise ValueError(
                        f"{self._dir}: snapshot boosts {index.boosts} do "
                        f"not match the manifest's {self._boosts}"
                    )
                pair = self._pair = (index, store)
        return pair

    @property
    def index(self) -> InvertedIndex:
        """The shard's inverted index (decoded on first access)."""
        return self._load()[0]

    @property
    def store(self) -> TableStore:
        """The shard's table store (loaded on first access)."""
        return self._load()[1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "materialized" if self.materialized else "lazy"
        return f"LazyShard({self._dir.name}, {self._num_tables} tables, {state})"
