"""``repro.index.procpool`` — process-pool scatter execution for shards.

``probe_workers`` threads buy little for the CPU-bound shard probe: the
GIL serializes the scoring loops.  This module escapes it with a
persistent pool of **worker processes**, each opening its own shard via
the version-3 mmap :class:`~repro.index.binfmt.LazyShard` path — a
cheap per-worker open with zero index pickling — and answering scatter
requests with top-k postings over IPC.

**IPC protocol.**  Only primitives cross the boundary, in both
directions:

- down: the corpus directory path (at spawn), shard ordinals, term
  lists, limits, field lists, and an explicit ``{term: idf}`` mapping;
- up: document-frequency dicts, ``(doc_id, score, field_scores)`` hit
  tuples, and sorted doc-id lists.

No index, store, lock, mmap handle, or socket is ever pickled
(reprolint R009 enforces this shape repo-wide).  Shipping the *parent's*
IDF values down is what makes process-mode rankings bit-identical to
serial execution: the worker scores with exactly the floats the parent
computed from corpus-global document frequencies, so per-document scores
— and therefore the gather merge — cannot drift.

**Fork-vs-spawn contract.**  The pool always uses the ``spawn`` start
method, on every platform: a forked child would inherit the parent's
mmap views, executor threads, lock states, and any active
:class:`~repro.faults.injection.FaultInjector` mid-flight — exactly the
shared state whose absence makes worker crashes recoverable.  Spawned
workers rebuild the world from the persisted corpus directory alone,
which is also why process mode requires a *saved* corpus.

**Failure contract.**  A worker crash (``BrokenProcessPool``) or an IPC
timeout discards the executor — the next scatter attempt lazily builds a
fresh pool, i.e. respawns the workers — and re-raises, so
:class:`~repro.index.sharded.ShardedCorpus` feeds the failure into its
per-shard :class:`~repro.faults.health.HealthTracker` (retry →
quarantine → reopen) instead of killing the query.  Fault rules armed at
the ``shard.worker`` point ship to workers at (re)spawn, so chaos tests
can fault inside the child process deterministically.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..faults.injection import (
    POINT_SHARD_WORKER,
    FaultInjector,
    FaultRule,
    activate,
    active_injector,
    trip,
)

__all__ = ["ProcessScatterPool", "DEFAULT_IPC_TIMEOUT_S"]

#: How long the parent waits for one worker reply before declaring the
#: shard unreachable (generous: a cold worker decodes its shard first).
DEFAULT_IPC_TIMEOUT_S = 60.0

#: A hit crossing the IPC boundary: ``(doc_id, score, field_scores)``.
HitTuple = Tuple[str, float, Dict[str, float]]


# -- worker-process side -------------------------------------------------------
#
# Everything below the fold runs inside a spawned worker.  State lives in
# process-global module variables (re-initialized per spawn by
# `_worker_init`), never in pickled closures.

_WORKER_DIR: Optional[Path] = None
_WORKER_MANIFEST: Optional[Dict[str, Any]] = None
_WORKER_STATS: Optional[Any] = None
_WORKER_SHARDS: Dict[int, Any] = {}


def _worker_init(corpus_dir: str, rules: Sequence[FaultRule]) -> None:  # pragma: no cover - runs in spawned workers
    """Per-spawn initializer: read the manifest, arm shipped fault rules.

    Runs once in each fresh worker process.  Only the manifest and stats
    are read here — shard snapshots decode lazily on the first request
    for their ordinal, so a pool over N shards with W < N workers never
    pays for shards a worker is not asked about.
    """
    global _WORKER_DIR, _WORKER_MANIFEST, _WORKER_STATS
    from .builder import load_stats, read_manifest

    _WORKER_DIR = Path(corpus_dir)
    _WORKER_MANIFEST = read_manifest(_WORKER_DIR)
    _WORKER_STATS = load_stats(_WORKER_DIR)
    _WORKER_SHARDS.clear()
    if rules and active_injector() is None:
        activate(FaultInjector(list(rules)))


def _worker_shard(ordinal: int) -> Any:  # pragma: no cover - runs in spawned workers
    """The worker's own view of shard ``ordinal`` (opened on first use)."""
    shard = _WORKER_SHARDS.get(ordinal)
    if shard is None:
        if _WORKER_DIR is None or _WORKER_MANIFEST is None:
            raise RuntimeError("worker used before _worker_init ran")
        from .binfmt import LazyShard
        from .builder import INDEX_VERSION, IndexedCorpus, _load_shard

        entry = _WORKER_MANIFEST["shards"][ordinal]
        if _WORKER_MANIFEST["version"] == INDEX_VERSION:
            shard = LazyShard(
                _WORKER_DIR / entry["dir"], entry, _WORKER_STATS,
                _WORKER_MANIFEST["boosts"],
            )
        else:
            index, store = _load_shard(
                _WORKER_DIR / entry["dir"],
                version=_WORKER_MANIFEST["version"], entry=entry,
            )
            shard = IndexedCorpus(
                index=index, store=store, stats=_WORKER_STATS
            )
        _WORKER_SHARDS[ordinal] = shard
    return shard


def _worker_df(ordinal: int, terms: Sequence[str]) -> Dict[str, int]:  # pragma: no cover - runs in spawned workers
    """Per-term local document frequencies of one shard (worker side)."""
    trip(POINT_SHARD_WORKER, key=str(ordinal))
    index = _worker_shard(ordinal).index
    return {term: index.document_frequency(term) for term in terms}


def _worker_search(  # pragma: no cover - runs in spawned workers
    ordinal: int,
    terms: Sequence[str],
    limit: int,
    fields: Optional[List[str]],
    idf_values: Dict[str, float],
    with_field_scores: bool,
) -> List[HitTuple]:
    """One shard's ranked probe, scored with the parent's IDF values.

    The explicit ``idf_values`` lookup (not a recomputation) is the
    bit-identity seam: the worker multiplies by the exact floats the
    serial path would.
    """
    trip(POINT_SHARD_WORKER, key=str(ordinal))
    index = _worker_shard(ordinal).index

    def idf(term: str) -> float:
        return idf_values[term]

    hits = index.search(
        terms, limit=limit, fields=fields, idf=idf,
        with_field_scores=with_field_scores,
    )
    return [(h.doc_id, h.score, h.field_scores) for h in hits]


def _worker_docs_all(  # pragma: no cover - runs in spawned workers
    ordinal: int, terms: Sequence[str], fields: List[str]
) -> List[str]:
    """One shard's conjunctive containment probe (worker side).

    Returns a sorted list (not a set) so the bytes on the pipe are
    deterministic; the parent unions shard results anyway.
    """
    trip(POINT_SHARD_WORKER, key=str(ordinal))
    docs = _worker_shard(ordinal).index.docs_containing_all(terms, fields)
    return sorted(docs)


# -- parent-process side -------------------------------------------------------


class ProcessScatterPool:
    """A persistent, self-healing pool of shard-probe worker processes.

    The executor builds lazily on first use and is *discarded* (never
    repaired in place) on a crash or timeout, so the next scatter attempt
    — typically the health tracker's half-open reopen probe — respawns
    fresh workers.  All public methods block for at most ``timeout_s``
    per request and raise the underlying failure through to the caller's
    failure-domain accounting.

    Fault rules armed at the ``shard.worker`` point on the parent's
    active injector are snapshotted into each (re)spawned pool, giving
    deterministic in-worker faulting; keyed rules (key = shard ordinal)
    stay deterministic regardless of which worker serves the ordinal.
    """

    def __init__(
        self,
        corpus_dir: Union[str, Path],
        workers: int,
        timeout_s: float = DEFAULT_IPC_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise ValueError("a ProcessScatterPool needs workers >= 1")
        self._dir = str(corpus_dir)
        self._workers = workers
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._spawns = 0

    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    @property
    def spawns(self) -> int:
        """How many times a pool has been (re)built — respawn telemetry."""
        return self._spawns

    def _shard_worker_rules(self) -> List[FaultRule]:
        """``shard.worker`` rules to ship to freshly spawned workers."""
        injector = active_injector()
        if injector is None:
            return []
        return [
            rule for rule in injector.rules()
            if rule.point == POINT_SHARD_WORKER
        ]

    def _ensure(self) -> ProcessPoolExecutor:
        """The live executor, building (= spawning workers) if needed."""
        with self._lock:
            executor = self._executor
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_worker_init,
                    initargs=(self._dir, tuple(self._shard_worker_rules())),
                )
                self._executor = executor
                self._spawns += 1
            return executor

    def _discard(self, executor: ProcessPoolExecutor) -> None:
        """Drop a broken/timed-out executor so the next call respawns."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False, cancel_futures=True)

    def _run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Submit one request and wait for its reply (bounded).

        A broken pool or a timeout discards the executor and re-raises —
        the caller's health tracker records the failure and its reopen
        probe triggers the respawn.  An exception *returned* by a healthy
        worker (e.g. an :class:`~repro.faults.injection.InjectedFault`)
        re-raises without discarding: the process is fine, the probe
        failed.
        """
        executor = self._ensure()
        try:
            future = executor.submit(fn, *args)
            return future.result(timeout=self._timeout_s)
        except (BrokenProcessPool, FutureTimeoutError):
            self._discard(executor)
            raise

    # -- scatter requests ------------------------------------------------------

    def document_frequencies(
        self, ordinal: int, terms: Sequence[str]
    ) -> Dict[str, int]:
        """Shard ``ordinal``'s local df for each term, over IPC."""
        result = self._run(_worker_df, ordinal, list(terms))
        return dict(result)

    def search(
        self,
        ordinal: int,
        terms: Sequence[str],
        limit: int,
        fields: Optional[List[str]],
        idf_values: Dict[str, float],
        with_field_scores: bool,
    ) -> List[HitTuple]:
        """Shard ``ordinal``'s local top-``limit``, scored with
        ``idf_values``, over IPC."""
        result = self._run(
            _worker_search, ordinal, list(terms), limit, fields,
            dict(idf_values), with_field_scores,
        )
        return list(result)

    def docs_containing_all(
        self, ordinal: int, terms: Sequence[str], fields: List[str]
    ) -> List[str]:
        """Shard ``ordinal``'s local conjunctive containment, over IPC."""
        result = self._run(
            _worker_docs_all, ordinal, list(terms), list(fields)
        )
        return list(result)

    # -- lifecycle -------------------------------------------------------------

    def worker_pids(self) -> List[int]:
        """Live worker process ids (chaos tests kill these for real)."""
        with self._lock:
            executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return sorted(processes.keys())

    def close(self) -> None:
        """Shut the pool down (idempotent); a later scatter respawns it."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "live" if self._executor is not None else "idle"
        return (
            f"ProcessScatterPool({self._dir!r}, workers={self._workers}, "
            f"{state}, spawns={self._spawns})"
        )
