"""The corpus backend contract shared by monolithic and sharded indexes.

``two_stage_probe`` (Section 2.2.1) and the PMI² containment probes
(Section 3.2.3) only need five operations from a corpus: disjunctive ranked
retrieval, conjunctive containment, table reads, and the corpus-global
:class:`~repro.text.tfidf.TermStatistics` that keeps every similarity's IDF
weights comparable.  :class:`CorpusProtocol` names that contract so the
pipeline is written once and runs unchanged against
:class:`~repro.index.builder.IndexedCorpus` (one in-memory index) or
:class:`~repro.index.sharded.ShardedCorpus` (hash-partitioned scatter-gather
over N of them).

:class:`ShardProtocol` is the narrower *per-shard* contract
``ShardedCorpus`` consumes: the eager
:class:`~repro.index.builder.IndexedCorpus` and the mmap-backed
:class:`~repro.index.binfmt.LazyShard` (version-3 snapshots, materialized
on first probe) both satisfy it.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    runtime_checkable,
)

from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from .inverted import InvertedIndex, SearchHit
from .store import TableStore

__all__ = ["CorpusProtocol", "ShardProtocol"]


@runtime_checkable
class ShardProtocol(Protocol):
    """What one shard must provide to sit inside a ``ShardedCorpus``.

    ``num_tables`` and ``boosts`` must be answerable from cheap metadata
    (a lazy shard serves them straight from the manifest); ``index`` and
    ``store`` may materialize on first access.  ``stats`` is the *shared
    corpus-global* statistics object, same as on the corpus itself.
    """

    #: Corpus-global document-frequency table (shared across shards).
    stats: TermStatistics

    @property
    def num_tables(self) -> int:
        """Number of tables in this shard (cheap; no materialization)."""
        ...

    @property
    def boosts(self) -> Dict[str, float]:
        """Field boosts of this shard's index (cheap; no materialization)."""
        ...

    @property
    def index(self) -> InvertedIndex:
        """The shard's inverted index (may materialize on first access)."""
        ...

    @property
    def store(self) -> TableStore:
        """The shard's table store (may materialize on first access)."""
        ...


@runtime_checkable
class CorpusProtocol(Protocol):
    """What a corpus backend must provide to serve the query pipeline.

    Code written against this contract runs unchanged on every backend —
    monolithic, sharded, or journaled::

        def candidate_ids(corpus: CorpusProtocol, tokens):
            hits = corpus.search(tokens, limit=60)
            return [h.doc_id for h in hits]

        candidate_ids(build_corpus_index(tables), tokens)       # monolithic
        candidate_ids(build_sharded_corpus(tables, 4), tokens)  # sharded
        candidate_ids(load_corpus("corpus-dir"), tokens)        # journaled
    """

    #: Corpus-global document-frequency table.  Both backends expose the
    #: statistics of the *whole* corpus here (never of one shard), which is
    #: the invariant that keeps scores backend-invariant.
    stats: TermStatistics

    @property
    def num_tables(self) -> int:
        """Number of tables in the corpus."""
        ...

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        with_field_scores: bool = False,
    ) -> List[SearchHit]:
        """Disjunctive boosted TF-IDF retrieval: top ``limit`` hits.

        ``with_field_scores`` opts in to the diagnostic per-field score
        breakdown on every hit; the serving hot path leaves it off.
        """
        ...

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Conjunctive containment probe: ids of tables holding every term."""
        ...

    def get_table(self, table_id: str) -> WebTable:
        """Fetch one table by id (KeyError if absent)."""
        ...

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        ...
