"""``repro.index.sharded`` — hash-partitioned corpus with scatter-gather probes.

The paper's engine fronts a 25M-table crawl; one in-memory
:class:`~repro.index.builder.IndexedCorpus` rebuilt per process start does
not scale to that.  :class:`ShardedCorpus` partitions tables across N
independent ``IndexedCorpus`` shards by a stable hash of the table id and
answers the pipeline's probes by scatter-gather:

- **Disjunctive ranked probe** (:meth:`ShardedCorpus.search`): every shard
  retrieves its local top-``limit`` with the *corpus-global* IDF, then a
  global merge re-sorts by ``(-score, doc_id)`` and truncates.  Because tf,
  field length, and field boost are per-document quantities and the IDF is
  computed from corpus-global document frequencies (each document lives in
  exactly one shard, so global df is the sum of shard dfs), per-document
  scores are bit-identical to the monolithic index — the merge reproduces
  single-index ranking exactly, not approximately.
- **Conjunctive containment probe** (:meth:`docs_containing_all`): each
  shard intersects locally; the union over shards is the global conjunction
  (again because shards partition the documents).

``probe_workers > 1`` fans the scatter across a persistent thread pool —
worthwhile once shards are large or back disk/remote storage; for small
in-memory shards the serial loop (the default) is faster than thread
dispatch.  ``parallel_mode="process"`` goes further and routes shard
probes to a :class:`~repro.index.procpool.ProcessScatterPool` of worker
processes (each opening its own shard from the persisted corpus
directory), escaping the GIL for the CPU-bound scoring loops; the gather
merge, corpus-global IDF, and coverage accounting stay in the parent, so
rankings remain bit-identical to serial execution.

Persistence is a directory (see DESIGN.md): ``manifest.json`` +
``stats.json`` (the shared :class:`~repro.text.tfidf.TermStatistics`) +
one ``shard-NNNN/`` per shard holding an index snapshot (``index.bin`` for
version-3 manifests, ``index.json`` for version 2) and the table store
(``tables.jsonl``).  :func:`load_corpus` opens either a monolithic or a
sharded layout in O(read) — and a version-3 *sharded* layout in
O(manifest): its shards load as mmap-backed
:class:`~repro.index.binfmt.LazyShard` objects whose arrays materialize on
first probe, not at open.
"""

from __future__ import annotations

import heapq
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    TypeVar,
    Union,
)

from ..core.features import BoundedCache, STATS_CACHE_SIZE
from ..faults.health import Coverage, HealthPolicy, HealthTracker
from ..faults.injection import POINT_SHARD_SEARCH, trip
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from .binfmt import LazyShard
from .builder import (
    DEFAULT_INDEX_FORMAT,
    INDEX_VERSION,
    IndexedCorpus,
    _index_one,
    _load_shard,
    _refuse_unfolded_journal,
    MANIFEST_FILE,
    load_stats,
    read_manifest,
    save_corpus_dir,
)
from .inverted import FIELD_BOOSTS, InvertedIndex, SearchHit, lucene_idf
from .procpool import ProcessScatterPool
from .protocol import ShardProtocol
from .store import TableStore

if TYPE_CHECKING:
    from .protocol import CorpusProtocol

__all__ = [
    "PARALLEL_MODES",
    "ShardedCorpus",
    "build_sharded_corpus",
    "load_corpus",
    "shard_of",
]

T = TypeVar("T")

#: How a :class:`ShardedCorpus` executes its scatter: ``"serial"`` runs
#: probes inline (no pool, even with ``probe_workers > 1``), ``"thread"``
#: fans out over a thread pool when ``probe_workers > 1``, ``"process"``
#: routes probes to a :class:`~repro.index.procpool.ProcessScatterPool`
#: of worker processes (requires a persisted corpus directory).
PARALLEL_MODES = ("serial", "thread", "process")


def shard_of(table_id: str, num_shards: int) -> int:
    """Stable shard assignment for a table id.

    CRC32 (not Python's salted ``hash``) so the partition is identical
    across processes, platforms, and persisted corpora.
    """
    return zlib.crc32(table_id.encode()) % num_shards


class ShardedCorpus:
    """N :class:`IndexedCorpus` shards behind one ``CorpusProtocol`` front.

    Every shard's ``stats`` attribute is the *shared corpus-global*
    :class:`TermStatistics`, and every probe scores with the corpus-global
    IDF — the invariant that makes rankings shard-invariant::

        from repro.index import build_sharded_corpus, load_corpus

        sharded = build_sharded_corpus(tables, num_shards=4)
        hits = sharded.search(["country", "currency"], limit=20)
        sharded.save("corpus-dir")              # manifest + per-shard files
        reloaded = load_corpus("corpus-dir")    # O(read), journal-aware
    """

    def __init__(
        self,
        shards: Sequence[ShardProtocol],
        stats: TermStatistics,
        probe_workers: int = 1,
        validate: bool = True,
        health: Optional[HealthPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        parallel_mode: str = "thread",
        corpus_path: Optional[Path] = None,
    ) -> None:
        if not shards:
            raise ValueError("a ShardedCorpus needs at least one shard")
        if probe_workers < 1:
            raise ValueError("probe_workers must be >= 1")
        if parallel_mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel_mode {parallel_mode!r}; expected one of "
                f"{PARALLEL_MODES}"
            )
        if parallel_mode == "process" and corpus_path is None:
            raise ValueError(
                'parallel_mode="process" needs a persisted corpus '
                "directory — load one with ShardedCorpus.load()/"
                "load_corpus() so worker processes can open their own "
                "shards (in-memory shards cannot cross the process "
                "boundary)"
            )
        self.shards: List[ShardProtocol] = list(shards)
        # Table access routes by shard_of(), so the shards MUST be the
        # CRC32 partition — arbitrary shard lists (e.g. two independently
        # built corpora glued together) would make get_table/get_many miss
        # silently.  Fail loudly at construction instead.  The trusted
        # paths (build_sharded_corpus, load) pass validate=False: their
        # partition is correct by construction, and the O(num_tables) check
        # would defeat the O(read) load this module exists to provide.
        if validate:
            for si, shard in enumerate(self.shards):
                for table_id in shard.store.ids():
                    expected = shard_of(table_id, len(self.shards))
                    if expected != si:
                        raise ValueError(
                            f"table {table_id!r} is in shard {si} but hashes "
                            f"to shard {expected}; shards must follow "
                            "shard_of() (use build_sharded_corpus to "
                            "partition)"
                        )
        self.stats = stats
        self.probe_workers = probe_workers
        #: Scatter execution mode (one of :data:`PARALLEL_MODES`).
        self.parallel_mode = parallel_mode
        self._corpus_path = corpus_path
        #: The policy this corpus was constructed with (``None`` = strict
        #: all-or-nothing scatter, the pre-failure-domain behaviour) —
        #: kept so compaction can rebuild an equivalent corpus.
        self.health_policy = health
        self._clock = clock
        #: Per-shard failure domains.  ``None`` (the default) preserves
        #: the exact strict scatter path: any shard error raises through,
        #: rankings stay bit-identical, and no health bookkeeping runs.
        self._health: Optional[HealthTracker] = (
            HealthTracker(len(self.shards), health, clock=clock)
            if health is not None else None
        )
        self._num_tables = sum(s.num_tables for s in self.shards)
        self._idf_cache: BoundedCache[str, float] = BoundedCache(
            STATS_CACHE_SIZE
        )
        # Created eagerly (not lazily) so concurrent first probes — e.g.
        # WWTService.answer_batch fanning out over this corpus — can't race
        # a lazy init and leak a second pool.  In process mode the thread
        # pool stays: its threads only *dispatch* IPC requests and block on
        # replies (GIL released), overlapping the workers' compute.
        self._executor: Optional[ThreadPoolExecutor] = None
        if (
            parallel_mode != "serial"
            and self.probe_workers > 1
            and self.num_shards > 1
        ):
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.probe_workers, self.num_shards),
                thread_name_prefix="shard-probe",
            )
        # The worker-process pool (process mode only).  Its executor
        # spawns lazily on the first scatter and respawns after a crash.
        self._procpool: Optional[ProcessScatterPool] = None
        if parallel_mode == "process" and corpus_path is not None:
            self._procpool = ProcessScatterPool(
                corpus_path,
                workers=min(self.probe_workers, self.num_shards),
            )

    # -- shape -----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def num_tables(self) -> int:
        """Number of tables across all shards."""
        return self._num_tables

    @property
    def boosts(self) -> Dict[str, float]:
        """Field boosts shared by every shard's index (copy).

        Served from shard 0's cheap metadata surface — reading it never
        materializes a lazy shard.
        """
        return dict(self.shards[0].boosts)

    def shard_sizes(self) -> List[int]:
        """Per-shard table counts (partition balance diagnostics)."""
        return [s.num_tables for s in self.shards]

    # -- scatter-gather machinery ----------------------------------------------

    def _run_jobs(self, jobs: Sequence[Callable[[], T]]) -> List[T]:
        """Run ``jobs`` (one per shard, in shard order) and gather results.

        Serial without a pool.  With a pool, the executor reference is
        snapshotted once so a concurrent :meth:`close` cannot null it
        mid-scatter, and submission failure falls back cleanly: futures
        already submitted still complete (``shutdown(wait=True)`` waits
        for them), the remainder runs serially on this thread, and the
        gathered order is preserved.
        """
        executor = self._executor
        if executor is None:
            return [job() for job in jobs]
        futures: List[Future[T]] = []
        try:
            for job in jobs:
                futures.append(executor.submit(job))
        except RuntimeError:  # reprolint: disable=R008 -- close() raced this scatter; the serial fallback below completes the probe, so nothing is lost and there is no failure to record
            # "cannot schedule new futures after shutdown": close() ran
            # between submits.  Finish the remaining shards serially.
            tail = [job() for job in jobs[len(futures):]]
            return [future.result() for future in futures] + tail
        return [future.result() for future in futures]

    def _map_shards(self, fn: Callable[[ShardProtocol], T]) -> List[T]:
        """Apply ``fn`` to every shard, in shard order (all-or-nothing)."""
        return self._run_jobs([partial(fn, shard) for shard in self.shards])

    def _probe_jobs(
        self, fn: Callable[[int, ShardProtocol], T], point: str
    ) -> List[Callable[[], T]]:
        """Per-shard strict probe jobs, each guarded by fault point ``point``.

        ``fn`` receives ``(ordinal, shard)`` — local probes use the shard,
        process-mode probes use the ordinal to address the worker pool.
        """

        def job(si: int, shard: ShardProtocol) -> T:
            trip(point, key=str(si))
            return fn(si, shard)

        return [partial(job, si, shard) for si, shard in enumerate(self.shards)]

    def _scatter_health(
        self,
        tracker: HealthTracker,
        fn: Callable[[int, ShardProtocol], T],
        point: str,
    ) -> List[Optional[T]]:
        """Health-gated scatter: per-shard result, or ``None`` for a shard
        that failed this probe or is sitting out a backoff/quarantine
        window.  Every outcome is recorded to the tracker, which is what
        drives the retry → quarantine → reopen lifecycle.
        """

        def attempt(si: int, shard: ShardProtocol) -> Optional[T]:
            if not tracker.available(si):
                return None
            try:
                trip(point, key=str(si))
                result = fn(si, shard)
            except Exception as exc:
                tracker.record_failure(si, exc)
                return None
            tracker.record_success(si)
            return result

        return self._run_jobs(
            [partial(attempt, si, shard) for si, shard in enumerate(self.shards)]
        )

    def global_idf(self, term: str) -> float:
        """Lucene-classic IDF from corpus-global document frequencies.

        Same :func:`~repro.index.inverted.lucene_idf` expression as
        :meth:`InvertedIndex.idf`, evaluated over the whole corpus (each
        document lives in exactly one shard, so global df is the sum of
        shard dfs); cached because the posting structure is immutable
        after construction.

        With failure domains enabled and any shard unhealthy, the df is
        summed over *reachable* shards only — the IDF the partial answer
        is actually scored with — and bypasses the cache, so values
        computed under partial visibility never leak into full-coverage
        probes (or vice versa).

        In process mode the df probes route to the worker pool (one IPC
        round per shard) so the parent never materializes shard indexes;
        see :meth:`_global_idfs` for the batched form the scatter uses.
        """
        if self._procpool is not None:
            return self._global_idfs([term])[term]
        tracker = self._health
        if tracker is not None and not tracker.all_healthy():
            df = 0
            for si, shard in enumerate(self.shards):
                if not tracker.available(si):
                    continue
                try:
                    df += shard.index.document_frequency(term)
                except Exception as exc:
                    tracker.record_failure(si, exc)
            return lucene_idf(self._num_tables, df)
        cached = self._idf_cache.get(term)
        if cached is None:
            df = sum(s.index.document_frequency(term) for s in self.shards)
            cached = lucene_idf(self._num_tables, df)
            self._idf_cache.put(term, cached)
        return cached

    def _global_idfs(self, terms: Sequence[str]) -> Dict[str, float]:
        """Corpus-global IDF for every term, batched over the worker pool.

        Phase one of the process-mode scatter: one
        ``document_frequencies`` request per shard covers *all* uncached
        terms, the parent sums the per-shard dfs (each document lives in
        exactly one shard) and applies :func:`lucene_idf` — the same
        expression, over the same counts, as the serial path, which is
        what lets phase two ship explicit ``{term: idf}`` floats to the
        workers and stay bit-identical.

        Mirrors :meth:`global_idf`'s visibility rules: with any shard
        unhealthy (or failing mid-batch), dfs cover reachable shards only
        and nothing is cached.  Without failure domains a worker failure
        raises through — the strict all-or-nothing contract.
        """
        pool = self._procpool
        if pool is None:  # pragma: no cover - callers gate on the pool
            raise RuntimeError("_global_idfs needs process parallel mode")
        unique = list(dict.fromkeys(terms))
        tracker = self._health
        degraded = tracker is not None and not tracker.all_healthy()
        out: Dict[str, float] = {}
        missing: List[str] = []
        if degraded:
            missing = unique
        else:
            for term in unique:
                cached = self._idf_cache.get(term)
                if cached is None:
                    missing.append(term)
                else:
                    out[term] = cached
        if not missing:
            return out
        if tracker is None:
            counts = self._run_jobs([
                partial(pool.document_frequencies, si, missing)
                for si in range(self.num_shards)
            ])
            for term in missing:
                idf = lucene_idf(
                    self._num_tables, sum(c[term] for c in counts)
                )
                self._idf_cache.put(term, idf)
                out[term] = idf
            return out

        def attempt(si: int) -> Optional[Dict[str, int]]:
            if not tracker.available(si):
                return None
            try:
                result = pool.document_frequencies(si, missing)
            except Exception as exc:
                tracker.record_failure(si, exc)
                return None
            tracker.record_success(si)
            return result

        gathered = self._run_jobs(
            [partial(attempt, si) for si in range(self.num_shards)]
        )
        reached = [c for c in gathered if c is not None]
        partial_visibility = degraded or len(reached) < self.num_shards
        for term in missing:
            idf = lucene_idf(
                self._num_tables, sum(c[term] for c in reached)
            )
            out[term] = idf
            if not partial_visibility:
                self._idf_cache.put(term, idf)
        return out

    # -- CorpusProtocol --------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        with_field_scores: bool = False,
    ) -> List[SearchHit]:
        """Parallel scatter-gather disjunctive retrieval.

        Each shard returns its local top-``limit`` scored with
        :meth:`global_idf`; the gather concatenates, selects the global
        top-``limit`` by ``(-score, doc_id)`` with a bounded heap, and
        returns it.  Any document in the global top-``limit`` is
        necessarily in its own shard's top-``limit`` (a shard holds a
        subset of its competitors), so the merge equals the monolithic
        ranking.  ``with_field_scores`` requests the diagnostic per-field
        breakdown on every hit (off on the hot path).

        With failure domains enabled (``health=`` at construction), a
        failing or backing-off shard contributes nothing instead of
        raising — the merge covers the reachable shards and
        :meth:`coverage` quantifies what was missed.  Without them, any
        shard error raises through (the strict pre-failure-domain
        contract).
        """
        if self._num_tables == 0:
            return []
        field_list = list(fields) if fields is not None else None

        pool = self._procpool
        if pool is not None:
            # Two-phase process scatter: resolve every term's corpus-
            # global IDF first (batched df scatter), then ship the
            # explicit floats with the search requests — workers score
            # with exactly the values the serial path would.
            idf_values = self._global_idfs(terms)

            def probe(si: int, s: ShardProtocol) -> List[SearchHit]:
                return [
                    SearchHit(doc_id, score, field_scores)
                    for doc_id, score, field_scores in pool.search(
                        si, terms, limit, field_list, idf_values,
                        with_field_scores,
                    )
                ]
        else:

            def probe(si: int, s: ShardProtocol) -> List[SearchHit]:
                return s.index.search(
                    terms, limit=limit, fields=field_list,
                    idf=self.global_idf,
                    with_field_scores=with_field_scores,
                )

        tracker = self._health
        if tracker is None:
            results = self._run_jobs(
                self._probe_jobs(probe, POINT_SHARD_SEARCH)
            )
        else:
            results = [
                hits
                for hits in self._scatter_health(
                    tracker, probe, POINT_SHARD_SEARCH
                )
                if hits is not None
            ]
        merged = [hit for hits in results for hit in hits]
        return heapq.nsmallest(
            limit, merged, key=lambda h: (-h.score, h.doc_id)
        )

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Scatter-gather conjunctive containment probe (PMI²'s H and B sets)."""
        field_list = list(fields)

        pool = self._procpool
        if pool is not None:

            def probe(si: int, s: ShardProtocol) -> Set[str]:
                return set(pool.docs_containing_all(si, terms, field_list))
        else:

            def probe(si: int, s: ShardProtocol) -> Set[str]:
                return s.index.docs_containing_all(terms, field_list)

        tracker = self._health
        if tracker is None:
            results = self._run_jobs(
                self._probe_jobs(probe, POINT_SHARD_SEARCH)
            )
        else:
            results = [
                docs
                for docs in self._scatter_health(
                    tracker, probe, POINT_SHARD_SEARCH
                )
                if docs is not None
            ]
        out: Set[str] = set()
        for docs in results:
            out.update(docs)
        return out

    def get_table(self, table_id: str) -> WebTable:
        """Fetch one table by id — routed straight to its shard."""
        return self.shards[shard_of(table_id, self.num_shards)].store.get(table_id)

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns.

        With failure domains enabled, tables on a failing or backing-off
        shard are skipped (recorded to the tracker) rather than raising —
        the same partial-result contract as :meth:`search`.
        """
        tracker = self._health
        out: List[WebTable] = []
        if tracker is None:
            for table_id in table_ids:
                store = self.shards[shard_of(table_id, self.num_shards)].store
                if table_id in store:
                    out.append(store.get(table_id))
            return out
        for table_id in table_ids:
            si = shard_of(table_id, self.num_shards)
            if not tracker.available(si):
                continue
            try:
                store = self.shards[si].store
                if table_id in store:
                    out.append(store.get(table_id))
            except Exception as exc:
                tracker.record_failure(si, exc)
                continue
            tracker.record_success(si)
        return out

    def ids(self) -> List[str]:
        """All table ids, shard-major (shard 0's insertion order first)."""
        return [i for shard in self.shards for i in shard.store.ids()]

    def __contains__(self, table_id: str) -> bool:
        return table_id in self.shards[shard_of(table_id, self.num_shards)].store

    def __iter__(self) -> Iterator[str]:
        for shard in self.shards:
            yield from shard.store

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedCorpus({self.num_shards} shards, "
            f"{self.num_tables} tables, workers={self.probe_workers}, "
            f"mode={self.parallel_mode})"
        )

    # -- failure domains -------------------------------------------------------

    def coverage(self) -> Coverage:
        """How much of the corpus a probe routed right now reaches.

        Without failure domains this is always the full-coverage record.
        With them, reachability reflects the tracker's *current* health
        states — a shard that failed during the probe just described was
        marked unhealthy by that very failure, so reading coverage right
        after a probe describes that probe accurately.
        """
        tracker = self._health
        if tracker is None:
            return Coverage.full(self.num_shards, self._num_tables)
        return tracker.coverage(self.shard_sizes())

    def health_snapshot(self) -> Optional[List[Dict[str, Any]]]:
        """Per-shard health diagnostics (``None`` without failure domains)."""
        tracker = self._health
        return tracker.snapshot() if tracker is not None else None

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down the scatter pools (idempotent).

        Long-lived processes that cycle through corpora (benchmark sweeps,
        index reloads) should close discarded instances; probes after
        ``close`` fall back to the serial scatter path.  The executor
        reference is cleared *before* the shutdown so scatters starting
        mid-close go serial, while in-flight scatters hold their own
        snapshot of the pool and are waited for.  In process mode the
        worker pool shuts down too; a probe arriving after ``close``
        would respawn it, so close only discarded corpora.
        """
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)
        pool = self._procpool
        if pool is not None:
            pool.close()

    def __enter__(self) -> ShardedCorpus:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- persistence -----------------------------------------------------------

    def save(
        self,
        path: Union[str, Path],
        index_format: str = DEFAULT_INDEX_FORMAT,
    ) -> Path:
        """Persist to a directory: manifest + shared stats + per-shard files.

        Same writer as ``IndexedCorpus.save``
        (:func:`~repro.index.builder.save_corpus_dir`), so the two kinds
        cannot drift apart on disk.  The write is crash-safe (temp dir +
        swap), which also means a re-save with a different shard count
        cannot leave stale shard directories behind.  ``index_format``
        selects the shard snapshot format (``"bin"`` by default); saving
        necessarily materializes lazy shards.
        """
        return save_corpus_dir(
            path,
            [(shard.index, shard.store) for shard in self.shards],
            self.stats,
            kind="sharded",
            index_format=index_format,
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        probe_workers: int = 1,
        ignore_journal: bool = False,
        health: Optional[HealthPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        parallel_mode: str = "thread",
    ) -> ShardedCorpus:
        """Load a corpus saved by :meth:`save` in O(read) — no re-indexing.

        Snapshot only: refuses directories carrying an unfolded
        write-ahead journal unless ``ignore_journal=True`` (see
        :meth:`IndexedCorpus.load`); :func:`load_corpus` is the journal-
        aware entry point.  ``health`` enables per-shard failure domains
        (see :meth:`search`); ``clock`` injects the tracker's clock.
        ``parallel_mode`` selects the scatter execution (see
        :data:`PARALLEL_MODES`); loading from a persisted directory is
        what makes ``"process"`` possible — worker processes reopen their
        shards from this very path.
        """
        path = Path(path)
        manifest = read_manifest(path)
        if not ignore_journal:
            _refuse_unfolded_journal(path, manifest)
        stats = load_stats(path)
        shards: List[ShardProtocol] = []
        for entry in manifest["shards"]:
            if manifest["version"] == INDEX_VERSION:
                # Version 3: O(manifest) open — the shard's arrays mmap in
                # on first probe, verified against the manifest's recorded
                # byte length and CRC-32 at that point.
                shards.append(
                    LazyShard(
                        path / entry["dir"], entry, stats, manifest["boosts"]
                    )
                )
            else:
                index, store = _load_shard(
                    path / entry["dir"], version=manifest["version"],
                    entry=entry,
                )
                shards.append(
                    IndexedCorpus(index=index, store=store, stats=stats)
                )
        # validate=False: the persisted partition came from shard_of() at
        # build time; re-hashing every id would make load O(num_tables)
        # (and materialize every lazy shard).
        return cls(
            shards=shards, stats=stats, probe_workers=probe_workers,
            validate=False, health=health, clock=clock,
            parallel_mode=parallel_mode, corpus_path=path,
        )


def build_sharded_corpus(
    tables: Iterable[WebTable],
    num_shards: int,
    boosts: Optional[Dict[str, float]] = None,
    probe_workers: int = 1,
) -> ShardedCorpus:
    """Hash-partition ``tables`` across ``num_shards`` indexed shards.

    Documents are analyzed exactly as in the monolithic
    :func:`~repro.index.builder.build_corpus_index`, and the shared
    :class:`TermStatistics` folds tables in input order, so the global
    statistics equal the monolithic build's.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    boosts = boosts or FIELD_BOOSTS
    indexes = [InvertedIndex(boosts) for _ in range(num_shards)]
    stores = [TableStore() for _ in range(num_shards)]
    stats = TermStatistics()
    for table in tables:
        si = shard_of(table.table_id, num_shards)
        _index_one(table, indexes[si], stores[si], stats)
    shards = [
        IndexedCorpus(index=index, store=store, stats=stats)
        for index, store in zip(indexes, stores)
    ]
    # validate=False: the loop above IS the shard_of() partition.
    return ShardedCorpus(
        shards=shards, stats=stats, probe_workers=probe_workers,
        validate=False,
    )


def _restore_backup_if_orphaned(path: Path) -> None:
    """Recover from a crash between the two renames of a save/compaction.

    :func:`~repro.index.builder.save_corpus_dir` swaps directories as
    ``path -> .path.replaced`` then ``tmp -> path``; a kill between the
    renames leaves the corpus alive only as the backup sibling.  A retried
    *save* already restores it — this makes a plain *load* after the crash
    self-healing too.
    """
    backup = path.parent / f".{path.name}.replaced"
    if backup.is_dir() and not (path / MANIFEST_FILE).is_file():
        if path.exists():
            # A half-written non-corpus dir at `path` would block the
            # rename; save_corpus_dir never leaves one (it writes to the
            # temp sibling), so anything here is foreign — keep it and
            # let read_manifest report the problem.
            return
        backup.rename(path)


def load_corpus(
    path: Union[str, Path],
    probe_workers: int = 1,
    mutable: bool = True,
    stats_staleness: int = 0,
    health: Optional[HealthPolicy] = None,
    clock: Optional[Callable[[], float]] = None,
    parallel_mode: str = "thread",
) -> CorpusProtocol:
    """Open a persisted corpus directory, whichever kind it holds.

    The journal-aware entry point, and the one serving processes should
    use::

        from repro.index import load_corpus

        corpus = load_corpus("corpus-dir")       # replays any journal
        corpus.add_tables(new_tables)            # durable live mutation
        corpus.compact()                         # fold into snapshots

    Loads the shard snapshots in O(read), replays any surviving
    write-ahead journal (``repro.index.journal``), and returns a mutable
    :class:`~repro.index.journal.JournaledCorpus` wrapping the snapshot
    backend — an :class:`IndexedCorpus` for ``kind: monolithic`` manifests
    (``probe_workers`` is irrelevant there), a :class:`ShardedCorpus` for
    ``kind: sharded``.  A crash that interrupted a previous save or
    compaction between its two directory renames is healed here by
    restoring the backup sibling.

    ``mutable=False`` returns the bare snapshot backend instead (PR 2
    behaviour); it refuses directories with unfolded journal records
    rather than silently dropping them.  ``stats_staleness`` is forwarded
    to the journaled wrapper (0 = rankings always exact).

    ``health`` enables per-shard failure domains on sharded corpora
    (retry/quarantine lifecycle, partial scatter-gather, coverage — see
    :meth:`ShardedCorpus.search`); monolithic corpora have a single
    failure domain and ignore it.  ``clock`` injects the health
    tracker's clock (tests).

    ``parallel_mode`` selects the sharded scatter execution (see
    :data:`PARALLEL_MODES`); monolithic corpora have nothing to scatter
    and ignore it.  Note the journaled wrapper's *delta-merge* probes
    (only taken while unfolded journal records exist) run in the parent
    regardless of mode; compaction returns queries to the pooled path.
    """
    from .journal import JournaledCorpus

    path = Path(path)
    _restore_backup_if_orphaned(path)
    manifest = read_manifest(path)
    if manifest["kind"] == "monolithic":
        base = IndexedCorpus.load(path, ignore_journal=mutable)
    elif manifest["kind"] == "sharded":
        base = ShardedCorpus.load(
            path, probe_workers=probe_workers, ignore_journal=mutable,
            health=health, clock=clock, parallel_mode=parallel_mode,
        )
    else:
        raise ValueError(f"{path}: unknown corpus kind {manifest['kind']!r}")
    if not mutable:
        return base
    return JournaledCorpus.open(
        path, base, manifest, stats_staleness=stats_staleness
    )
