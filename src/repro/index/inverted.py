"""A fielded inverted index with Lucene-classic scoring.

WWT indexes every extracted table as a document with three text fields —
``header``, ``context``, ``content`` — boosted 2.0 / 1.5 / 1.0 respectively
(Section 2.1).  Query-time candidate retrieval is a disjunctive keyword
probe over all fields (Section 2.2.1); the PMI² feature needs conjunctive
containment probes over specific fields (Section 3.2.3).  This module
provides both on one posting structure.

Scoring follows Lucene's classic TF-IDF similarity:
``score(d) = sum_f boost_f * sum_t sqrt(tf) * idf(t)^2 * norm_f(d)`` with
``idf(t) = 1 + ln(N / (df+1))`` and ``norm_f(d) = 1/sqrt(len_f(d))`` —
close enough to Lucene 3.x (which the paper would have used in 2012) that
ranking behaviour is preserved.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..text.tfidf import TermStatistics
from ..text.tokenize import tokenize

__all__ = ["FIELD_BOOSTS", "SearchHit", "InvertedIndex", "lucene_idf"]

#: Field boosts from Section 2.1.
FIELD_BOOSTS: Dict[str, float] = {"header": 2.0, "context": 1.5, "content": 1.0}


def lucene_idf(num_docs: int, df: int) -> float:
    """Lucene-classic ``idf = 1 + ln(N / (df + 1))``.

    The one shared definition: :meth:`InvertedIndex.idf` evaluates it with
    index-local counts, ``ShardedCorpus.global_idf`` with corpus-global
    counts — keeping them textually identical is what guarantees sharded
    and monolithic rankings stay bit-identical.
    """
    return 1.0 + math.log(num_docs / (df + 1.0))


class SearchHit:
    """One ranked retrieval result."""

    __slots__ = ("doc_id", "score", "field_scores")

    def __init__(self, doc_id: str, score: float, field_scores: Dict[str, float]):
        self.doc_id = doc_id
        self.score = score
        self.field_scores = field_scores

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SearchHit({self.doc_id!r}, {self.score:.3f})"


class InvertedIndex:
    """In-memory fielded inverted index over token streams."""

    def __init__(self, boosts: Optional[Mapping[str, float]] = None) -> None:
        self.boosts: Dict[str, float] = dict(boosts or FIELD_BOOSTS)
        # postings[field][term] -> {doc_id: term frequency}
        self._postings: Dict[str, Dict[str, Dict[str, int]]] = {
            f: defaultdict(dict) for f in self.boosts
        }
        self._field_lengths: Dict[str, Dict[str, int]] = {f: {} for f in self.boosts}
        self._doc_ids: Set[str] = set()

    # -- construction -----------------------------------------------------------

    def add_document(self, doc_id: str, fields: Mapping[str, Sequence[str]]) -> None:
        """Index one document given pre-tokenized field token lists."""
        if doc_id in self._doc_ids:
            raise ValueError(f"duplicate document id {doc_id!r}")
        self._doc_ids.add(doc_id)
        for field, tokens in fields.items():
            if field not in self._postings:
                continue
            counts = Counter(tokens)
            for term, tf in counts.items():
                self._postings[field][term][doc_id] = tf
            self._field_lengths[field][doc_id] = len(tokens)

    def add_text_document(self, doc_id: str, fields: Mapping[str, str]) -> None:
        """Index one document given raw field text (tokenized here)."""
        self.add_document(doc_id, {f: tokenize(t) for f, t in fields.items()})

    def remove_document(self, doc_id: str, fields: Mapping[str, Sequence[str]]) -> None:
        """Un-index one document, given the same token lists it was added with.

        The caller supplies the fields (re-analyzing the document is
        cheaper than keeping a forward index here) and the posting entries
        are deleted term by term — O(document), not O(index).  Used by the
        journal's in-memory delta; persisted shard snapshots stay
        append-only by design (deletes are folded at compaction).
        """
        if doc_id not in self._doc_ids:
            raise KeyError(doc_id)
        self._doc_ids.discard(doc_id)
        for field, tokens in fields.items():
            if field not in self._postings:
                continue
            for term in set(tokens):
                postings = self._postings[field].get(term)
                if postings is not None:
                    postings.pop(doc_id, None)
                    if not postings:
                        del self._postings[field][term]
            self._field_lengths[field].pop(doc_id, None)

    # -- statistics -----------------------------------------------------------

    @property
    def num_docs(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_ids)

    def document_frequency(self, term: str, fields: Optional[Iterable[str]] = None) -> int:
        """Number of documents containing ``term`` in any of ``fields``."""
        docs: Set[str] = set()
        for field in fields or self._postings:
            docs.update(self._postings[field].get(term, ()))
        return len(docs)

    def idf(self, term: str) -> float:
        """Lucene-classic idf across all fields."""
        return lucene_idf(self.num_docs, self.document_frequency(term))

    def term_statistics(self) -> TermStatistics:
        """Export corpus-wide document frequencies as :class:`TermStatistics`.

        Every downstream TF-IDF similarity (SegSim, Cover, column content)
        draws its IDF weights from this one table so scores are comparable.
        """
        df: Dict[str, Set[str]] = defaultdict(set)
        for field, terms in self._postings.items():
            for term, postings in terms.items():
                df[term].update(postings)
        stats = TermStatistics()
        # Reconstruct through the public API: one synthetic doc per real doc
        # would be wasteful; instead fill internals via from_dict for exactness.
        return TermStatistics.from_dict(
            {"num_docs": self.num_docs, "df": {t: len(d) for t, d in df.items()}}
        )

    # -- retrieval -----------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        idf: Optional[Callable[[str], float]] = None,
    ) -> List[SearchHit]:
        """Disjunctive (OR) boosted TF-IDF retrieval.

        ``terms`` should already be analyzed (lower-case tokens); duplicates
        are collapsed.  Returns at most ``limit`` hits, best first, ties
        broken by doc id for determinism.

        ``idf`` overrides the per-term IDF (default: this index's own
        :meth:`idf`).  A sharded corpus passes a corpus-global IDF here so
        every shard scores documents exactly as one monolithic index would —
        tf, field length, and boost are per-document quantities, so a global
        IDF is the only ingredient needed for shard-invariant scores.
        """
        if self.num_docs == 0:
            return []
        idf_of = idf if idf is not None else self.idf
        wanted = list(dict.fromkeys(terms))
        scores: Dict[str, float] = defaultdict(float)
        per_field: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for field in fields or self._postings:
            boost = self.boosts.get(field, 1.0)
            lengths = self._field_lengths[field]
            for term in wanted:
                postings = self._postings[field].get(term)
                if not postings:
                    continue
                term_idf = idf_of(term)
                for doc_id, tf in postings.items():
                    norm = 1.0 / math.sqrt(max(lengths.get(doc_id, 1), 1))
                    contrib = boost * math.sqrt(tf) * term_idf * term_idf * norm
                    scores[doc_id] += contrib
                    per_field[doc_id][field] += contrib
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
        return [
            SearchHit(doc_id, score, dict(per_field[doc_id]))
            for doc_id, score in ranked
        ]

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Documents containing *every* term in at least one of ``fields``.

        This is the containment probe PMI² needs: ``H(Q_l)`` uses
        ``fields=("header", "context")``; ``B(cell)`` uses
        ``fields=("content",)``.  An empty term list yields the empty set
        (a contentless probe matches nothing useful).
        """
        wanted = list(dict.fromkeys(terms))
        if not wanted:
            return set()
        field_list = list(fields)
        result: Optional[Set[str]] = None
        for term in wanted:
            docs: Set[str] = set()
            for field in field_list:
                docs.update(self._postings.get(field, {}).get(term, ()))
            result = docs if result is None else (result & docs)
            if not result:
                return set()
        return result or set()

    def postings(self, field: str, term: str) -> Dict[str, int]:
        """Raw posting list (doc -> tf) for inspection and tests."""
        return dict(self._postings.get(field, {}).get(term, {}))

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot of the full posting structure.

        Loading a snapshot (:meth:`from_dict`) restores the index in O(read)
        — no re-tokenization, no re-counting — which is what makes a
        persisted corpus cheap to open.
        """
        return {
            "boosts": dict(self.boosts),
            "doc_ids": sorted(self._doc_ids),
            "field_lengths": {
                f: dict(lengths) for f, lengths in self._field_lengths.items()
            },
            "postings": {
                f: {t: dict(p) for t, p in terms.items()}
                for f, terms in self._postings.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "InvertedIndex":
        """Inverse of :meth:`to_dict`."""
        index = cls(boosts={str(f): float(b) for f, b in dict(data["boosts"]).items()})
        index._doc_ids = set(data["doc_ids"])
        for field, lengths in dict(data["field_lengths"]).items():
            if field in index._field_lengths:
                index._field_lengths[field] = {
                    str(d): int(n) for d, n in dict(lengths).items()
                }
        for field, terms in dict(data["postings"]).items():
            if field in index._postings:
                index._postings[field] = defaultdict(
                    dict,
                    {
                        str(t): {str(d): int(tf) for d, tf in dict(p).items()}
                        for t, p in dict(terms).items()
                    },
                )
        return index
