"""A fielded inverted index with Lucene-classic scoring, compiled for speed.

WWT indexes every extracted table as a document with three text fields —
``header``, ``context``, ``content`` — boosted 2.0 / 1.5 / 1.0 respectively
(Section 2.1).  Query-time candidate retrieval is a disjunctive keyword
probe over all fields (Section 2.2.1); the PMI² feature needs conjunctive
containment probes over specific fields (Section 3.2.3).  This module
provides both on one posting structure.

Scoring follows Lucene's classic TF-IDF similarity:
``score(d) = sum_f boost_f * sum_t sqrt(tf) * idf(t)^2 * norm_f(d)`` with
``idf(t) = 1 + ln(N / (df+1))`` and ``norm_f(d) = 1/sqrt(len_f(d))`` —
close enough to Lucene 3.x (which the paper would have used in 2012) that
ranking behaviour is preserved.

**Compiled layout** (the hot-path engine, see DESIGN.md "Hot-path
engine"): document ids are interned to dense integers at add time, each
``(field, term)`` posting list is a :class:`_PostingList` of parallel
``array`` columns (doc numbers, raw tfs, precomputed ``sqrt(tf)``), and
per-field length norms ``1/sqrt(len)`` live in one dense list indexed by
doc number.  The score loop therefore performs only array reads and float
multiplies — no per-document dict lookups, no ``math.sqrt`` calls — and
top-k selection uses a bounded heap (``heapq.nsmallest``) instead of a
full sort.  Per-term document frequencies are maintained incrementally in
:meth:`InvertedIndex.add_document` / :meth:`InvertedIndex.remove_document`
so :meth:`InvertedIndex.document_frequency`, :meth:`InvertedIndex.idf`,
and :meth:`InvertedIndex.term_statistics` are O(1)/O(vocab) reads instead
of set unions over every posting list.

Every floating-point expression keeps the pre-compilation association
order, and posting arrays preserve the insertion order the old dict
postings had (ordered deletion, not swap-deletion), so scores — not just
rankings — are bit-identical to the naive implementation, which is
retained as :class:`NaiveScorer` for equivalence tests and as the
benchmark baseline.
"""

from __future__ import annotations

import heapq
import math
from array import array
from collections import Counter, defaultdict
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from ..text.tfidf import TermStatistics
from ..text.tokenize import tokenize

__all__ = [
    "FIELD_BOOSTS",
    "SearchHit",
    "InvertedIndex",
    "NaiveScorer",
    "lucene_idf",
]

#: Field boosts from Section 2.1.
FIELD_BOOSTS: Dict[str, float] = {"header": 2.0, "context": 1.5, "content": 1.0}


def lucene_idf(num_docs: int, df: int) -> float:
    """Lucene-classic ``idf = 1 + ln(N / (df + 1))``.

    The one shared definition: :meth:`InvertedIndex.idf` evaluates it with
    index-local counts, ``ShardedCorpus.global_idf`` with corpus-global
    counts — keeping them textually identical is what guarantees sharded
    and monolithic rankings stay bit-identical.
    """
    return 1.0 + math.log(num_docs / (df + 1.0))


class SearchHit:
    """One ranked retrieval result.

    ``field_scores`` is populated only when the search requested the
    per-field breakdown (``with_field_scores=True``) — the serving path
    never needs it, and skipping it keeps one dict write per
    (document, field) pair off the hot loop.
    """

    __slots__ = ("doc_id", "score", "field_scores")

    def __init__(
        self, doc_id: str, score: float, field_scores: Dict[str, float]
    ) -> None:
        self.doc_id = doc_id
        self.score = score
        self.field_scores = field_scores

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SearchHit({self.doc_id!r}, {self.score:.3f})"


class _PostingList:
    """One ``(field, term)`` posting list as parallel array columns.

    ``doc_nums[i]`` is the interned document number, ``tfs[i]`` the raw
    term frequency (kept for persistence and inspection), ``weights[i]``
    the precomputed ``boost * sqrt(tf)`` the score loop reads — the
    field's boost is constant per posting list, and ``boost * sqrt(tf)``
    is exactly the first (left-associative) product of the classic score
    expression, so baking it in at add time changes no bits.  Entries
    stay in insertion order; deletion shifts (``del``) rather than
    swap-deletes so score accumulation order — and therefore the
    accumulated float — is identical to the dict-based implementation
    this replaced.
    """

    __slots__ = ("doc_nums", "tfs", "weights")

    def __init__(self) -> None:
        self.doc_nums = array("q")
        self.tfs = array("q")
        self.weights = array("d")

    def __len__(self) -> int:
        return len(self.doc_nums)

    def append(self, doc_num: int, tf: int, boost: float) -> None:
        """Add one posting entry (amortized O(1))."""
        self.doc_nums.append(doc_num)
        self.tfs.append(tf)
        self.weights.append(boost * math.sqrt(tf))

    def discard(self, doc_num: int) -> bool:
        """Remove ``doc_num``'s entry, preserving order; False if absent."""
        try:
            i = self.doc_nums.index(doc_num)
        except ValueError:  # reprolint: disable=R008 -- absence is this method's documented False return, not an absorbed failure; the caller counts removals
            return False
        del self.doc_nums[i]
        del self.tfs[i]
        del self.weights[i]
        return True


class InvertedIndex:
    """In-memory fielded inverted index over token streams.

    Construction interns every document id to a dense integer and compiles
    postings into parallel arrays (see the module docstring); the public
    surface still speaks document-id strings everywhere.
    """

    def __init__(self, boosts: Optional[Mapping[str, float]] = None) -> None:
        self.boosts: Dict[str, float] = dict(boosts or FIELD_BOOSTS)
        # postings[field][term] -> _PostingList (parallel array columns).
        self._postings: Dict[str, Dict[str, _PostingList]] = {
            f: {} for f in self.boosts
        }
        # Dense per-field norms 1/sqrt(max(len, 1)) indexed by doc number;
        # slots default to 1.0 (the norm of a document without the field).
        self._norms: Dict[str, List[float]] = {f: [] for f in self.boosts}
        # Raw per-field token counts, keyed by doc number (persistence).
        self._lengths: Dict[str, Dict[int, int]] = {f: {} for f in self.boosts}
        # Interning tables: id -> dense number, number -> id (None = removed;
        # numbers are never reused, so a stale posting can't alias a new doc).
        self._doc_nums: Dict[str, int] = {}
        self._doc_names: List[Optional[str]] = []
        # Incremental per-term document frequency across all fields (each
        # document counted once per term), maintained by add/remove.
        self._df: Counter = Counter()
        self._num_docs = 0

    # -- construction -----------------------------------------------------------

    def _intern(self, doc_id: str) -> int:
        """Assign the next dense document number to ``doc_id``."""
        num = len(self._doc_names)
        self._doc_names.append(doc_id)
        self._doc_nums[doc_id] = num
        for norms in self._norms.values():
            norms.append(1.0)
        return num

    def add_document(self, doc_id: str, fields: Mapping[str, Sequence[str]]) -> None:
        """Index one document given pre-tokenized field token lists."""
        if doc_id in self._doc_nums:
            raise ValueError(f"duplicate document id {doc_id!r}")
        num = self._intern(doc_id)
        indexed_terms: Set[str] = set()
        for field, tokens in fields.items():
            postings = self._postings.get(field)
            if postings is None:
                continue
            boost = self.boosts.get(field, 1.0)
            counts = Counter(tokens)
            for term, tf in counts.items():
                plist = postings.get(term)
                if plist is None:
                    plist = postings[term] = _PostingList()
                plist.append(num, tf, boost)
            indexed_terms.update(counts)
            self._lengths[field][num] = len(tokens)
            self._norms[field][num] = 1.0 / math.sqrt(max(len(tokens), 1))
        for term in sorted(indexed_terms):
            self._df[term] += 1
        self._num_docs += 1

    def add_text_document(self, doc_id: str, fields: Mapping[str, str]) -> None:
        """Index one document given raw field text (tokenized here)."""
        self.add_document(doc_id, {f: tokenize(t) for f, t in fields.items()})

    def remove_document(self, doc_id: str, fields: Mapping[str, Sequence[str]]) -> None:
        """Un-index one document, given the same token lists it was added with.

        The caller supplies the fields (re-analyzing the document is
        cheaper than keeping a forward index here) and the posting entries
        are deleted term by term — O(document · posting length), not
        O(index).  Used by the journal's in-memory delta; persisted shard
        snapshots stay append-only by design (deletes are folded at
        compaction).  The df counters are decremented for exactly the
        terms whose posting entries were found and removed, so they stay
        consistent with the posting structure even on caller error.
        """
        num = self._doc_nums.pop(doc_id)  # KeyError(doc_id) when absent
        self._doc_names[num] = None
        removed_terms: Set[str] = set()
        for field, tokens in fields.items():
            postings = self._postings.get(field)
            if postings is None:
                continue
            for term in set(tokens):
                plist = postings.get(term)
                if plist is not None and plist.discard(num):
                    removed_terms.add(term)
                    if not plist:
                        del postings[term]
            self._lengths[field].pop(num, None)
            self._norms[field][num] = 1.0
        for term in removed_terms:
            remaining = self._df[term] - 1
            if remaining > 0:
                self._df[term] = remaining
            else:
                del self._df[term]
        self._num_docs -= 1

    # -- statistics -----------------------------------------------------------

    @property
    def num_docs(self) -> int:
        """Number of indexed documents."""
        return self._num_docs

    def document_frequency(self, term: str, fields: Optional[Iterable[str]] = None) -> int:
        """Number of documents containing ``term`` in any of ``fields``.

        The default (all fields) reads the incrementally maintained
        counter — O(1).  An explicit field subset unions the relevant
        posting lists (the rare diagnostic path).
        """
        if fields is None:
            return self._df.get(term, 0)
        docs: Set[int] = set()
        for field in fields:
            plist = self._postings[field].get(term)
            if plist is not None:
                docs.update(plist.doc_nums)
        return len(docs)

    def idf(self, term: str) -> float:
        """Lucene-classic idf across all fields (O(1) df lookup)."""
        return lucene_idf(self._num_docs, self._df.get(term, 0))

    def term_statistics(self) -> TermStatistics:
        """Export corpus-wide document frequencies as :class:`TermStatistics`.

        Every downstream TF-IDF similarity (SegSim, Cover, column content)
        draws its IDF weights from this one table so scores are comparable.
        O(vocabulary): the df counters are already maintained, nothing is
        re-derived from posting lists.
        """
        return TermStatistics.from_dict(
            {"num_docs": self._num_docs, "df": dict(self._df)}
        )

    # -- retrieval -----------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        idf: Optional[Callable[[str], float]] = None,
        with_field_scores: bool = False,
    ) -> List[SearchHit]:
        """Disjunctive (OR) boosted TF-IDF retrieval.

        ``terms`` should already be analyzed (lower-case tokens); duplicates
        are collapsed.  Returns at most ``limit`` hits, best first, ties
        broken by doc id for determinism.

        ``idf`` overrides the per-term IDF (default: this index's own
        :meth:`idf`).  A sharded corpus passes a corpus-global IDF here so
        every shard scores documents exactly as one monolithic index would —
        tf, field length, and boost are per-document quantities, so a global
        IDF is the only ingredient needed for shard-invariant scores.  The
        override is evaluated once per term per search (cached locally),
        never once per field.

        ``with_field_scores=True`` additionally fills each hit's
        ``field_scores`` breakdown; the default skips that bookkeeping on
        the hot path.
        """
        if self._num_docs == 0:
            return []
        idf_of = idf if idf is not None else self.idf
        wanted = list(dict.fromkeys(terms))
        scores: Dict[int, float] = {}
        per_field: Dict[int, Dict[str, float]] = {}
        idf_cache: Dict[str, float] = {}
        get = scores.get
        for field in fields or self._postings:
            norms = self._norms[field]
            postings = self._postings[field]
            for term in wanted:
                plist = postings.get(term)
                if not plist:
                    continue
                term_idf = idf_cache.get(term)
                if term_idf is None:
                    term_idf = idf_cache[term] = idf_of(term)
                # weight = boost * sqrt(tf), baked at add time; the
                # remaining multiplies keep the historical left-to-right
                # association so accumulated floats stay bit-identical to
                # NaiveScorer (tests assert score equality, not just order).
                if with_field_scores:
                    for d, weight in zip(plist.doc_nums, plist.weights):
                        contrib = weight * term_idf * term_idf * norms[d]
                        scores[d] = get(d, 0.0) + contrib
                        breakdown = per_field.setdefault(d, {})
                        breakdown[field] = breakdown.get(field, 0.0) + contrib
                else:
                    for d, weight in zip(plist.doc_nums, plist.weights):
                        scores[d] = get(d, 0.0) + (
                            weight * term_idf * term_idf * norms[d]
                        )
        names = self._doc_names
        ranked = heapq.nsmallest(
            limit, scores.items(), key=lambda kv: (-kv[1], names[kv[0]])
        )
        return [
            SearchHit(names[d], score, per_field.get(d, {}))
            for d, score in ranked
        ]

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Documents containing *every* term in at least one of ``fields``.

        This is the containment probe PMI² needs: ``H(Q_l)`` uses
        ``fields=("header", "context")``; ``B(cell)`` uses
        ``fields=("content",)``.  An empty term list yields the empty set
        (a contentless probe matches nothing useful).
        """
        wanted = list(dict.fromkeys(terms))
        if not wanted:
            return set()
        field_list = list(fields)
        result: Optional[Set[int]] = None
        for term in wanted:
            docs: Set[int] = set()
            for field in field_list:
                plist = self._postings.get(field, {}).get(term)
                if plist is not None:
                    docs.update(plist.doc_nums)
            result = docs if result is None else (result & docs)
            if not result:
                return set()
        names = self._doc_names
        return {names[d] for d in result}

    def postings(self, field: str, term: str) -> Dict[str, int]:
        """Raw posting list (doc -> tf) for inspection and tests."""
        plist = self._postings.get(field, {}).get(term)
        if plist is None:
            return {}
        names = self._doc_names
        return {names[d]: tf for d, tf in zip(plist.doc_nums, plist.tfs)}

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot of the full posting structure.

        Loading a snapshot (:meth:`from_dict`) restores the index in O(read)
        — no re-tokenization, no re-counting — which is what makes a
        persisted corpus cheap to open.  The format is unchanged from the
        pre-compiled index (string-keyed postings and field lengths), so
        snapshots round-trip across the compilation boundary.
        """
        names = self._doc_names
        return {
            "boosts": dict(self.boosts),
            "doc_ids": sorted(self._doc_nums),
            "field_lengths": {
                f: {names[num]: n for num, n in lengths.items()}
                for f, lengths in self._lengths.items()
            },
            "postings": {
                f: {
                    t: {names[d]: tf for d, tf in zip(p.doc_nums, p.tfs)}
                    for t, p in terms.items()
                }
                for f, terms in self._postings.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> InvertedIndex:
        """Inverse of :meth:`to_dict` — compiles the snapshot on load."""
        index = cls(boosts={str(f): float(b) for f, b in dict(data["boosts"]).items()})
        for doc_id in data["doc_ids"]:
            index._intern(str(doc_id))
        index._num_docs = len(index._doc_names)
        nums = index._doc_nums
        for field, lengths in dict(data["field_lengths"]).items():
            if field not in index._lengths:
                continue
            field_lengths = index._lengths[field]
            field_norms = index._norms[field]
            for doc_id, n in dict(lengths).items():
                num = nums[str(doc_id)]
                n = int(n)
                field_lengths[num] = n
                field_norms[num] = 1.0 / math.sqrt(max(n, 1))
        df_docs: Dict[str, Set[int]] = defaultdict(set)
        for field, terms in dict(data["postings"]).items():
            if field not in index._postings:
                continue
            postings = index._postings[field]
            boost = index.boosts.get(field, 1.0)
            for term, entries in dict(terms).items():
                term = str(term)
                plist = postings.get(term)
                if plist is None:
                    plist = postings[term] = _PostingList()
                term_docs = df_docs[term]
                for doc_id, tf in dict(entries).items():
                    num = nums[str(doc_id)]
                    plist.append(num, int(tf), boost)
                    term_docs.add(num)
        index._df = Counter({t: len(d) for t, d in df_docs.items()})
        return index


class NaiveScorer:
    """The pre-compilation reference scorer, retained for verification.

    Snapshots an :class:`InvertedIndex` back into the dict-of-dicts
    posting structure the index used before the hot-path compilation and
    scores it with the original algorithm: per-field idf evaluation,
    per-document length-dict lookups, ``math.sqrt`` in the loop, and a
    full sort of every scored document.  Equivalence tests assert the
    compiled :meth:`InvertedIndex.search` matches this hit-for-hit
    (including scores, bit-exactly); ``benchmarks/bench_hotpath.py`` uses
    it as the honest *before* baseline — the snapshot is taken at
    construction, outside the timed region.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self.boosts = dict(index.boosts)
        self._postings: Dict[str, Dict[str, Dict[str, int]]] = {}
        self._field_lengths: Dict[str, Dict[str, int]] = {}
        names = index._doc_names
        for field, terms in index._postings.items():
            self._postings[field] = {
                term: {names[d]: tf for d, tf in zip(p.doc_nums, p.tfs)}
                for term, p in terms.items()
            }
            self._field_lengths[field] = {
                names[num]: n for num, n in index._lengths[field].items()
            }
        self.num_docs = index.num_docs
        self._df = {term: index.document_frequency(term) for term in index._df}

    def idf(self, term: str) -> float:
        """Lucene-classic idf over the snapshot's counts."""
        return lucene_idf(self.num_docs, self._df.get(term, 0))

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        idf: Optional[Callable[[str], float]] = None,
    ) -> List[SearchHit]:
        """The original dict-walking search loop, verbatim.

        Always computes the per-field breakdown and full-sorts all scored
        documents — exactly what the index did before compilation.
        """
        if self.num_docs == 0:
            return []
        idf_of = idf if idf is not None else self.idf
        wanted = list(dict.fromkeys(terms))
        scores: Dict[str, float] = defaultdict(float)
        per_field: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for field in fields or self._postings:
            boost = self.boosts.get(field, 1.0)
            lengths = self._field_lengths[field]
            for term in wanted:
                postings = self._postings[field].get(term)
                if not postings:
                    continue
                term_idf = idf_of(term)
                for doc_id, tf in postings.items():
                    norm = 1.0 / math.sqrt(max(lengths.get(doc_id, 1), 1))
                    contrib = boost * math.sqrt(tf) * term_idf * term_idf * norm
                    scores[doc_id] += contrib
                    per_field[doc_id][field] += contrib
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
        return [
            SearchHit(doc_id, score, dict(per_field[doc_id]))
            for doc_id, score in ranked
        ]
