"""``repro.index.journal`` — crash-safe incremental mutation for corpora.

PR 2 made the index persistent but immutable: new WebTables only became
searchable through an O(corpus) rebuild.  This module adds *live mutation*
on top of the persisted layout without giving up either crash safety or
the ranking-equivalence guarantee:

- **Write-ahead journal.**  :meth:`JournaledCorpus.add_tables` /
  :meth:`JournaledCorpus.delete_tables` append JSONL records (fsync'd,
  monotonic global sequence numbers) to a per-shard ``journal.jsonl``
  living next to the shard snapshot the record mutates.  The manifest's
  ``journal_seq`` records the highest sequence number folded into the
  snapshots, so replay after a crash mid-compaction can never double-apply.
- **Delta index.**  Journaled adds are indexed into a small in-memory
  :class:`~repro.index.inverted.InvertedIndex`; deletes become tombstones.
  Probes merge delta hits into the base scatter-gather results, so a
  journaled table is searchable *immediately* — no shard is re-indexed.
- **Exact lazy statistics.**  Corpus-global IDF and
  :class:`~repro.text.tfidf.TermStatistics` are maintained as signed
  deltas and re-derived lazily, at most once per probe, bounded by
  ``stats_staleness`` (default 0 = always exact).  With an exact refresh,
  every per-document score equals what a full rebuild would produce —
  journaled and compacted corpora answer the 59-query workload identically
  to freshly built ones (``tests/test_journal.py``).
- **Compaction.**  :meth:`JournaledCorpus.compact` folds the journal into
  fresh shard snapshots through the same atomic write-new-then-rename
  writer as ``save`` (:func:`~repro.index.builder.save_corpus_dir`), so an
  interrupted compaction leaves the old snapshot + journal intact.  Only
  shards with deletions are rebuilt; add-only shards are extended in
  place; untouched shards are not re-indexed at all.

``repro.index.load_corpus`` replays any surviving journal on startup and
returns a :class:`JournaledCorpus`, so a crash between append and
compaction loses nothing.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from collections import Counter
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.features import BoundedCache, STATS_CACHE_SIZE
from ..faults.injection import POINT_JOURNAL_APPEND, trip
from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from .builder import (
    _FORMAT_VERSIONS,
    DEFAULT_INDEX_FORMAT,
    JOURNAL_FILE,
    IndexedCorpus,
    analyze_table,
    save_corpus_dir,
)
from .inverted import InvertedIndex, SearchHit, lucene_idf
from .store import TableStore

if TYPE_CHECKING:
    from .sharded import ShardedCorpus

__all__ = [
    "JournaledCorpus",
    "append_records",
    "journal_depth_on_disk",
    "read_journal",
    "repair_journal",
]


# -- journal file format -------------------------------------------------------
#
# One JSON object per line (see DESIGN.md, "On-disk corpus format"):
#
#   {"seq": 7, "op": "add", "table": {<WebTable.to_dict()>}}
#   {"seq": 8, "op": "delete", "table_id": "finance_p3_t0"}
#
# ``seq`` is a corpus-global monotonic sequence number; each record lands in
# the journal of the shard that owns its table id, so per-file sequences are
# strictly increasing but not contiguous.


def append_records(path: Union[str, Path], records: Sequence[dict]) -> None:
    """Append journal ``records`` as JSONL and fsync before returning.

    The fsync is what makes the journal a *write-ahead* log: once
    ``add_tables`` returns, the mutation survives a process kill.  A torn
    final line (power loss mid-write) is tolerated by :func:`read_journal`.
    """
    if not records:
        return
    trip(POINT_JOURNAL_APPEND)
    path = Path(path)
    with path.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, ensure_ascii=False))
            fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())


def _parse_record(line: str) -> dict:
    """Decode + shape-check one journal line (raises on any defect)."""
    record = json.loads(line)
    if record["op"] == "add":
        record["table"]  # key check only; decoded lazily by replay
    elif record["op"] == "delete":
        record["table_id"]
    else:
        raise KeyError(f"unknown op {record['op']!r}")
    record["seq"] = int(record["seq"])
    return record


def read_journal(path: Union[str, Path]) -> List[dict]:
    """Read one shard journal, tolerating a torn final line.

    A line that fails to parse raises ``ValueError`` naming ``path:line`` —
    *unless* it is the last non-blank line of the file, which is the
    signature of a crash mid-append; that record never committed, so it is
    dropped (:func:`repair_journal` physically truncates it before the
    journal is appended to again).  Sequence numbers must be strictly
    increasing within a file.
    """
    path = Path(path)
    raw: List[Tuple[int, str]] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if line:
                raw.append((lineno, line))
    records: List[dict] = []
    last_seq = None
    for i, (lineno, line) in enumerate(raw):
        try:
            record = _parse_record(line)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if i == len(raw) - 1:
                break  # torn final line: the append never committed
            raise ValueError(
                f"{path}:{lineno}: corrupt journal record: {exc!r}"
            ) from exc
        if last_seq is not None and record["seq"] <= last_seq:
            raise ValueError(
                f"{path}:{lineno}: journal sequence went backwards "
                f"({record['seq']} after {last_seq})"
            )
        last_seq = record["seq"]
        records.append(record)
    return records


def repair_journal(path: Union[str, Path]) -> bool:
    """Truncate the torn final record a crash mid-append leaves behind.

    Appending after a torn tail would otherwise concatenate the next
    record onto the garbage and corrupt it too, so
    :meth:`JournaledCorpus.open` repairs every journal before the corpus
    accepts new mutations.  Returns True when bytes were truncated.
    """
    path = Path(path)
    data = path.read_bytes()
    kept = data.rstrip(b"\n")
    if not kept:
        return False
    cut = kept.rfind(b"\n") + 1  # start of the last non-empty line
    try:
        _parse_record(kept[cut:].decode())
        return False
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError,  # reprolint: disable=R008 -- an unparsable tail IS the detection result this function exists to find; the truncation below acts on it and the caller is told bytes were dropped
            ValueError):
        pass
    with path.open("r+b") as fh:
        fh.truncate(cut)
        fh.flush()
        os.fsync(fh.fileno())
    return True


def journal_depth_on_disk(
    path: Union[str, Path], manifest: dict
) -> int:
    """Pending (unfolded) journal records of a corpus directory.

    Cheap manifest-level inspection for ``repro index info`` — counts
    records with ``seq > manifest["journal_seq"]`` without loading the
    corpus.
    """
    path = Path(path)
    base_seq = manifest["journal_seq"]
    depth = 0
    for entry in manifest["shards"]:
        journal = path / entry["dir"] / JOURNAL_FILE
        if journal.is_file():
            depth += sum(
                1 for r in read_journal(journal) if r["seq"] > base_seq
            )
    return depth


class JournaledCorpus:
    """A mutable corpus: immutable base snapshot + journaled delta.

    Implements the full :class:`~repro.index.protocol.CorpusProtocol`
    (probes see journaled tables immediately) and delegates everything else
    to the wrapped base, so it drops into :class:`~repro.service.WWTService`
    unchanged.  The usual way to get one is :func:`~repro.index.load_corpus`
    on a persisted directory::

        from repro.index import build_corpus_index, load_corpus

        build_corpus_index(tables, num_shards=4, save="corpus-dir")
        corpus = load_corpus("corpus-dir")     # JournaledCorpus
        corpus.add_tables(new_tables)          # WAL append + delta index
        corpus.search(["country"])             # sees new_tables immediately
        corpus.compact()                       # fold journal into snapshots

    ``path=None`` gives an ephemeral in-memory journal (no WAL, no
    durability) — handy for tests and streaming experiments.

    ``stats_staleness`` bounds how many mutations the *derived* ranking
    state (cached IDF, merged ``stats``) may lag behind; the default 0
    refreshes lazily before the next probe, which keeps rankings
    bit-identical to a full rebuild.  Journaled tables are always visible
    regardless — staleness only defers IDF/stats refreshes during bulk
    ingest.

    Concurrency: mutations, compaction, and the delta-merge probe path
    are serialized by one internal lock (a probe racing a mutation sees
    the state from before or after it, never a torn one); probes against
    a clean corpus — the common serving case — stay lock-free on the
    base.
    """

    def __init__(
        self,
        base: Union[IndexedCorpus, ShardedCorpus],
        path: Optional[Union[str, Path]] = None,
        base_seq: int = 0,
        stats_staleness: int = 0,
    ) -> None:
        if stats_staleness < 0:
            raise ValueError("stats_staleness must be >= 0")
        self.base = base
        self._path = Path(path) if path is not None else None
        self._base_seq = base_seq
        self._next_seq = base_seq + 1
        self._staleness = stats_staleness
        self._lock = threading.Lock()
        #: Manifest version of the backing directory (set by :meth:`open`);
        #: compaction rewrites when it trails the requested format even if
        #: the journal is empty, which is how ``compact()`` upgrades a
        #: version-2 directory to the binary format.
        self._disk_version: Optional[int] = None

        # Route and boost metadata come from the base's cheap surfaces, NOT
        # from its (index, store) pairs — touching those would materialize
        # every lazy version-3 shard at open and forfeit the O(manifest)
        # load this wrapper sits on top of.
        shards = getattr(base, "shards", None)
        self._num_route_shards = len(shards) if shards is not None else 1
        self._boosts = dict(base.boosts)
        self._delta_index = InvertedIndex(self._boosts)
        self._delta_store = TableStore()
        #: Distinct analyzed terms per delta table (for df decrements when
        #: a journaled add is itself deleted, and for compaction stats).
        self._delta_terms: Dict[str, Set[str]] = {}
        #: Base table ids deleted but not yet compacted away.
        self._tombstones: Set[str] = set()
        #: Signed corpus-global document-frequency delta vs. the base.
        self._df_delta: Counter = Counter()
        self._docs_delta = 0

        # Derived ranking state, refreshed lazily under the staleness bound.
        # The synced_* snapshots pin the delta vintage every cached AND
        # uncached IDF is computed from, so one probe never mixes
        # statistics from two different corpus states.
        self._idf_cache: BoundedCache[str, float] = BoundedCache(
            STATS_CACHE_SIZE
        )
        self._base_df_cache: BoundedCache[str, int] = BoundedCache(
            STATS_CACHE_SIZE
        )
        self._merged_stats: Optional[TermStatistics] = None
        self._synced_df_delta: Counter = Counter()
        self._synced_docs_delta = 0
        self._mutations = 0
        self._synced_at = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        base: Union[IndexedCorpus, ShardedCorpus],
        manifest: dict,
        stats_staleness: int = 0,
    ) -> JournaledCorpus:
        """Wrap a freshly loaded snapshot, replaying any surviving journal.

        Records with ``seq <= manifest["journal_seq"]`` were already folded
        into the snapshots by a completed compaction and are skipped;
        everything newer is re-applied in global sequence order, restoring
        exactly the pre-crash state (minus a torn final append, which never
        committed).
        """
        path = Path(path)
        corpus = cls(
            base, path=path, base_seq=manifest["journal_seq"],
            stats_staleness=stats_staleness,
        )
        corpus._disk_version = manifest["version"]
        pending: List[Tuple[int, Path, dict]] = []
        for entry in manifest["shards"]:
            journal = path / entry["dir"] / JOURNAL_FILE
            if not journal.is_file():
                continue
            repair_journal(journal)
            for record in read_journal(journal):
                if record["seq"] > corpus._base_seq:
                    pending.append((record["seq"], journal, record))
        pending.sort(key=lambda item: item[0])
        for seq, journal, record in pending:
            try:
                if record["op"] == "add":
                    corpus._apply_add(WebTable.from_dict(record["table"]))
                else:
                    corpus._apply_delete(record["table_id"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{journal}: replay of journal record seq={seq} "
                    f"failed: {exc!r}"
                ) from exc
            corpus._next_seq = seq + 1
        return corpus

    def _base_pairs(self) -> List[Tuple[InvertedIndex, TableStore]]:
        """The base's ``(index, store)`` shards, in shard order."""
        shards = getattr(self.base, "shards", None)
        if shards is not None:
            return [(s.index, s.store) for s in shards]
        return [(self.base.index, self.base.store)]

    # -- shape -----------------------------------------------------------------

    @property
    def num_tables(self) -> int:
        """Live table count: base − tombstones + journaled adds."""
        return (
            self.base.num_tables - len(self._tombstones)
            + len(self._delta_store)
        )

    @property
    def journal_depth(self) -> int:
        """Write-ahead records not yet folded into the shard snapshots."""
        return self._next_seq - 1 - self._base_seq

    @property
    def _clean(self) -> bool:
        """True when the live state equals the base snapshot exactly."""
        return not self._delta_store and not self._tombstones

    # -- mutation --------------------------------------------------------------

    def add_tables(self, tables: Iterable[WebTable]) -> int:
        """Make ``tables`` searchable immediately; journal them durably.

        Write-ahead discipline, all under the mutation lock: the batch is
        validated (duplicate ids — within the batch, against the base, or
        against earlier adds — reject the whole call), journaled to the
        per-shard WALs with one fsync per touched shard (all-or-nothing:
        a failed append rolls the touched files back), and only then
        applied to the in-memory delta.  Returns the number added.
        """
        batch = list(tables)
        with self._lock:
            seen: Set[str] = set()
            for table in batch:
                if not table.table_id:
                    raise ValueError("table must have a table_id")
                if table.table_id in seen:
                    raise ValueError(
                        f"duplicate table id {table.table_id!r} in batch"
                    )
                if table.table_id in self:
                    raise ValueError(
                        f"table id {table.table_id!r} already in corpus"
                    )
                seen.add(table.table_id)
            records: Dict[int, List[dict]] = {}
            for offset, table in enumerate(batch):
                records.setdefault(self._route(table.table_id), []).append({
                    "seq": self._next_seq + offset,
                    "op": "add",
                    "table": table.to_dict(),
                })
            self._write_records(records)
            self._next_seq += len(batch)
            for table in batch:
                self._apply_add(table)
        return len(batch)

    def delete_tables(self, table_ids: Iterable[str]) -> int:
        """Remove tables from the live corpus; journal the tombstones.

        Unknown ids raise ``KeyError`` and reject the whole batch.
        Deleting a journaled add removes it from the delta; deleting a base
        table tombstones it (the snapshot row disappears at the next
        :meth:`compact`).  Same write-ahead discipline as
        :meth:`add_tables`.  Returns the number of tables deleted.
        """
        ids = list(table_ids)
        with self._lock:
            seen: Set[str] = set()
            for table_id in ids:
                if table_id in seen:
                    raise KeyError(
                        f"duplicate table id {table_id!r} in batch"
                    )
                if table_id not in self:
                    raise KeyError(f"table id {table_id!r} not in corpus")
                seen.add(table_id)
            records: Dict[int, List[dict]] = {}
            for offset, table_id in enumerate(ids):
                records.setdefault(self._route(table_id), []).append({
                    "seq": self._next_seq + offset,
                    "op": "delete",
                    "table_id": table_id,
                })
            self._write_records(records)
            self._next_seq += len(ids)
            for table_id in ids:
                self._apply_delete(table_id)
        return len(ids)

    def _route(self, table_id: str) -> int:
        from .sharded import shard_of

        return shard_of(table_id, self._num_route_shards)

    def _write_records(self, by_shard: Dict[int, List[dict]]) -> None:
        """Append one batch to the touched shard WALs, all-or-nothing.

        If a later shard's append fails (disk full, permissions), the
        shards already written are truncated back to their pre-batch
        length, so a rejected batch can never partially resurrect on
        replay.
        """
        if self._path is None:
            return
        undo: List[Tuple[Path, int]] = []
        try:
            for si, records in sorted(by_shard.items()):
                journal = self._path / f"shard-{si:04d}" / JOURNAL_FILE
                undo.append(
                    (journal,
                     journal.stat().st_size if journal.exists() else -1)
                )
                append_records(journal, records)
        except BaseException:
            for journal, size in undo:
                try:
                    if size < 0:
                        journal.unlink(missing_ok=True)
                    else:
                        with journal.open("r+b") as fh:
                            fh.truncate(size)
                            fh.flush()
                            os.fsync(fh.fileno())
                except OSError:  # reprolint: disable=R008 -- best-effort rollback inside a handler that re-raises the original append failure below; a rarer rollback error must not mask it # pragma: no cover
                    pass
            raise

    def _apply_add(self, table: WebTable) -> None:
        fields = analyze_table(table)
        self._delta_store.add(table)
        self._delta_index.add_document(table.table_id, fields)
        terms = {t for toks in fields.values() for t in toks}
        self._delta_terms[table.table_id] = terms
        for term in sorted(terms):
            self._df_delta[term] += 1
        self._docs_delta += 1
        self._mutations += 1

    def _apply_delete(self, table_id: str) -> None:
        if table_id in self._delta_store:
            terms = self._delta_terms.pop(table_id)
            table = self._delta_store.remove(table_id)
            self._delta_index.remove_document(table_id, analyze_table(table))
        else:
            table = self.base.get_table(table_id)
            terms = {
                t for toks in analyze_table(table).values() for t in toks
            }
            self._tombstones.add(table_id)
        for term in terms:
            self._df_delta[term] -= 1
        self._docs_delta -= 1
        self._mutations += 1

    # -- derived ranking state -------------------------------------------------

    def _maybe_refresh(self) -> None:
        """Re-derive IDF/stats caches once the staleness bound is exceeded.

        Called at probe entry.  With the default ``stats_staleness=0`` any
        pending mutation triggers a refresh, so the next probe scores with
        exact corpus-global statistics; a positive bound lets bulk ingest
        keep serving from the previous derivation for up to that many
        mutations.  The merged stats are rebuilt *here* (not lazily) so
        what :attr:`stats` serves is never staler than the bound promises.
        """
        if self._mutations - self._synced_at > self._staleness:
            self._idf_cache.clear()
            self._synced_df_delta = Counter(self._df_delta)
            self._synced_docs_delta = self._docs_delta
            self._merged_stats = (
                None if self._clean else self._build_merged_stats()
            )
            self._synced_at = self._mutations

    def _base_df(self, term: str) -> int:
        cached = self._base_df_cache.get(term)
        if cached is None:
            shards = getattr(self.base, "shards", None)
            cached = (
                sum(s.index.document_frequency(term) for s in shards)
                if shards is not None
                else self.base.index.document_frequency(term)
            )
            self._base_df_cache.put(term, cached)
        return cached

    def _effective_idf(self, term: str) -> float:
        """Lucene-classic IDF over the corpus as of the last stats sync.

        Same expression as :meth:`ShardedCorpus.global_idf`, with N and df
        adjusted by the journal's signed deltas — the ingredient that
        keeps journaled rankings bit-identical to a full rebuild.  Reads
        the *synced* delta snapshot (not the live counters) so cache
        misses and cache hits agree on one corpus vintage; with the
        default staleness 0 the sync happens before the probe and the
        vintage is the live corpus.
        """
        cached = self._idf_cache.get(term)
        if cached is None:
            df = self._base_df(term) + self._synced_df_delta.get(term, 0)
            cached = lucene_idf(
                self.base.num_tables + self._synced_docs_delta, df
            )
            self._idf_cache.put(term, cached)
        return cached

    def _build_merged_stats(self) -> TermStatistics:
        df = Counter(self.base.stats.to_dict()["df"])
        for term, delta in self._df_delta.items():
            if delta:
                df[term] += delta
        return TermStatistics.from_dict({
            "num_docs": self.base.stats.num_docs + self._docs_delta,
            "df": {t: int(n) for t, n in df.items() if n > 0},
        })

    @property
    def stats(self) -> TermStatistics:
        """Corpus-global :class:`TermStatistics` over the live corpus.

        The base object itself while the journal nets out to nothing (so
        identity — and therefore bit-identical feature weights — is
        preserved for an unchanged corpus); a merged view otherwise,
        re-derived under the staleness bound.  Before the first refresh is
        due, the base statistics *are* the last-derived view (lag ≤ the
        bound, by construction).
        """
        if self._clean:
            return self.base.stats
        with self._lock:
            self._maybe_refresh()
            if self._merged_stats is not None:
                return self._merged_stats
        return self.base.stats

    # -- CorpusProtocol --------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        with_field_scores: bool = False,
    ) -> List[SearchHit]:
        """Ranked retrieval over base + delta, tombstones excluded.

        ``with_field_scores`` requests the diagnostic per-field breakdown
        on every hit (off on the hot path); it is forwarded to the base
        scatter and the delta probe alike.

        Base shards are scattered with the *live* IDF (not the base's
        cached one) and asked for ``limit + |tombstones|`` hits each, which
        guarantees every live base document of the true global top-``limit``
        survives the tombstone filter; delta hits are scored with the same
        IDF and merged by ``(-score, doc_id)`` — the exact ranking a full
        rebuild would produce.

        A clean corpus (the common serving case) probes the base directly,
        lock-free; the delta-merge path serializes with mutations so a
        probe never iterates structures a mutation is rewriting.
        """
        if self._clean:
            return self.base.search(
                terms, limit=limit, fields=fields,
                with_field_scores=with_field_scores,
            )
        with self._lock:
            self._maybe_refresh()
            field_list = list(fields) if fields is not None else None
            eff_limit = limit + len(self._tombstones)
            map_shards = getattr(self.base, "_map_shards", None)
            results = (
                map_shards(
                    lambda s: s.index.search(
                        terms, limit=eff_limit, fields=field_list,
                        idf=self._effective_idf,
                        with_field_scores=with_field_scores,
                    )
                )
                if map_shards is not None
                else [self.base.index.search(
                    terms, limit=eff_limit, fields=field_list,
                    idf=self._effective_idf,
                    with_field_scores=with_field_scores,
                )]
            )
            merged = [
                hit for hits in results for hit in hits
                if hit.doc_id not in self._tombstones
            ]
            merged.extend(self._delta_index.search(
                terms, limit=limit, fields=field_list,
                idf=self._effective_idf,
                with_field_scores=with_field_scores,
            ))
        return heapq.nsmallest(
            limit, merged, key=lambda h: (-h.score, h.doc_id)
        )

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Conjunctive containment over base + delta, tombstones excluded."""
        field_list = list(fields)
        if self._clean:
            return self.base.docs_containing_all(terms, field_list)
        with self._lock:
            out = self.base.docs_containing_all(terms, field_list)
            out -= self._tombstones
            out |= self._delta_index.docs_containing_all(terms, field_list)
        return out

    def get_table(self, table_id: str) -> WebTable:
        """Fetch one live table by id (KeyError if absent or deleted)."""
        if table_id in self._delta_store:
            return self._delta_store.get(table_id)
        if table_id in self._tombstones:
            raise KeyError(table_id)
        return self.base.get_table(table_id)

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        out: List[WebTable] = []
        for table_id in table_ids:
            if table_id in self:
                out.append(self.get_table(table_id))
        return out

    def ids(self) -> List[str]:
        """All live table ids: base order (minus tombstones), then adds."""
        if self._clean:
            return self.base.ids()
        with self._lock:
            out = [i for i in self.base.ids() if i not in self._tombstones]
            out.extend(self._delta_store.ids())
        return out

    def __contains__(self, table_id: str) -> bool:
        if table_id in self._delta_store:
            return True
        if table_id in self._tombstones:
            return False
        return table_id in self.base

    def __iter__(self) -> Iterator[WebTable]:
        for table in self.base:
            if table.table_id not in self._tombstones:
                yield table
        yield from self._delta_store

    # -- compaction and export -------------------------------------------------

    def _folded_pairs(
        self, in_place: bool
    ) -> List[Tuple[InvertedIndex, TableStore]]:
        """The base shard pairs with the delta folded in.

        Shards with deletions are rebuilt (postings are append-only by
        design); shards with only adds are extended — mutating the base's
        own objects when ``in_place`` (compaction, which retires them
        right after), or copies of them otherwise (export, which must
        leave the live instance untouched).  Untouched shards are reused
        as-is in both modes; existing documents are never re-analyzed.
        Caller holds the mutation lock.
        """
        pairs = self._base_pairs()
        adds: Dict[int, List[WebTable]] = {}
        for table in self._delta_store:
            adds.setdefault(self._route(table.table_id), []).append(table)
        dels: Dict[int, Set[str]] = {}
        for table_id in self._tombstones:
            dels.setdefault(self._route(table_id), set()).add(table_id)
        for si, (index, store) in enumerate(pairs):
            if si in dels:
                new_index = InvertedIndex(self._boosts)
                new_store = TableStore()
                survivors = [
                    t for t in store if t.table_id not in dels[si]
                ] + adds.get(si, [])
                for table in survivors:
                    new_store.add(table)
                    new_index.add_document(
                        table.table_id, analyze_table(table)
                    )
                pairs[si] = (new_index, new_store)
            elif si in adds:
                if not in_place:
                    index = InvertedIndex.from_dict(index.to_dict())
                    store = TableStore(list(store))
                for table in adds[si]:
                    store.add(table)
                    index.add_document(table.table_id, analyze_table(table))
                pairs[si] = (index, store)
        return pairs

    def _kind(self) -> str:
        return (
            "sharded" if getattr(self.base, "shards", None) is not None
            else "monolithic"
        )

    def save(
        self,
        path: Union[str, Path],
        index_format: str = DEFAULT_INDEX_FORMAT,
    ) -> Path:
        """Export the *live* corpus (snapshot + journal folded) to ``path``.

        This instance is left untouched — same journal, same in-memory
        state; the written directory simply has no journal to replay
        (its manifest's ``journal_seq`` already covers every record).  To
        fold the served directory itself, prefer :meth:`compact`, which
        does the same write without copying add-only shards.
        ``index_format`` selects the shard snapshot format of the export.
        """
        with self._lock:
            merged = (
                self.base.stats if self._clean
                else self._build_merged_stats()
            )
            pairs = self._folded_pairs(in_place=False)
            return save_corpus_dir(
                path, pairs, merged, kind=self._kind(),
                journal_seq=self._next_seq - 1,
                index_format=index_format,
            )

    def compact(self, index_format: str = DEFAULT_INDEX_FORMAT) -> int:
        """Fold the journal into fresh shard snapshots; returns records folded.

        Only shards with deletions are rebuilt; shards with only adds are
        extended in place (no re-indexing of existing documents); untouched
        shards are reused as-is.  The directory write goes through the
        atomic write-new-then-rename path of
        :func:`~repro.index.builder.save_corpus_dir` with
        ``journal_seq`` advanced to the last folded record, and the old
        directory — journals included — is replaced wholesale, so a crash
        at any point leaves either the old snapshot + journal or the new
        snapshot, never a mix.  Stale temp/backup dirs from a previous
        crash are pruned by the same writer.

        The rewrite lands in ``index_format`` (binary by default), so
        compacting a version-2 directory *upgrades* it to version 3 — even
        when there is nothing to fold: a clean corpus whose on-disk
        version trails the requested format is rewritten anyway (returning
        0, since no journal records were folded).
        """
        with self._lock:
            folded = self.journal_depth
            upgrade = (
                self._path is not None
                and self._disk_version is not None
                and self._disk_version != _FORMAT_VERSIONS[index_format]
            )
            if folded == 0 and self._clean and not upgrade:
                return 0
            merged = (
                self.base.stats if self._clean
                else self._build_merged_stats()
            )
            if self._clean:
                # Nothing to fold in memory (the journal netted out to
                # zero): leave the base — and any probes running against
                # it — completely alone; just rewrite the directory so
                # the journal files disappear under the advanced seq.
                pairs = self._base_pairs()
            else:
                pairs = self._folded_pairs(in_place=True)
                self._swap_base(pairs, merged)
            folded_through = self._next_seq - 1
            if self._path is not None:
                save_corpus_dir(
                    self._path, pairs, merged, kind=self._kind(),
                    journal_seq=folded_through,
                    index_format=index_format,
                )
                self._disk_version = _FORMAT_VERSIONS[index_format]
            self._base_seq = folded_through
            return folded

    def _swap_base(
        self,
        pairs: List[Tuple[InvertedIndex, TableStore]],
        merged: TermStatistics,
    ) -> None:
        """Rebuild ``self.base`` around the folded shards and reset the delta.

        Reconstructing (rather than patching) the base refreshes its
        internal caches — table counts, the sharded IDF cache, the scatter
        pool — in one stroke.
        """
        from .sharded import ShardedCorpus

        if getattr(self.base, "shards", None) is not None:
            probe_workers = self.base.probe_workers
            health = getattr(self.base, "health_policy", None)
            clock = getattr(self.base, "_clock", None)
            self.base.close()
            shards = [
                IndexedCorpus(index=index, store=store, stats=merged)
                for index, store in pairs
            ]
            self.base = ShardedCorpus(
                shards=shards, stats=merged, probe_workers=probe_workers,
                validate=False, health=health, clock=clock,
            )
        else:
            index, store = pairs[0]
            self.base = IndexedCorpus(index=index, store=store, stats=merged)
        self._delta_index = InvertedIndex(self._boosts)
        self._delta_store = TableStore()
        self._delta_terms = {}
        self._tombstones = set()
        self._df_delta = Counter()
        self._docs_delta = 0
        self._idf_cache.clear()
        self._base_df_cache.clear()
        self._merged_stats = None
        self._synced_at = self._mutations

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release base resources (the sharded scatter pool); idempotent."""
        if hasattr(self.base, "close"):
            self.base.close()

    def __enter__(self) -> JournaledCorpus:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        """Delegate anything not defined here to the wrapped base corpus.

        Keeps the wrapper transparent for base-specific surfaces
        (``num_shards``, ``shard_sizes``, ``store``, ``index``, …) so
        existing callers of the PR 2 backends keep working unchanged.
        """
        return getattr(self.base, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JournaledCorpus({self.base!r}, +{len(self._delta_store)} "
            f"-{len(self._tombstones)}, depth={self.journal_depth})"
        )
