"""Building the searchable corpus: index + store from extracted tables.

Ties the offline half of Figure 2 together: given :class:`WebTable` objects
(from the extractor or the synthetic generator), produce the
:class:`~repro.index.inverted.InvertedIndex`, the
:class:`~repro.index.store.TableStore`, and the corpus-wide
:class:`~repro.text.tfidf.TermStatistics` every feature shares.

:class:`IndexedCorpus` implements the backend contract of
:class:`~repro.index.protocol.CorpusProtocol`; ``build_corpus_index`` can
alternatively produce a hash-partitioned
:class:`~repro.index.sharded.ShardedCorpus` (``num_shards=``) and persist
either kind to a directory (``save=``) for O(read) reloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from ..text.tokenize import tokenize
from .inverted import FIELD_BOOSTS, InvertedIndex, SearchHit
from .store import TableStore

__all__ = [
    "IndexedCorpus",
    "analyze_table",
    "build_corpus_index",
    "INDEX_FORMAT",
    "INDEX_VERSION",
]

#: Manifest ``format`` marker of the persisted corpus directory layout.
INDEX_FORMAT = "repro-index"
#: Manifest ``version``; bump on incompatible layout changes.  Version 2
#: added the ``journal_seq`` manifest key and per-shard write-ahead
#: journals (see DESIGN.md, "On-disk corpus format, version 2").
INDEX_VERSION = 2

#: File names inside a persisted corpus directory (see DESIGN.md).
MANIFEST_FILE = "manifest.json"
STATS_FILE = "stats.json"
SHARD_INDEX_FILE = "index.json"
SHARD_TABLES_FILE = "tables.jsonl"
#: Per-shard write-ahead journal (``repro.index.journal``), living next to
#: the shard snapshot it mutates.
JOURNAL_FILE = "journal.jsonl"


@dataclass
class IndexedCorpus:
    """The queryable corpus bundle produced by offline processing."""

    index: InvertedIndex
    store: TableStore
    stats: TermStatistics

    @property
    def num_tables(self) -> int:
        """Number of tables in the corpus."""
        return len(self.store)

    # -- CorpusProtocol --------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        with_field_scores: bool = False,
    ) -> List[SearchHit]:
        """Disjunctive boosted TF-IDF retrieval (delegates to the index).

        ``with_field_scores`` forwards to
        :meth:`~repro.index.inverted.InvertedIndex.search`; the serving
        path leaves it off (the per-field breakdown is diagnostic only).
        """
        return self.index.search(
            terms, limit=limit, fields=fields,
            with_field_scores=with_field_scores,
        )

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Conjunctive containment probe (delegates to the index)."""
        return self.index.docs_containing_all(terms, fields)

    def get_table(self, table_id: str) -> WebTable:
        """Fetch one table by id (KeyError if absent)."""
        return self.store.get(table_id)

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        return self.store.get_many(table_ids)

    def ids(self) -> List[str]:
        """All table ids in insertion order."""
        return self.store.ids()

    def __contains__(self, table_id: str) -> bool:
        return table_id in self.store

    def __iter__(self) -> Iterator[str]:
        return iter(self.store)

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Persist to a directory (manifest + one shard snapshot).

        The layout is the single-shard case of the sharded layout, so a
        monolithic corpus and a ``ShardedCorpus`` share one on-disk format
        (and one writer, :func:`save_corpus_dir`);
        ``repro.index.sharded.load_corpus`` dispatches on the manifest's
        ``kind``.
        """
        return save_corpus_dir(
            path, [(self.index, self.store)], self.stats, kind="monolithic"
        )

    @classmethod
    def load(
        cls, path: Union[str, Path], ignore_journal: bool = False
    ) -> IndexedCorpus:
        """Load a corpus saved by :meth:`save` (O(read), no re-indexing).

        This reads the *snapshot* only.  If the directory carries an
        unfolded write-ahead journal (``repro.index.journal``), loading
        just the snapshot would silently drop the journaled mutations, so
        this refuses unless ``ignore_journal=True`` (which
        :func:`~repro.index.sharded.load_corpus` passes before replaying
        the journal itself).
        """
        path = Path(path)
        manifest = read_manifest(path)
        if manifest["kind"] != "monolithic":
            raise ValueError(
                f"{path} holds a {manifest['kind']!r} corpus; "
                "use repro.index.sharded.load_corpus"
            )
        if not ignore_journal:
            _refuse_unfolded_journal(path, manifest)
        stats = load_stats(path)
        index, store = _load_shard(path / manifest["shards"][0]["dir"])
        return cls(index=index, store=store, stats=stats)


# -- shared persistence helpers (used by ShardedCorpus too) --------------------


def _save_shard(shard_dir: Path, index: InvertedIndex, store: TableStore) -> None:
    """Write one shard's index snapshot + table store under ``shard_dir``."""
    shard_dir.mkdir(parents=True, exist_ok=True)
    (shard_dir / SHARD_INDEX_FILE).write_text(
        json.dumps(index.to_dict()), encoding="utf-8"
    )
    store.save(shard_dir / SHARD_TABLES_FILE)


def _load_shard(shard_dir: Path) -> tuple:
    """Read one shard written by :func:`_save_shard`.

    Corrupt snapshots (truncated writes, hand edits) surface as
    ``ValueError`` naming the file — matching ``TableStore.load`` and
    :func:`read_manifest` — so the CLI reports them as errors, not
    tracebacks.
    """
    index_path = shard_dir / SHARD_INDEX_FILE
    try:
        index = InvertedIndex.from_dict(
            json.loads(index_path.read_text(encoding="utf-8"))
        )
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as exc:
        raise ValueError(
            f"{index_path}: corrupt index snapshot: {exc!r}"
        ) from exc
    store = TableStore.load(shard_dir / SHARD_TABLES_FILE)
    return index, store


def journal_paths(path: Union[str, Path], manifest: dict) -> List[Path]:
    """Existing, non-empty per-shard journal files of a corpus directory.

    Compaction replaces the whole directory (journals included), so any
    surviving non-empty ``journal.jsonl`` holds mutations not yet folded
    into the shard snapshots.
    """
    path = Path(path)
    out = []
    for entry in manifest["shards"]:
        journal = path / entry["dir"] / JOURNAL_FILE
        if journal.is_file() and journal.stat().st_size > 0:
            out.append(journal)
    return out


def _refuse_unfolded_journal(path: Path, manifest: dict) -> None:
    """Raise if a snapshot-only loader would drop journaled mutations."""
    pending = journal_paths(path, manifest)
    if pending:
        raise ValueError(
            f"{path} has an unfolded write-ahead journal "
            f"({', '.join(p.parent.name for p in pending)}); load it with "
            "repro.index.load_corpus (which replays the journal) or fold "
            "it first with compact()"
        )


def load_stats(path: Path) -> TermStatistics:
    """Read the shared ``stats.json`` of a persisted corpus directory."""
    stats_path = Path(path) / STATS_FILE
    try:
        return TermStatistics.from_dict(
            json.loads(stats_path.read_text(encoding="utf-8"))
        )
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(
            f"{stats_path}: corrupt term statistics: {exc!r}"
        ) from exc


def save_corpus_dir(
    path: Union[str, Path],
    shard_pairs: Sequence[tuple],
    stats: TermStatistics,
    kind: str,
    journal_seq: int = 0,
) -> Path:
    """Write the persisted corpus layout — the one writer for both kinds.

    ``shard_pairs`` is a list of ``(InvertedIndex, TableStore)`` tuples, one
    per shard; ``kind`` is ``"monolithic"`` or ``"sharded"``;
    ``journal_seq`` is the highest write-ahead-journal sequence number
    folded into the snapshots being written (0 for a fresh build — see
    ``repro.index.journal``).

    The write is crash-safe: everything (manifest last) goes into a
    temporary sibling directory which is then swapped into place, so an
    interrupted save never destroys an existing corpus at ``path`` and
    never leaves a half-written one behind — at worst the temp/backup
    sibling remains for manual cleanup.  Stale shards from a previous save
    can't survive either, since the directory is replaced wholesale.
    """
    import shutil

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.saving"
    backup = path.parent / f".{path.name}.replaced"
    if backup.exists():
        if path.exists():
            shutil.rmtree(backup)
        else:
            # A previous save crashed between the two renames: the backup
            # is the only surviving copy.  Restore it instead of deleting
            # it, so a retried save can never destroy the last good corpus.
            backup.rename(path)
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    shard_entries = []
    for i, (index, store) in enumerate(shard_pairs):
        shard_dir = tmp / f"shard-{i:04d}"
        _save_shard(shard_dir, index, store)
        shard_entries.append({"dir": shard_dir.name, "num_tables": len(store)})
    (tmp / STATS_FILE).write_text(
        json.dumps(stats.to_dict()), encoding="utf-8"
    )
    manifest = {
        "format": INDEX_FORMAT,
        "version": INDEX_VERSION,
        "kind": kind,
        "num_shards": len(shard_entries),
        "num_tables": sum(e["num_tables"] for e in shard_entries),
        "journal_seq": journal_seq,
        "boosts": dict(shard_pairs[0][0].boosts),
        "shards": shard_entries,
    }
    (tmp / MANIFEST_FILE).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    if path.exists():
        path.rename(backup)
    tmp.rename(path)
    if backup.exists():
        shutil.rmtree(backup)
    return path


#: Manifest keys every loader indexes unconditionally.
_MANIFEST_REQUIRED = (
    "kind", "num_shards", "num_tables", "journal_seq", "boosts", "shards",
)


def read_manifest(path: Union[str, Path]) -> dict:
    """Read and validate a persisted corpus manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not a persisted corpus (no {MANIFEST_FILE})")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{manifest_path}: invalid manifest JSON: {exc}") from exc
    if manifest.get("format") != INDEX_FORMAT:
        raise ValueError(
            f"{manifest_path}: unexpected format {manifest.get('format')!r}"
        )
    if manifest.get("version") != INDEX_VERSION:
        raise ValueError(
            f"{manifest_path}: unsupported version {manifest.get('version')!r} "
            f"(this build reads version {INDEX_VERSION})"
        )
    missing = [k for k in _MANIFEST_REQUIRED if k not in manifest]
    if missing:
        raise ValueError(
            f"{manifest_path}: manifest is missing required keys {missing} "
            "(truncated write or hand edit?)"
        )
    shards = manifest["shards"]
    if not isinstance(shards, list) or not all(
        isinstance(e, dict) and "dir" in e for e in shards
    ):
        raise ValueError(
            f"{manifest_path}: malformed 'shards' list — every entry needs "
            "a 'dir' key"
        )
    return manifest


def analyze_table(table: WebTable) -> Dict[str, List[str]]:
    """Tokenize one table into its three boosted document fields.

    THE analysis path: the monolithic builder, the sharded builder, the
    journal's delta index, and compaction all tokenize through this one
    function, so "a journaled table is analyzed exactly as a rebuilt one"
    is structural rather than a convention four call sites must honor.
    """
    return {
        name: tokenize(table.field_text(name))
        for name in ("header", "context", "content")
    }


def _index_one(
    table: WebTable,
    index: InvertedIndex,
    store: TableStore,
    stats: TermStatistics,
) -> None:
    """Analyze one table into an index + store + shared stats.

    The single analysis path used by BOTH the monolithic and the sharded
    builders — one document with the three boosted fields of Section 2.1,
    document frequencies counting each table once per term across all its
    fields (see :func:`analyze_table`).
    """
    store.add(table)
    fields = analyze_table(table)
    index.add_document(table.table_id, fields)
    stats.add_document([t for toks in fields.values() for t in toks])


def build_corpus_index(
    tables: Iterable[WebTable],
    boosts: Optional[Dict[str, float]] = None,
    num_shards: Optional[int] = None,
    save: Optional[Union[str, Path]] = None,
    probe_workers: int = 1,
) -> Union[IndexedCorpus, ShardedCorpus]:
    """Index ``tables`` into a queryable corpus.

    Each table becomes one document with the three boosted fields of
    Section 2.1; document frequencies for the shared TF-IDF space count each
    table once per term across all its fields.

    ``num_shards=None`` (the default) returns the classic monolithic
    :class:`IndexedCorpus`; an integer returns a
    :class:`~repro.index.sharded.ShardedCorpus` hash-partitioned over that
    many shards (ranking-equivalent — see DESIGN.md) with
    ``probe_workers``-wide scatter-gather.  ``save=`` additionally persists
    the built corpus to that directory.
    """
    if num_shards is not None:
        from .sharded import build_sharded_corpus

        corpus = build_sharded_corpus(
            tables, num_shards, boosts=boosts, probe_workers=probe_workers
        )
    else:
        index = InvertedIndex(boosts or FIELD_BOOSTS)
        store = TableStore()
        stats = TermStatistics()
        for table in tables:
            _index_one(table, index, store, stats)
        corpus = IndexedCorpus(index=index, store=store, stats=stats)
    if save is not None:
        corpus.save(save)
    return corpus
