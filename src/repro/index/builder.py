"""Building the searchable corpus: index + store from extracted tables.

Ties the offline half of Figure 2 together: given :class:`WebTable` objects
(from the extractor or the synthetic generator), produce the
:class:`~repro.index.inverted.InvertedIndex`, the
:class:`~repro.index.store.TableStore`, and the corpus-wide
:class:`~repro.text.tfidf.TermStatistics` every feature shares.

:class:`IndexedCorpus` implements the backend contract of
:class:`~repro.index.protocol.CorpusProtocol`; ``build_corpus_index`` can
alternatively produce a hash-partitioned
:class:`~repro.index.sharded.ShardedCorpus` (``num_shards=``) and persist
either kind to a directory (``save=``) for O(read) reloads.

Persisted shards come in two formats, selected by ``index_format``:
``"bin"`` (the default; manifest ``version: 3``) writes the
:mod:`repro.index.binfmt` binary columnar snapshot that loads through
``mmap`` and supports lazy per-shard materialization, while ``"json"``
(manifest ``version: 2``) keeps the PR 2 JSON snapshot.  Both versions
load through the same entry points.  :func:`build_corpus_stream` is the
O(shard)-memory streaming builder for corpora that don't fit in RAM at
once.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from ..text.tokenize import tokenize
from .binfmt import SHARD_BIN_FILE, read_index_bin, write_index_bin
from .inverted import FIELD_BOOSTS, InvertedIndex, SearchHit
from .store import TableStore, write_offsets_sidecar

__all__ = [
    "IndexedCorpus",
    "analyze_table",
    "build_corpus_index",
    "build_corpus_stream",
    "INDEX_FORMAT",
    "INDEX_VERSION",
    "JSON_INDEX_VERSION",
    "SUPPORTED_VERSIONS",
    "DEFAULT_INDEX_FORMAT",
]

#: Manifest ``format`` marker of the persisted corpus directory layout.
INDEX_FORMAT = "repro-index"
#: Current manifest ``version`` written by default.  Version 2 added the
#: ``journal_seq`` manifest key and per-shard write-ahead journals; version
#: 3 switched shard snapshots to the binary columnar format of
#: :mod:`repro.index.binfmt` with per-shard byte lengths + CRC-32 checksums
#: in the manifest (see DESIGN.md, "On-disk corpus format").
INDEX_VERSION = 3
#: The JSON-snapshot manifest version (still fully readable and writable).
JSON_INDEX_VERSION = 2
#: Manifest versions this build can load.
SUPPORTED_VERSIONS = (2, 3)
#: Default shard snapshot format for new saves.
DEFAULT_INDEX_FORMAT = "bin"
#: Shard snapshot format <-> manifest version (one determines the other).
_FORMAT_VERSIONS: Dict[str, int] = {"json": JSON_INDEX_VERSION, "bin": INDEX_VERSION}
_VERSION_FORMATS: Dict[int, str] = {v: f for f, v in _FORMAT_VERSIONS.items()}

#: File names inside a persisted corpus directory (see DESIGN.md).
MANIFEST_FILE = "manifest.json"
STATS_FILE = "stats.json"
SHARD_INDEX_FILE = "index.json"
SHARD_TABLES_FILE = "tables.jsonl"
#: Per-shard write-ahead journal (``repro.index.journal``), living next to
#: the shard snapshot it mutates.
JOURNAL_FILE = "journal.jsonl"


@dataclass
class IndexedCorpus:
    """The queryable corpus bundle produced by offline processing."""

    index: InvertedIndex
    store: TableStore
    stats: TermStatistics

    @property
    def num_tables(self) -> int:
        """Number of tables in the corpus."""
        return len(self.store)

    @property
    def boosts(self) -> Dict[str, float]:
        """Field boosts of the underlying index (copy)."""
        return dict(self.index.boosts)

    # -- CorpusProtocol --------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        limit: int = 100,
        fields: Optional[Iterable[str]] = None,
        with_field_scores: bool = False,
    ) -> List[SearchHit]:
        """Disjunctive boosted TF-IDF retrieval (delegates to the index).

        ``with_field_scores`` forwards to
        :meth:`~repro.index.inverted.InvertedIndex.search`; the serving
        path leaves it off (the per-field breakdown is diagnostic only).
        """
        return self.index.search(
            terms, limit=limit, fields=fields,
            with_field_scores=with_field_scores,
        )

    def docs_containing_all(
        self, terms: Sequence[str], fields: Iterable[str]
    ) -> Set[str]:
        """Conjunctive containment probe (delegates to the index)."""
        return self.index.docs_containing_all(terms, fields)

    def get_table(self, table_id: str) -> WebTable:
        """Fetch one table by id (KeyError if absent)."""
        return self.store.get(table_id)

    def get_many(self, table_ids: Iterable[str]) -> List[WebTable]:
        """Fetch several tables, preserving input order, skipping unknowns."""
        return self.store.get_many(table_ids)

    def ids(self) -> List[str]:
        """All table ids in insertion order."""
        return self.store.ids()

    def __contains__(self, table_id: str) -> bool:
        return table_id in self.store

    def __iter__(self) -> Iterator[WebTable]:
        return iter(self.store)

    # -- persistence -----------------------------------------------------------

    def save(
        self,
        path: Union[str, Path],
        index_format: str = DEFAULT_INDEX_FORMAT,
    ) -> Path:
        """Persist to a directory (manifest + one shard snapshot).

        The layout is the single-shard case of the sharded layout, so a
        monolithic corpus and a ``ShardedCorpus`` share one on-disk format
        (and one writer, :func:`save_corpus_dir`);
        ``repro.index.sharded.load_corpus`` dispatches on the manifest's
        ``kind``.  ``index_format`` selects the shard snapshot format
        (``"bin"`` by default, ``"json"`` for the version-2 layout).
        """
        return save_corpus_dir(
            path, [(self.index, self.store)], self.stats, kind="monolithic",
            index_format=index_format,
        )

    @classmethod
    def load(
        cls, path: Union[str, Path], ignore_journal: bool = False
    ) -> IndexedCorpus:
        """Load a corpus saved by :meth:`save` (O(read), no re-indexing).

        This reads the *snapshot* only.  If the directory carries an
        unfolded write-ahead journal (``repro.index.journal``), loading
        just the snapshot would silently drop the journaled mutations, so
        this refuses unless ``ignore_journal=True`` (which
        :func:`~repro.index.sharded.load_corpus` passes before replaying
        the journal itself).
        """
        path = Path(path)
        manifest = read_manifest(path)
        if manifest["kind"] != "monolithic":
            raise ValueError(
                f"{path} holds a {manifest['kind']!r} corpus; "
                "use repro.index.sharded.load_corpus"
            )
        if not ignore_journal:
            _refuse_unfolded_journal(path, manifest)
        stats = load_stats(path)
        entry = manifest["shards"][0]
        index, store = _load_shard(
            path / entry["dir"], version=manifest["version"], entry=entry
        )
        return cls(index=index, store=store, stats=stats)


# -- shared persistence helpers (used by ShardedCorpus too) --------------------


def _write_shard_index(
    shard_dir: Path, index: InvertedIndex, index_format: str
) -> Dict[str, Any]:
    """Write one shard's index snapshot; returns extra manifest-entry keys.

    ``"json"`` writes the version-2 ``index.json`` (no extras); ``"bin"``
    writes the version-3 ``index.bin`` and returns its byte length and
    CRC-32, which the manifest records so a lazy load can verify the
    snapshot before materializing it.
    """
    if index_format == "json":
        (shard_dir / SHARD_INDEX_FILE).write_text(
            json.dumps(index.to_dict()), encoding="utf-8"
        )
        return {}
    nbytes, crc = write_index_bin(shard_dir / SHARD_BIN_FILE, index)
    return {"index_bytes": nbytes, "index_crc32": crc}


def _save_shard(
    shard_dir: Path,
    index: InvertedIndex,
    store: TableStore,
    index_format: str = DEFAULT_INDEX_FORMAT,
) -> Dict[str, Any]:
    """Write one shard's index snapshot + table store under ``shard_dir``.

    Returns the extra manifest-entry keys of :func:`_write_shard_index`.
    """
    shard_dir.mkdir(parents=True, exist_ok=True)
    extras = _write_shard_index(shard_dir, index, index_format)
    store.save(shard_dir / SHARD_TABLES_FILE)
    # Row-offset sidecar: lets LazyShard open the table store without
    # parsing (or even reading) tables.jsonl — see store.LazyTableStore.
    write_offsets_sidecar(shard_dir / SHARD_TABLES_FILE)
    return extras


def _load_shard(
    shard_dir: Path,
    version: int = JSON_INDEX_VERSION,
    entry: Optional[Dict[str, Any]] = None,
) -> Tuple[InvertedIndex, TableStore]:
    """Read one shard written by :func:`_save_shard`.

    ``version`` selects the snapshot decoder (2 = ``index.json``,
    3 = ``index.bin``); a version-3 ``entry`` supplies the manifest's
    recorded byte length and CRC-32 for pre-decode verification.  Corrupt
    snapshots (truncated writes, hand edits, flipped bytes) surface as
    ``ValueError`` naming the file — matching ``TableStore.load`` and
    :func:`read_manifest` — so the CLI reports them as errors, not
    tracebacks.
    """
    if version == JSON_INDEX_VERSION:
        index_path = shard_dir / SHARD_INDEX_FILE
        try:
            index = InvertedIndex.from_dict(
                json.loads(index_path.read_text(encoding="utf-8"))
            )
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as exc:
            raise ValueError(
                f"{index_path}: corrupt index snapshot: {exc!r}"
            ) from exc
    else:
        index = read_index_bin(
            shard_dir / SHARD_BIN_FILE,
            expected_bytes=None if entry is None else int(entry["index_bytes"]),
            expected_crc32=None if entry is None else int(entry["index_crc32"]),
        )
    store = TableStore.load(shard_dir / SHARD_TABLES_FILE)
    return index, store


def journal_paths(path: Union[str, Path], manifest: Dict[str, Any]) -> List[Path]:
    """Existing, non-empty per-shard journal files of a corpus directory.

    Compaction replaces the whole directory (journals included), so any
    surviving non-empty ``journal.jsonl`` holds mutations not yet folded
    into the shard snapshots.
    """
    path = Path(path)
    out = []
    for entry in manifest["shards"]:
        journal = path / entry["dir"] / JOURNAL_FILE
        if journal.is_file() and journal.stat().st_size > 0:
            out.append(journal)
    return out


def _refuse_unfolded_journal(path: Path, manifest: Dict[str, Any]) -> None:
    """Raise if a snapshot-only loader would drop journaled mutations."""
    pending = journal_paths(path, manifest)
    if pending:
        raise ValueError(
            f"{path} has an unfolded write-ahead journal "
            f"({', '.join(p.parent.name for p in pending)}); load it with "
            "repro.index.load_corpus (which replays the journal) or fold "
            "it first with compact()"
        )


def load_stats(path: Path) -> TermStatistics:
    """Read the shared ``stats.json`` of a persisted corpus directory."""
    stats_path = Path(path) / STATS_FILE
    try:
        return TermStatistics.from_dict(
            json.loads(stats_path.read_text(encoding="utf-8"))
        )
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(
            f"{stats_path}: corrupt term statistics: {exc!r}"
        ) from exc


class _SaveTransaction:
    """The crash-safe directory swap underlying every corpus save.

    Everything (manifest last) goes into a temporary sibling directory
    which :meth:`finish` swaps into place, so an interrupted save never
    destroys an existing corpus at ``path`` and never leaves a
    half-written one behind — at worst the temp/backup sibling remains
    for manual cleanup.  Stale shards from a previous save can't survive
    either, since the directory is replaced wholesale.

    :func:`save_corpus_dir` drives it for in-memory corpora;
    :func:`build_corpus_stream` drives it directly so shard files can be
    written incrementally without ever holding the whole corpus.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.tmp = self.path.parent / f".{self.path.name}.saving"
        self._backup = self.path.parent / f".{self.path.name}.replaced"
        if self._backup.exists():
            if self.path.exists():
                shutil.rmtree(self._backup)
            else:
                # A previous save crashed between the two renames: the
                # backup is the only surviving copy.  Restore it instead of
                # deleting it, so a retried save can never destroy the last
                # good corpus.
                self._backup.rename(self.path)
        if self.tmp.exists():
            shutil.rmtree(self.tmp)
        self.tmp.mkdir()

    def shard_dir(self, shard_num: int) -> Path:
        """Create (if needed) and return the staged ``shard-NNNN`` directory."""
        shard_dir = self.tmp / f"shard-{shard_num:04d}"
        shard_dir.mkdir(exist_ok=True)
        return shard_dir

    def finish(
        self,
        shard_entries: Sequence[Dict[str, Any]],
        stats: TermStatistics,
        kind: str,
        journal_seq: int,
        boosts: Dict[str, float],
        index_format: str,
    ) -> Path:
        """Write stats + manifest into the staging dir and swap it live."""
        (self.tmp / STATS_FILE).write_text(
            json.dumps(stats.to_dict()), encoding="utf-8"
        )
        manifest = {
            "format": INDEX_FORMAT,
            "version": _FORMAT_VERSIONS[index_format],
            "kind": kind,
            "num_shards": len(shard_entries),
            "num_tables": sum(e["num_tables"] for e in shard_entries),
            "journal_seq": journal_seq,
            "boosts": boosts,
            "shards": list(shard_entries),
        }
        (self.tmp / MANIFEST_FILE).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        if self.path.exists():
            self.path.rename(self._backup)
        self.tmp.rename(self.path)
        if self._backup.exists():
            shutil.rmtree(self._backup)
        return self.path


def _check_index_format(index_format: str) -> None:
    """Reject unknown shard snapshot formats before any bytes are written."""
    if index_format not in _FORMAT_VERSIONS:
        raise ValueError(
            f"unknown index_format {index_format!r}; "
            f"options: {sorted(_FORMAT_VERSIONS)}"
        )


def save_corpus_dir(
    path: Union[str, Path],
    shard_pairs: Sequence[Tuple[InvertedIndex, TableStore]],
    stats: TermStatistics,
    kind: str,
    journal_seq: int = 0,
    index_format: str = DEFAULT_INDEX_FORMAT,
) -> Path:
    """Write the persisted corpus layout — the one writer for both kinds.

    ``shard_pairs`` is a list of ``(InvertedIndex, TableStore)`` tuples, one
    per shard; ``kind`` is ``"monolithic"`` or ``"sharded"``;
    ``journal_seq`` is the highest write-ahead-journal sequence number
    folded into the snapshots being written (0 for a fresh build — see
    ``repro.index.journal``); ``index_format`` selects the shard snapshot
    format and thereby the manifest version (``"bin"`` -> 3, ``"json"`` ->
    2).  The write is crash-safe (see :class:`_SaveTransaction`).
    """
    _check_index_format(index_format)
    txn = _SaveTransaction(path)
    shard_entries = []
    for i, (index, store) in enumerate(shard_pairs):
        shard_dir = txn.shard_dir(i)
        entry: Dict[str, Any] = {
            "dir": shard_dir.name, "num_tables": len(store),
        }
        entry.update(_save_shard(shard_dir, index, store, index_format))
        shard_entries.append(entry)
    return txn.finish(
        shard_entries, stats, kind=kind, journal_seq=journal_seq,
        boosts=dict(shard_pairs[0][0].boosts), index_format=index_format,
    )


#: Manifest keys every loader indexes unconditionally.
_MANIFEST_REQUIRED = (
    "kind", "num_shards", "num_tables", "journal_seq", "boosts", "shards",
)


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a persisted corpus manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not a persisted corpus (no {MANIFEST_FILE})")
    try:
        manifest: Dict[str, Any] = json.loads(
            manifest_path.read_text(encoding="utf-8")
        )
    except json.JSONDecodeError as exc:
        raise ValueError(f"{manifest_path}: invalid manifest JSON: {exc}") from exc
    if manifest.get("format") != INDEX_FORMAT:
        raise ValueError(
            f"{manifest_path}: unexpected format {manifest.get('format')!r}"
        )
    if manifest.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"{manifest_path}: unsupported version {manifest.get('version')!r} "
            f"(this build reads versions {list(SUPPORTED_VERSIONS)})"
        )
    missing = [k for k in _MANIFEST_REQUIRED if k not in manifest]
    if missing:
        raise ValueError(
            f"{manifest_path}: manifest is missing required keys {missing} "
            "(truncated write or hand edit?)"
        )
    shards = manifest["shards"]
    if not isinstance(shards, list) or not all(
        isinstance(e, dict) and "dir" in e for e in shards
    ):
        raise ValueError(
            f"{manifest_path}: malformed 'shards' list — every entry needs "
            "a 'dir' key"
        )
    if manifest["version"] == INDEX_VERSION and not all(
        isinstance(e.get("index_bytes"), int)
        and isinstance(e.get("index_crc32"), int)
        for e in shards
    ):
        raise ValueError(
            f"{manifest_path}: version-{INDEX_VERSION} shard entries need "
            "integer 'index_bytes' and 'index_crc32' keys"
        )
    return manifest


def analyze_table(table: WebTable) -> Dict[str, List[str]]:
    """Tokenize one table into its three boosted document fields.

    THE analysis path: the monolithic builder, the sharded builder, the
    journal's delta index, and compaction all tokenize through this one
    function, so "a journaled table is analyzed exactly as a rebuilt one"
    is structural rather than a convention four call sites must honor.
    """
    return {
        name: tokenize(table.field_text(name))
        for name in ("header", "context", "content")
    }


def _index_one(
    table: WebTable,
    index: InvertedIndex,
    store: TableStore,
    stats: TermStatistics,
) -> None:
    """Analyze one table into an index + store + shared stats.

    The single analysis path used by BOTH the monolithic and the sharded
    builders — one document with the three boosted fields of Section 2.1,
    document frequencies counting each table once per term across all its
    fields (see :func:`analyze_table`).
    """
    store.add(table)
    fields = analyze_table(table)
    index.add_document(table.table_id, fields)
    stats.add_document([t for toks in fields.values() for t in toks])


def build_corpus_stream(
    tables: Iterable[WebTable],
    save: Union[str, Path],
    num_shards: Optional[int] = None,
    boosts: Optional[Dict[str, float]] = None,
    index_format: str = DEFAULT_INDEX_FORMAT,
) -> Path:
    """Stream ``tables`` straight to a persisted corpus directory.

    The O(shard)-memory build path for corpora too large to hold at once
    (ROADMAP item 2): pass 1 routes each table's JSON row directly to its
    staged shard's ``tables.jsonl`` (nothing retained in memory); pass 2
    loads the staged shards back *one at a time*, indexes each through the
    same :func:`analyze_table` path as the in-memory builders, folds the
    shared statistics, and writes the shard snapshot before moving on —
    peak memory is one shard, not the corpus.  Document frequencies are
    order-independent counts, so the shard-major statistics fold produces
    rankings bit-identical to the in-memory build of the same tables.

    The directory swap is the same crash-safe transaction every save uses
    (:class:`_SaveTransaction`).  Returns the corpus path; open it with
    :func:`~repro.index.sharded.load_corpus`.
    """
    _check_index_format(index_format)
    from .sharded import shard_of

    kind = "monolithic" if num_shards is None else "sharded"
    n = 1 if num_shards is None else num_shards
    if n < 1:
        raise ValueError("num_shards must be >= 1")
    field_boosts = dict(boosts or FIELD_BOOSTS)
    txn = _SaveTransaction(save)

    # Pass 1: spill every table to its shard's tables.jsonl, exactly the
    # bytes TableStore.save would write (one JSON object per line).
    shard_dirs = [txn.shard_dir(i) for i in range(n)]
    handles = [
        (d / SHARD_TABLES_FILE).open("w", encoding="utf-8")
        for d in shard_dirs
    ]
    try:
        for table in tables:
            fh = handles[shard_of(table.table_id, n)]
            fh.write(json.dumps(table.to_dict(), ensure_ascii=False))
            fh.write("\n")
    finally:
        for fh in handles:
            fh.close()

    # Pass 2: index one shard at a time (duplicate ids surface here, from
    # TableStore.load's path:line contract — equal ids hash to equal
    # shards, so no duplicate can hide across two spill files).
    stats = TermStatistics()
    shard_entries: List[Dict[str, Any]] = []
    for shard_dir in shard_dirs:
        store = TableStore.load(shard_dir / SHARD_TABLES_FILE)
        index = InvertedIndex(field_boosts)
        for table in store:
            fields = analyze_table(table)
            index.add_document(table.table_id, fields)
            stats.add_document([t for toks in fields.values() for t in toks])
        entry: Dict[str, Any] = {
            "dir": shard_dir.name, "num_tables": len(store),
        }
        entry.update(_write_shard_index(shard_dir, index, index_format))
        write_offsets_sidecar(shard_dir / SHARD_TABLES_FILE)
        shard_entries.append(entry)
    return txn.finish(
        shard_entries, stats, kind=kind, journal_seq=0,
        boosts=field_boosts, index_format=index_format,
    )


def build_corpus_index(
    tables: Iterable[WebTable],
    boosts: Optional[Dict[str, float]] = None,
    num_shards: Optional[int] = None,
    save: Optional[Union[str, Path]] = None,
    probe_workers: int = 1,
    index_format: str = DEFAULT_INDEX_FORMAT,
    stream: bool = False,
) -> "CorpusProtocol":
    """Index ``tables`` into a queryable corpus.

    Each table becomes one document with the three boosted fields of
    Section 2.1; document frequencies for the shared TF-IDF space count each
    table once per term across all its fields.

    ``num_shards=None`` (the default) returns the classic monolithic
    :class:`IndexedCorpus`; an integer returns a
    :class:`~repro.index.sharded.ShardedCorpus` hash-partitioned over that
    many shards (ranking-equivalent — see DESIGN.md) with
    ``probe_workers``-wide scatter-gather.  ``save=`` additionally persists
    the built corpus to that directory in ``index_format`` (``"bin"`` or
    ``"json"``).

    ``stream=True`` consumes ``tables`` without ever holding the corpus in
    memory: the build goes through :func:`build_corpus_stream` (which
    requires ``save=``) and the returned corpus is the *persisted* one,
    reopened read-only — version-3 saves open in O(manifest) with lazy
    per-shard materialization.
    """
    if stream:
        if save is None:
            raise ValueError(
                "stream=True writes the corpus incrementally and needs "
                "save= (the streamed corpus lives on disk)"
            )
        from .sharded import load_corpus

        build_corpus_stream(
            tables, save, num_shards=num_shards, boosts=boosts,
            index_format=index_format,
        )
        return load_corpus(save, probe_workers=probe_workers, mutable=False)
    corpus: "CorpusProtocol"
    if num_shards is not None:
        from .sharded import build_sharded_corpus

        corpus = build_sharded_corpus(
            tables, num_shards, boosts=boosts, probe_workers=probe_workers
        )
    else:
        index = InvertedIndex(boosts or FIELD_BOOSTS)
        store = TableStore()
        stats = TermStatistics()
        for table in tables:
            _index_one(table, index, store, stats)
        corpus = IndexedCorpus(index=index, store=store, stats=stats)
    if save is not None:
        corpus.save(save, index_format=index_format)  # type: ignore[attr-defined]
    return corpus
