"""Building the searchable corpus: index + store from extracted tables.

Ties the offline half of Figure 2 together: given :class:`WebTable` objects
(from the extractor or the synthetic generator), produce the
:class:`~repro.index.inverted.InvertedIndex`, the
:class:`~repro.index.store.TableStore`, and the corpus-wide
:class:`~repro.text.tfidf.TermStatistics` every feature shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..tables.table import WebTable
from ..text.tfidf import TermStatistics
from ..text.tokenize import tokenize
from .inverted import FIELD_BOOSTS, InvertedIndex
from .store import TableStore

__all__ = ["IndexedCorpus", "build_corpus_index"]


@dataclass
class IndexedCorpus:
    """The queryable corpus bundle produced by offline processing."""

    index: InvertedIndex
    store: TableStore
    stats: TermStatistics

    @property
    def num_tables(self) -> int:
        """Number of tables in the corpus."""
        return len(self.store)


def build_corpus_index(
    tables: Iterable[WebTable], boosts: Optional[dict] = None
) -> IndexedCorpus:
    """Index ``tables`` into an :class:`IndexedCorpus`.

    Each table becomes one document with the three boosted fields of
    Section 2.1; document frequencies for the shared TF-IDF space count each
    table once per term across all its fields.
    """
    index = InvertedIndex(boosts or FIELD_BOOSTS)
    store = TableStore()
    stats = TermStatistics()
    for table in tables:
        store.add(table)
        fields = {
            name: tokenize(table.field_text(name))
            for name in ("header", "context", "content")
        }
        index.add_document(table.table_id, fields)
        stats.add_document(
            [t for toks in fields.values() for t in toks]
        )
    return IndexedCorpus(index=index, store=store, stats=stats)
