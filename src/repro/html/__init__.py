"""HTML substrate: DOM model and forgiving parser for crawled pages."""

from .dom import FORMAT_TAGS, VOID_ELEMENTS, DomNode, ElementNode, TextNode
from .parser import DomBuilder, find_tables, outermost_tables, parse_html

__all__ = [
    "FORMAT_TAGS",
    "VOID_ELEMENTS",
    "DomBuilder",
    "DomNode",
    "ElementNode",
    "TextNode",
    "find_tables",
    "outermost_tables",
    "parse_html",
]
