"""HTML parsing into the :mod:`repro.html.dom` tree.

Built on the standard library's :class:`html.parser.HTMLParser` with the
forgiving behaviour real web pages demand: unclosed ``<p>``/``<li>``/``<td>``
tags, implicit ``<tbody>``, void elements, and stray close tags must not
derail extraction — the paper's corpus is arbitrary crawled HTML.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import List

from .dom import ElementNode, TextNode, VOID_ELEMENTS

__all__ = ["parse_html", "DomBuilder"]

#: Tags that implicitly close an open tag of the same (or listed) kind, the
#: way browsers repair common unclosed-tag patterns.
_IMPLICIT_CLOSERS = {
    "li": {"li"},
    "p": {"p"},
    "tr": {"tr", "td", "th"},
    "td": {"td", "th"},
    "th": {"td", "th"},
    "option": {"option"},
    "thead": {"thead", "tbody", "tfoot"},
    "tbody": {"thead", "tbody", "tfoot"},
    "tfoot": {"thead", "tbody", "tfoot"},
}


class DomBuilder(HTMLParser):
    """Streams HTML tokens into an :class:`ElementNode` tree."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = ElementNode("document")
        self._stack: List[ElementNode] = [self.root]

    # -- helpers -----------------------------------------------------------

    @property
    def _top(self) -> ElementNode:
        return self._stack[-1]

    def _auto_close_for(self, tag: str) -> None:
        """Close tags that an opening ``tag`` implicitly terminates."""
        closers = _IMPLICIT_CLOSERS.get(tag)
        if not closers:
            return
        while len(self._stack) > 1 and self._top.tag in closers:
            self._stack.pop()

    # -- HTMLParser hooks ---------------------------------------------------

    def handle_starttag(
        self, tag: str, attrs: List[Tuple[str, Optional[str]]]
    ) -> None:
        tag = tag.lower()
        self._auto_close_for(tag)
        node = ElementNode(tag, {k.lower(): (v or "") for k, v in attrs})
        self._top.append(node)
        if tag not in VOID_ELEMENTS:
            self._stack.append(node)

    def handle_startendtag(
        self, tag: str, attrs: List[Tuple[str, Optional[str]]]
    ) -> None:
        node = ElementNode(tag, {k.lower(): (v or "") for k, v in attrs})
        self._top.append(node)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in VOID_ELEMENTS:
            return
        # Pop up to and including the matching open tag; ignore stray closes.
        for i in range(len(self._stack) - 1, 0, -1):
            if self._stack[i].tag == tag:
                del self._stack[i:]
                return

    def handle_data(self, data: str) -> None:
        if data and data.strip():
            self._top.append(TextNode(data))

    def error(self, message: str) -> None:  # pragma: no cover - py<3.10 hook
        pass


def parse_html(html: str) -> ElementNode:
    """Parse ``html`` into a DOM tree rooted at a synthetic ``document`` node.

    Never raises on malformed markup; whatever structure can be recovered is
    returned.

    >>> root = parse_html("<html><body><p>hi</p></body></html>")
    >>> root.find_first("p").text_content()
    'hi'
    """
    builder = DomBuilder()
    try:
        builder.feed(html)
        builder.close()
    except Exception:
        # Extremely malformed input: keep whatever tree was built so far.
        pass
    return builder.root


def parse_fragment(html: str) -> ElementNode:
    """Parse an HTML fragment (alias of :func:`parse_html`)."""
    return parse_html(html)


def find_tables(root: ElementNode) -> List[ElementNode]:
    """All ``<table>`` elements under ``root`` in document order."""
    return root.find_all("table")


def outermost_tables(root: ElementNode) -> List[ElementNode]:
    """``<table>`` elements that are not nested inside another table.

    Layout pages frequently nest data tables inside layout tables; the table
    extractor considers each candidate separately, but corpus statistics
    (Section 2.1) count outermost table *tags*.
    """
    tables = find_tables(root)
    out: List[ElementNode] = []
    for table in tables:
        if not any(anc.tag == "table" for anc in table.ancestors()):
            out.append(table)
    return out
