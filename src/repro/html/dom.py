"""A minimal DOM tree for web pages.

The offline pipeline (Section 2.1) needs real document structure: the table
extractor walks ``<table>`` elements, the header detector inspects cell
formatting tags, and the context extractor scores text nodes by their tree
distance from the table node and by the formatting tags around them.  This
module provides the node model those components share.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["DomNode", "TextNode", "ElementNode", "FORMAT_TAGS", "VOID_ELEMENTS"]

#: Inline formatting tags that signal emphasized / header-like text.  Both the
#: header detector (Section 2.1.1) and the context scorer (Section 2.1.2) key
#: off these.
FORMAT_TAGS = frozenset(
    {"b", "strong", "i", "em", "u", "h1", "h2", "h3", "h4", "h5", "h6", "th", "code"}
)

#: HTML elements that never have children.
VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)


class DomNode:
    """Base class for DOM nodes; provides tree navigation."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[ElementNode] = None

    def path_to_root(self) -> List[DomNode]:
        """Nodes from ``self`` (inclusive) up to the root (inclusive)."""
        path: List[DomNode] = [self]
        node = self.parent
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def depth(self) -> int:
        """Number of ancestors above this node."""
        return len(self.path_to_root()) - 1

    def ancestors(self) -> Iterator[ElementNode]:
        """Iterate over ancestors from parent to root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class TextNode(DomNode):
    """A text leaf."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def text_content(self) -> str:
        """The node's text."""
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        snippet = self.text.strip()[:30]
        return f"TextNode({snippet!r})"


class ElementNode(DomNode):
    """An element with a tag name, attributes, and children."""

    __slots__ = ("tag", "attrs", "children")

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[DomNode] = []

    def append(self, child: DomNode) -> DomNode:
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: List[str] = []
        for node in self.iter_descendants():
            if isinstance(node, TextNode):
                parts.append(node.text)
        return " ".join(p.strip() for p in parts if p.strip())

    def iter_descendants(self) -> Iterator[DomNode]:
        """Depth-first iteration over all descendants (self excluded)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ElementNode):
                stack.extend(reversed(node.children))

    def find_all(self, tag: str) -> List[ElementNode]:
        """All descendant elements with the given tag name."""
        tag = tag.lower()
        return [
            node
            for node in self.iter_descendants()
            if isinstance(node, ElementNode) and node.tag == tag
        ]

    def find_first(self, tag: str) -> Optional[ElementNode]:
        """First descendant element with the given tag name, if any."""
        tag = tag.lower()
        for node in self.iter_descendants():
            if isinstance(node, ElementNode) and node.tag == tag:
                return node
        return None

    def child_elements(self, tag: Optional[str] = None) -> List[ElementNode]:
        """Direct element children, optionally filtered by tag."""
        out = [c for c in self.children if isinstance(c, ElementNode)]
        if tag is not None:
            tag = tag.lower()
            out = [c for c in out if c.tag == tag]
        return out

    def has_format_descendant(self) -> bool:
        """True if any descendant element is a formatting tag."""
        return any(
            isinstance(node, ElementNode) and node.tag in FORMAT_TAGS
            for node in self.iter_descendants()
        )

    def format_tags(self) -> List[str]:
        """Formatting tags on this element and its descendants."""
        tags = [self.tag] if self.tag in FORMAT_TAGS else []
        tags.extend(
            node.tag
            for node in self.iter_descendants()
            if isinstance(node, ElementNode) and node.tag in FORMAT_TAGS
        )
        return tags

    def get_attr(self, name: str, default: str = "") -> str:
        """Attribute value (case-insensitive name)."""
        return self.attrs.get(name.lower(), default)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ElementNode(<{self.tag}> children={len(self.children)})"
