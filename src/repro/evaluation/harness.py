"""Experiment harness: run every method over the 59-query workload.

Builds the synthetic corpus, runs the two-stage probe once per query (the
candidate set is shared by all methods, as in the paper), evaluates each
method's column mapping against ground truth with the F1 error of
Section 5, and supports the easy/hard split and the 7-group binning used by
Figures 5-6 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.basic import BasicParams, basic_method
from ..baselines.nbrtext import nbrtext_method
from ..baselines.pmi_baseline import pmi_method
from ..core.features import BoundedCache
from ..core.labels import LabelSpace
from ..core.model import build_problem
from ..core.params import DEFAULT_PARAMS, UNSEGMENTED_PARAMS, ModelParams
from ..corpus.generator import CorpusConfig, SyntheticCorpus, generate_corpus
from ..corpus.groundtruth import GroundTruth
from ..inference import get_algorithm
from ..pipeline.probe import ProbeConfig, ProbeResult, two_stage_probe
from ..query.workload import WORKLOAD, WorkloadQuery
from .metrics import f1_error, gold_assignment

__all__ = [
    "WorkloadEnvironment",
    "MethodRun",
    "build_environment",
    "run_method",
    "METHODS",
    "split_easy_hard",
    "bin_queries",
]

#: Queries whose per-method errors all lie within this band are "easy".
EASY_BAND = 0.5
#: Number of hard-query groups in Figures 5/6 and Table 2.
NUM_GROUPS = 7

#: A dense labeling over one query's candidate tables.
Labels = Dict[Tuple[int, int], int]
#: A runnable method: environment + workload query -> labeling.
MethodFn = Callable[["WorkloadEnvironment", WorkloadQuery], Labels]


@dataclass
class WorkloadEnvironment:
    """Shared, expensive setup for one experimental run."""

    synthetic: SyntheticCorpus
    truth: GroundTruth
    candidates: Dict[str, ProbeResult]
    queries: List[WorkloadQuery] = field(default_factory=lambda: list(WORKLOAD))

    def gold(self, wq: WorkloadQuery) -> Dict[Tuple[int, int], int]:
        """Dense gold labels over the query's candidate tables."""
        labels = LabelSpace(wq.query.q)
        return gold_assignment(
            self.truth, wq.query_id, self.candidates[wq.query_id].tables, labels
        )


#: Bounded: a sweep over many (scale, seed) points must not pin every
#: generated corpus in memory at once.
_ENV_CACHE: BoundedCache[Tuple[float, int], WorkloadEnvironment] = BoundedCache(8)


def build_environment(
    scale: float = 1.0,
    seed: int = 42,
    probe_config: Optional[ProbeConfig] = None,
    queries: Optional[Sequence[WorkloadQuery]] = None,
    use_cache: bool = True,
) -> WorkloadEnvironment:
    """Generate the corpus, ground truth, and per-query candidate sets."""
    if probe_config is None:
        probe_config = ProbeConfig()
    cache_key = (scale, seed)
    if use_cache and queries is None:
        cached_env = _ENV_CACHE.get(cache_key)
        if cached_env is not None:
            return cached_env

    synthetic = generate_corpus(CorpusConfig(seed=seed, scale=scale))
    workload = list(queries) if queries is not None else list(WORKLOAD)
    bindings = {wq.query_id: (wq.domain_key, wq.attr_keys) for wq in workload}
    truth = GroundTruth.from_provenance(synthetic.provenance, bindings)

    import dataclasses

    candidates: Dict[str, ProbeResult] = {}
    for i, wq in enumerate(workload):
        config = dataclasses.replace(probe_config, seed=seed + i)
        candidates[wq.query_id] = two_stage_probe(
            wq.query, synthetic.corpus, config
        )

    env = WorkloadEnvironment(
        synthetic=synthetic, truth=truth, candidates=candidates, queries=workload
    )
    if use_cache and queries is None:
        _ENV_CACHE.put(cache_key, env)
    return env


@dataclass
class MethodRun:
    """One method's labelings and errors over the workload."""

    method: str
    labels: Dict[str, Dict[Tuple[int, int], int]]  # query_id -> labeling
    errors: Dict[str, float]  # query_id -> F1 error (percent)

    def mean_error(self, query_ids: Optional[Sequence[str]] = None) -> float:
        """Average error over a subset (default: all queries)."""
        ids = list(query_ids) if query_ids is not None else list(self.errors)
        if not ids:
            return 0.0
        return sum(self.errors[q] for q in ids) / len(ids)


def _run_wwt(
    env: WorkloadEnvironment,
    wq: WorkloadQuery,
    params: ModelParams,
    inference: str,
) -> Dict[Tuple[int, int], int]:
    probe = env.candidates[wq.query_id]
    problem = build_problem(
        wq.query, probe.tables, env.synthetic.corpus.stats, params
    )
    return get_algorithm(inference)(problem).labels


def _method_fn(name: str) -> MethodFn:
    basic_params = BasicParams()

    def basic(env: WorkloadEnvironment, wq: WorkloadQuery) -> Labels:
        probe = env.candidates[wq.query_id]
        return basic_method(
            wq.query, probe.tables, env.synthetic.corpus.stats, basic_params
        ).labels

    def nbrtext(env: WorkloadEnvironment, wq: WorkloadQuery) -> Labels:
        probe = env.candidates[wq.query_id]
        return nbrtext_method(
            wq.query, probe.tables, env.synthetic.corpus.stats, basic_params
        ).labels

    def pmi(env: WorkloadEnvironment, wq: WorkloadQuery) -> Labels:
        probe = env.candidates[wq.query_id]
        return pmi_method(
            wq.query,
            probe.tables,
            env.synthetic.corpus.index,
            env.synthetic.corpus.stats,
            basic_params,
        ).labels

    table = {
        "basic": basic,
        "nbrtext": nbrtext,
        "pmi2": pmi,
        "wwt": lambda env, wq: _run_wwt(env, wq, DEFAULT_PARAMS, "table-centric"),
        "wwt-unsegmented": lambda env, wq: _run_wwt(
            env, wq, UNSEGMENTED_PARAMS, "table-centric"
        ),
        "wwt-none": lambda env, wq: _run_wwt(env, wq, DEFAULT_PARAMS, "none"),
        "wwt-alpha": lambda env, wq: _run_wwt(
            env, wq, DEFAULT_PARAMS, "alpha-expansion"
        ),
        "wwt-bp": lambda env, wq: _run_wwt(env, wq, DEFAULT_PARAMS, "bp"),
        "wwt-trws": lambda env, wq: _run_wwt(env, wq, DEFAULT_PARAMS, "trws"),
    }
    return table[name]


#: All runnable methods.
METHODS = (
    "basic", "nbrtext", "pmi2", "wwt", "wwt-unsegmented",
    "wwt-none", "wwt-alpha", "wwt-bp", "wwt-trws",
)


def run_method(
    env: WorkloadEnvironment,
    method: str,
    query_ids: Optional[Sequence[str]] = None,
) -> MethodRun:
    """Run one method over (a subset of) the workload."""
    fn = _method_fn(method)
    wanted = set(query_ids) if query_ids is not None else None
    labels: Dict[str, Dict[Tuple[int, int], int]] = {}
    errors: Dict[str, float] = {}
    for wq in env.queries:
        if wanted is not None and wq.query_id not in wanted:
            continue
        predicted = fn(env, wq)
        gold = env.gold(wq)
        labels[wq.query_id] = predicted
        errors[wq.query_id] = f1_error(
            predicted, gold, LabelSpace(wq.query.q)
        )
    return MethodRun(method=method, labels=labels, errors=errors)


def split_easy_hard(
    runs: Mapping[str, MethodRun],
    query_ids: Sequence[str],
    band: float = EASY_BAND,
) -> Tuple[List[str], List[str]]:
    """Partition queries: "easy" when all methods agree within ``band``."""
    easy: List[str] = []
    hard: List[str] = []
    for qid in query_ids:
        values = [run.errors[qid] for run in runs.values() if qid in run.errors]
        if values and (max(values) - min(values)) <= band:
            easy.append(qid)
        else:
            hard.append(qid)
    return easy, hard


def bin_queries(
    reference_errors: Mapping[str, float],
    query_ids: Sequence[str],
    num_groups: int = NUM_GROUPS,
) -> List[List[str]]:
    """Bin queries into groups by decreasing reference (Basic) error.

    Mirrors Figure 5's grouping: group 1 holds the hardest queries.
    """
    ordered = sorted(query_ids, key=lambda q: -reference_errors.get(q, 0.0))
    if not ordered:
        return [[] for _ in range(num_groups)]
    groups: List[List[str]] = [[] for _ in range(num_groups)]
    for i, qid in enumerate(ordered):
        groups[min(i * num_groups // len(ordered), num_groups - 1)].append(qid)
    return groups
