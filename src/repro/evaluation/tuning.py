"""Parameter training by exhaustive grid enumeration (Section 3.4).

The paper trains its six weights on a labeled workload by enumerating a
grid and keeping the lowest-error setting.  Feature extraction dominates
the cost, so we extract once per query and re-weight via
:meth:`ColumnMappingProblem.with_params` — enumeration then touches only
the matching solver.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines.basic import BasicParams, basic_method
from ..core.labels import LabelSpace
from ..core.model import ColumnMappingProblem, build_problem
from ..core.params import DEFAULT_PARAMS, ModelParams
from ..inference import get_algorithm
from .harness import WorkloadEnvironment
from .metrics import f1_error

__all__ = ["tune_model_params", "tune_basic_params"]


def tune_model_params(
    env: WorkloadEnvironment,
    grid: Iterable[ModelParams],
    inference: str = "table-centric",
    query_ids: Optional[Sequence[str]] = None,
    base_params: ModelParams = DEFAULT_PARAMS,
) -> Tuple[ModelParams, float, List[Tuple[ModelParams, float]]]:
    """Grid-train the graphical model weights on a workload environment.

    Returns (best params, best mean error, the full trace).  Feature
    extraction runs once per query with ``base_params``'s feature switches
    (``use_segmented``); every grid point must share those switches.
    """
    wanted = set(query_ids) if query_ids is not None else None
    problems: List[Tuple[ColumnMappingProblem, Dict, LabelSpace]] = []
    for wq in env.queries:
        if wanted is not None and wq.query_id not in wanted:
            continue
        probe = env.candidates[wq.query_id]
        problem = build_problem(
            wq.query, probe.tables, env.synthetic.corpus.stats, base_params
        )
        problems.append((problem, env.gold(wq), LabelSpace(wq.query.q)))

    algorithm = get_algorithm(inference)
    trace: List[Tuple[ModelParams, float]] = []
    best: Optional[ModelParams] = None
    best_error = float("inf")
    for params in grid:
        if params.use_segmented != base_params.use_segmented:
            raise ValueError("grid points must share base feature switches")
        errors = []
        for problem, gold, space in problems:
            result = algorithm(problem.with_params(params))
            errors.append(f1_error(result.labels, gold, space))
        mean = sum(errors) / len(errors) if errors else 0.0
        trace.append((params, mean))
        if mean < best_error:
            best_error = mean
            best = params
    if best is None:
        raise ValueError("empty grid")
    return best, best_error, trace


def tune_basic_params(
    env: WorkloadEnvironment,
    relevance_grid: Sequence[float] = (0.03, 0.06, 0.1, 0.15, 0.2),
    column_grid: Sequence[float] = (0.05, 0.1, 0.15, 0.25, 0.35),
    query_ids: Optional[Sequence[str]] = None,
) -> Tuple[BasicParams, float]:
    """Grid-train the Basic baseline's two thresholds."""
    wanted = set(query_ids) if query_ids is not None else None
    best = BasicParams()
    best_error = float("inf")
    for rel in relevance_grid:
        for col in column_grid:
            params = BasicParams(relevance_threshold=rel, column_threshold=col)
            errors = []
            for wq in env.queries:
                if wanted is not None and wq.query_id not in wanted:
                    continue
                probe = env.candidates[wq.query_id]
                result = basic_method(
                    wq.query, probe.tables, env.synthetic.corpus.stats, params
                )
                errors.append(
                    f1_error(result.labels, env.gold(wq), LabelSpace(wq.query.q))
                )
            mean = sum(errors) / len(errors) if errors else 0.0
            if mean < best_error:
                best_error = mean
                best = params
    return best, best_error
