"""Answer-row quality (Figure 6).

Measures the impact of column mapping errors on the final search result:
consolidate the answer twice — once from the predicted mapping, once from
the ground-truth mapping — and compare their row sets with an F1 error over
normalized rows.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Set, Tuple

from ..consolidate.merge import consolidate
from ..core.labels import LabelSpace
from ..query.model import Query
from ..tables.table import WebTable
from ..text.tokenize import normalize_cell

__all__ = ["answer_rows", "answer_row_error"]


def _mappings_from_labels(
    labels: Mapping[Tuple[int, int], int],
    tables: Sequence[WebTable],
    space: LabelSpace,
) -> Dict[int, Dict[int, int]]:
    """Dense labeling -> per-table {column -> 1-based query column}."""
    out: Dict[int, Dict[int, int]] = {}
    for ti, table in enumerate(tables):
        mapping: Dict[int, int] = {}
        for ci in range(table.num_cols):
            label = labels.get((ti, ci), space.nr)
            if space.is_query(label):
                mapping[ci] = space.to_query_column(label)
        if mapping:
            out[ti] = mapping
    return out


def answer_rows(
    query: Query,
    tables: Sequence[WebTable],
    labels: Mapping[Tuple[int, int], int],
) -> Set[Tuple[str, ...]]:
    """The normalized row set of the consolidated answer for a labeling."""
    space = LabelSpace(query.q)
    mappings = _mappings_from_labels(labels, tables, space)
    answer = consolidate(query, tables, mappings)
    return {
        tuple(normalize_cell(c) for c in row.cells) for row in answer.rows
    }


def answer_row_error(
    query: Query,
    tables: Sequence[WebTable],
    predicted: Mapping[Tuple[int, int], int],
    gold: Mapping[Tuple[int, int], int],
) -> float:
    """F1 error (percent) between predicted-mapping and gold-mapping rows."""
    pred_rows = answer_rows(query, tables, predicted)
    gold_rows = answer_rows(query, tables, gold)
    if not pred_rows and not gold_rows:
        return 0.0
    inter = len(pred_rows & gold_rows)
    denom = len(pred_rows) + len(gold_rows)
    return (1.0 - (2.0 * inter) / denom) * 100.0 if denom else 0.0
