"""Evaluation: F1 metric, workload harness, answer-row quality."""

from .answer_quality import answer_row_error, answer_rows
from .harness import (
    METHODS,
    MethodRun,
    WorkloadEnvironment,
    bin_queries,
    build_environment,
    run_method,
    split_easy_hard,
)
from .metrics import count_stats, f1_error, gold_assignment

__all__ = [
    "METHODS",
    "MethodRun",
    "WorkloadEnvironment",
    "answer_row_error",
    "answer_rows",
    "bin_queries",
    "build_environment",
    "count_stats",
    "f1_error",
    "gold_assignment",
    "run_method",
    "split_easy_hard",
]
