"""The F1 error measure of Section 5.

    error(y, y*) = 1 - (2 * #correct query-column labels) /
                       (#predicted query labels + #gold query labels)

expressed as a percentage.  Only query-column labels count: na/nr decisions
matter exactly insofar as they suppress or enable query-column predictions,
which matches how the paper scores relevance mistakes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..core.labels import LabelSpace
from ..corpus.groundtruth import GroundTruth, TableLabel
from ..tables.table import WebTable

__all__ = ["f1_error", "gold_assignment", "count_stats"]


def gold_assignment(
    truth: GroundTruth,
    query_id: str,
    tables: Sequence[WebTable],
    labels: LabelSpace,
) -> Dict[Tuple[int, int], int]:
    """Dense gold labels for the retrieved candidate ``tables``."""
    out: Dict[Tuple[int, int], int] = {}
    for ti, table in enumerate(tables):
        gold: TableLabel = truth.label(query_id, table.table_id)
        for ci in range(table.num_cols):
            if not gold.relevant:
                out[(ti, ci)] = labels.nr
                continue
            out[(ti, ci)] = (
                labels.from_query_column(gold.mapping[ci])
                if ci in gold.mapping
                else labels.na
            )
    return out


def count_stats(
    predicted: Mapping[Tuple[int, int], int],
    gold: Mapping[Tuple[int, int], int],
    labels: LabelSpace,
) -> Tuple[int, int, int]:
    """(correct, #predicted query labels, #gold query labels)."""
    correct = 0
    n_pred = 0
    n_gold = 0
    for tc, gold_label in gold.items():
        pred_label = predicted.get(tc, labels.nr)
        if labels.is_query(pred_label):
            n_pred += 1
            if pred_label == gold_label:
                correct += 1
        if labels.is_query(gold_label):
            n_gold += 1
    return correct, n_pred, n_gold


def f1_error(
    predicted: Mapping[Tuple[int, int], int],
    gold: Mapping[Tuple[int, int], int],
    labels: LabelSpace,
) -> float:
    """F1 error percentage (0 = perfect, 100 = nothing right).

    When neither side assigns any query label there is nothing to get wrong
    and the error is 0 — this covers the paper's zero-relevant queries.
    """
    correct, n_pred, n_gold = count_stats(predicted, gold, labels)
    denominator = n_pred + n_gold
    if denominator == 0:
        return 0.0
    return (1.0 - (2.0 * correct) / denominator) * 100.0
