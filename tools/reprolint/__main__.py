"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Exit status 0 when clean, 1 when violations were found, 2 on usage
errors — the same convention as the repo's other gates, so CI and
``make check`` can chain them.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import DEFAULT_TARGETS, iter_python_files, lint_paths
from .rules import ALL_RULES


def _list_rules() -> str:
    blocks: List[str] = []
    for rule in ALL_RULES:
        doc = inspect.getdoc(rule) or "(undocumented)"
        blocks.append(f"{rule.id}: {rule.title}\n\n{doc}")
    return "\n\n" + ("\n\n" + "-" * 72 + "\n\n").join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="repo-specific invariant linter (rules R001-R009)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--src-root", type=Path, default=Path("src"),
        help="root for dotted module names (default: src)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RXXX",
        help="check only the given rule id(s); repeatable",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (ids, titles, rationale) and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = ALL_RULES
    if args.rule:
        wanted = set(args.rule)
        known = {rule.id for rule in ALL_RULES}
        unknown = sorted(wanted - known)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [rule for rule in ALL_RULES if rule.id in wanted]

    paths = args.paths or [Path(p) for p in DEFAULT_TARGETS]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(map(str, missing))}")

    files = iter_python_files(paths)
    violations = lint_paths(paths, src_root=args.src_root, rules=rules)
    for violation in violations:
        print(violation.format())
    if violations:
        print(
            f"\nreprolint: {len(violations)} violation(s) in "
            f"{len({v.path for v in violations})} of {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"reprolint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
