"""R007 — no mutable default arguments, repo-wide."""

from __future__ import annotations

import ast
from typing import List, Optional

from ..base import MUTABLE_BUILDERS, Rule, SourceFile, Violation


def _mutable_default(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in MUTABLE_BUILDERS:
            return name
    return None


class MutableDefaultRule(Rule):
    """No mutable default argument values, anywhere in the repo.

    A default is evaluated once, at ``def`` time, and shared by every
    call: mutating it leaks state across calls *and across threads* — the
    exact bug PR 1 fixed when a shared ``ProbeConfig`` default bled one
    query's configuration into another's.  Shared hidden state is also a
    determinism hazard: answer N's result comes to depend on answers
    1..N-1.  Use ``None`` as the sentinel and construct the container in
    the body (or ``dataclasses.field(default_factory=...)``).
    """

    id = "R007"
    title = "mutable default argument"

    def check(self, source: SourceFile) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                kind = _mutable_default(default)
                if kind is not None:
                    name = getattr(node, "name", "<lambda>")
                    violations.append(self.violation(
                        source, default,
                        f"mutable default ({kind}) in `{name}(...)`; "
                        "default to None and build the container inside",
                    ))
        return violations
