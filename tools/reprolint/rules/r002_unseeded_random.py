"""R002 — randomness must flow through explicitly seeded rng objects."""

from __future__ import annotations

import ast
from typing import List

from ..base import Rule, SourceFile, Violation

#: ``random`` attributes that are fine to touch: rng *classes* whose
#: instances are constructed with an explicit seed and passed around.
ALLOWED_RANDOM_MEMBERS = frozenset({"Random", "SystemRandom"})


class UnseededRandomRule(Rule):
    """No module-level ``random`` calls — rngs are constructed and passed.

    The determinism contract (DESIGN.md, "Sharded index & persistence";
    PR 2) is that every stochastic choice draws from a ``random.Random(seed)``
    instance threaded through explicitly (``ProbeConfig.seed`` →
    ``QueryState.rng``, ``GeneratorConfig.seed`` → corpus synthesis).  The
    module-level functions (``random.random()``, ``random.shuffle()``, …)
    share one hidden global rng: any code path touching it perturbs every
    later draw, so two runs of the same query workload stop being
    bit-identical the moment an unrelated caller consumes entropy.  Build
    a ``random.Random(seed)`` and pass it instead.
    """

    id = "R002"
    title = "module-level/unseeded random use; pass a seeded random.Random"

    def check(self, source: SourceFile) -> List[Violation]:
        violations: List[Violation] = []
        random_names = {
            local for local, target in source.module_aliases.items()
            if target == "random"
        }
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id in random_names
                and node.attr not in ALLOWED_RANDOM_MEMBERS
            ):
                violations.append(self.violation(
                    source, node,
                    f"`random.{node.attr}` uses the hidden module-global rng; "
                    "construct random.Random(seed) and pass it explicitly",
                ))
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ALLOWED_RANDOM_MEMBERS:
                        violations.append(self.violation(
                            source, node,
                            f"`from random import {alias.name}` binds the "
                            "module-global rng; import random.Random and "
                            "seed it explicitly",
                        ))
        return violations
